#![warn(missing_docs)]

//! Offline stand-in for `criterion`: same macro/API surface
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`), but a deliberately tiny
//! harness — a handful of timed iterations printed to stdout, no
//! statistics. Bench binaries stay cheap even when `cargo test` runs
//! them.

use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (kept tiny on purpose).
const ITERATIONS: u32 = 5;

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Times a single routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times one routine within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing driver passed to the routine closure.
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

/// Batch sizing hint; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total_nanos / u128::from(b.iters);
        println!("bench {id:<40} {mean:>12} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {id:<40} (no iterations)");
    }
}

/// Declares a benchmark group function, as in real criterion's simple
/// form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert_eq!(count, ITERATIONS);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let mut seen = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 7u32, |x| seen += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(seen, 7 * ITERATIONS);
    }
}
