#![warn(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy framework parameterized over
//! serializer/deserializer implementations; this workspace only ever
//! serializes to and from JSON strings, so the shim pivots everything
//! through an owned [`Value`] tree instead:
//!
//! * [`Serialize`] renders a type to a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`&Value`](Value);
//! * the `serde_json` companion crate prints and parses `Value` as JSON.
//!
//! Determinism rules (golden traces depend on them): struct fields keep
//! declaration order, maps serialize as key-sorted `[key, value]` pair
//! arrays, sets as sorted arrays.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! from the companion `serde_derive` proc-macro crate, which supports the
//! shapes this workspace uses (named structs, tuple structs, enums with
//! unit/newtype/tuple/struct variants; no generics).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; JSON number).
    UInt(u64),
    /// Negative integer (kept exact; JSON number).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object — insertion-ordered (order is meaningful for
    /// deterministic output; lookups are linear, objects are small).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object's field list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Int(i) => Some(*i),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Looks up a field in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A total order used to sort map entries deterministically.
    fn sort_key_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::UInt(_) | Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Object(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (
                    a.as_f64().unwrap_or(f64::NAN),
                    b.as_f64().unwrap_or(f64::NAN),
                );
                x.total_cmp(&y)
            }
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sort_key_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb).then_with(|| va.sort_key_cmp(vb)) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds an instance from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches a required object field (helper for derived code).
pub fn obj_field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` in {ty}")))
}

/// Requires `v` to be an array of exactly `n` elements (derived tuples).
pub fn tuple_items<'v>(v: &'v Value, ty: &str, n: usize) -> Result<&'v [Value], Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array for {ty}")))?;
    if items.len() != n {
        return Err(Error::custom(format!(
            "expected {n} elements for {ty}, got {}",
            items.len()
        )));
    }
    Ok(items)
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(concat!(
                    "expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(concat!(
                    "integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(concat!(
                    "expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!(
                    "integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

sint_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = tuple_items(v, "array", N)?;
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_value(item)?);
        }
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = tuple_items(v, "tuple", N)?;
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        // BTreeSet iterates in key order: already deterministic.
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Maps serialize as an array of `[key, value]` pair arrays sorted by the
/// serialized key — JSON objects require string keys, and sorting makes
/// `HashMap` output independent of hash order.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
        .collect();
    pairs.sort_by(|a, b| a.sort_key_cmp(b));
    Value::Array(pairs)
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom("expected array of map entries"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = tuple_items(item, "map entry", 2)?;
        out.push((K::from_value(&pair[0])?, V::from_value(&pair[1])?));
    }
    Ok(out)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_serialize_sorted() {
        let mut m = HashMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1u32, "a".to_string());
        m.insert(2u32, "b".to_string());
        let v = m.to_value();
        let items = v.as_array().unwrap();
        let keys: Vec<u64> = items
            .iter()
            .map(|p| p.as_array().unwrap()[0].as_u64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Some(2.5f64).to_value(), Value::Float(2.5));
        let x: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(x, None);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u32, 2.5f64, "x".to_string());
        let back: (u32, f64, String) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn integer_bounds_checked() {
        let v = Value::UInt(300);
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }
}
