#![warn(missing_docs)]

//! Offline stand-in for `proptest`: the subset of the strategy API this
//! workspace uses, driven by the deterministic [`rand`] shim.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its inputs and panics;
//! - seeding is deterministic per (test name, case index), so failures
//!   reproduce exactly on re-run;
//! - filtered strategies retry a bounded number of draws instead of
//!   tracking global rejection budgets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// How many redraws a filtered strategy attempts before giving up.
const MAX_FILTER_RETRIES: usize = 256;

/// Test-runner configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Value`.
///
/// `generate` returns `None` when the draw was rejected by a filter;
/// callers retry with fresh randomness up to `MAX_FILTER_RETRIES` (256).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` if this draw was filtered out.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting draws where `f`
    /// returns `None`. `_whence` is a diagnostic label (unused here).
    fn prop_filter_map<O, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Rejects draws for which `f` returns false.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Weighted union of strategies; used by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union choosing uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Inclusive range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` draws with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Test-runner support used by the `proptest!` macro expansion.
pub mod runner {
    use super::*;

    /// Error type carried by `prop_assert*` failures.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type returned by property bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Draws one value from `strategy`, retrying rejected draws.
    ///
    /// Panics if the filter rejects `MAX_FILTER_RETRIES` (256) consecutive
    /// draws — that signals an over-restrictive generator, as in real
    /// proptest.
    pub fn draw<S: Strategy>(strategy: &S, rng: &mut StdRng, test_name: &str) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = strategy.generate(rng) {
                return v;
            }
        }
        panic!(
            "proptest {test_name}: strategy rejected {MAX_FILTER_RETRIES} \
             consecutive draws; loosen the filter"
        );
    }

    /// Deterministic per-case RNG: same (test, case) always replays the
    /// same inputs.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED))
    }

    /// Runs `body` for `config.cases` cases, panicking with the case
    /// number on failure so the seed can be replayed.
    pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        for case in 0..config.cases {
            let mut rng = case_rng(test_name, case);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest {test_name} failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::core::result::Result::Err($crate::runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Uniformly chooses among strategy arms, boxing them to a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(stringify!($name), &config, |rng| {
                $(let $pat = $crate::runner::draw(&($strat), rng, stringify!($name));)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::runner;

    #[test]
    fn draws_are_deterministic() {
        let strat = (0u32..100).prop_map(|x| x * 2);
        let mut a = runner::case_rng("t", 3);
        let mut b = runner::case_rng("t", 3);
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0u32..10).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        let mut rng = runner::case_rng("filter", 0);
        for _ in 0..50 {
            let v = runner::draw(&strat, &mut rng, "filter");
            assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = runner::case_rng("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[runner::draw(&strat, &mut rng, "oneof") as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = collection::vec(0f64..1.0, 2..=5);
        let mut rng = runner::case_rng("vec", 0);
        for _ in 0..50 {
            let v = runner::draw(&strat, &mut rng, "vec");
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_defined_property(x in 0u64..1000, y in 0u64..1000) {
            prop_assert!(x + y < 2000);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        fn default_config_property(v in collection::vec(0i32..10, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
