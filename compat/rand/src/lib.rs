#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal implementation: a deterministic [`StdRng`] (xoshiro256++
//! seeded through SplitMix64) behind the [`Rng`]/[`SeedableRng`] traits.
//! Determinism is a feature here — every experiment, golden trace and
//! statistical test in the workspace is reproducible from a `u64` seed,
//! on every platform, independent of upstream algorithm changes.

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from an RNG ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via 128-bit multiply-shift.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// The random-number-generator trait (rand 0.8 subset).
pub trait Rng {
    /// The core primitive: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream rand's `StdRng`, the sequence for a given seed is
    /// guaranteed stable forever — golden traces depend on it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1CC_2002;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{rngs::StdRng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn int_ranges_cover_and_balance() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.05f64..1.2);
            assert!((0.05..1.2).contains(&x));
            let y = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
