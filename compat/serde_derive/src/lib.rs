//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote` —
//! the build environment is offline) and emit impls of the value-tree
//! `serde::Serialize`/`serde::Deserialize` traits. Supported shapes are
//! exactly what this workspace derives on:
//!
//! * named-field structs, tuple structs (newtype included), unit structs;
//! * enums with unit, newtype, tuple and struct variants;
//! * no generic parameters.
//!
//! JSON mapping: named struct → object; newtype struct → transparent
//! inner value; tuple struct → array; unit variant → its name as a
//! string; data variant → one-entry object `{"Name": payload}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: named (`Some(name)`) or positional (`None`).
struct Field {
    name: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field-list token sequence on top-level commas, tracking both
/// group nesting (automatic — groups are single tokens) and angle-bracket
/// depth (manual — `<`/`>` are plain puncts).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses one field declaration (attrs/vis stripped by the caller's
/// splitter — we strip again here to be safe).
fn parse_field(tokens: &[TokenTree]) -> Field {
    let i = skip_attrs_and_vis(tokens, 0);
    // Named field iff `ident :` follows.
    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) =
        (tokens.get(i), tokens.get(i + 1))
    {
        if p.as_char() == ':' {
            return Field {
                name: Some(id.to_string()),
            };
        }
    }
    Field { name: None }
}

fn parse_fields_group(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens)
        .iter()
        .map(|f| parse_field(f))
        .collect()
}

fn shape_of(fields: &[Field]) -> Shape {
    if fields.is_empty() {
        Shape::Unit
    } else if fields[0].name.is_some() {
        Shape::Named(
            fields
                .iter()
                .map(|f| f.name.clone().expect("mixed named/positional fields"))
                .collect(),
        )
    } else {
        Shape::Tuple(fields.len())
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive({name}): generic types are not supported by the offline serde shim");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    shape_of(&parse_fields_group(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    match shape_of(&parse_fields_group(g)) {
                        Shape::Unit => Shape::Tuple(0),
                        s => s,
                    }
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("derive({name}): expected enum body, found {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let vname = match body_tokens.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => panic!("derive({name}): expected variant, found {other:?}"),
                };
                j += 1;
                let shape = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        shape_of(&parse_fields_group(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        match shape_of(&parse_fields_group(g)) {
                            Shape::Unit => Shape::Tuple(0),
                            s => s,
                        }
                    }
                    _ => Shape::Unit,
                };
                // Skip optional `, `.
                if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

// ---- code generation (as source strings, parsed back into tokens) ----------

fn named_ser_body(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(""))
}

fn named_de_body(ty_path: &str, ty_label: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::obj_field({src}, \"{ty_label}\", \"{f}\")?)?,"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(""))
}

fn derive_impls(item: &Item, gen_ser: bool, gen_de: bool) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            let (ser_body, de_body) = match shape {
                Shape::Unit => (
                    "::serde::Value::Null".to_string(),
                    format!("::std::result::Result::Ok({name})"),
                ),
                Shape::Tuple(1) => (
                    "::serde::Serialize::to_value(&self.0)".to_string(),
                    format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                    ),
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                        .collect();
                    (
                        format!("::serde::Value::Array(::std::vec![{}])", items.join("")),
                        format!(
                            "{{ let items = ::serde::tuple_items(v, \"{name}\", {n})?; \
                             ::std::result::Result::Ok({name}({})) }}",
                            inits.join("")
                        ),
                    )
                }
                Shape::Named(fields) => (
                    named_ser_body(fields, |f| format!("&self.{f}")),
                    format!(
                        "::std::result::Result::Ok({})",
                        named_de_body(name, name, fields, "v")
                    ),
                ),
            };
            if gen_ser {
                out.push_str(&format!(
                    "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ {ser_body} }} }}"
                ));
            }
            if gen_de {
                out.push_str(&format!(
                    "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {de_body} }} }}"
                ));
            }
        }
        Item::Enum { name, variants } => {
            // Serialize: match on self.
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(""))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),",
                            binds.join(",")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(",");
                        let payload = named_ser_body(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),"
                        ));
                    }
                }
            }
            if gen_ser {
                out.push_str(&format!(
                    "impl ::serde::Serialize for {name} {{ \
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
                ));
            }

            // Deserialize: strings name unit variants; one-entry objects
            // name data variants.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.shape {
                    Shape::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({path}),")),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({path}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let items = ::serde::tuple_items(payload, \"{name}::{vn}\", {n})?; \
                             ::std::result::Result::Ok({path}({})) }},",
                            inits.join("")
                        ));
                    }
                    Shape::Named(fields) => {
                        let body =
                            named_de_body(&path, &format!("{name}::{vn}"), fields, "payload");
                        data_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({body}),"));
                    }
                }
            }
            if gen_de {
                out.push_str(&format!(
                    "impl ::serde::Deserialize for {name} {{ \
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                       match v {{ \
                         ::serde::Value::Str(s) => match s.as_str() {{ \
                           {unit_arms} \
                           other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                         }}, \
                         ::serde::Value::Object(pairs) if pairs.len() == 1 => {{ \
                           let (tag, payload) = (&pairs[0].0, &pairs[0].1); \
                           let _ = payload; \
                           match tag.as_str() {{ \
                             {data_arms} \
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                               ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                           }} \
                         }}, \
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                           \"expected string or single-entry object for {name}\")), \
                       }} \
                     }} }}"
                ));
            }
        }
    }
    out
}

/// Derives the value-tree `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_impls(&item, true, false)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the value-tree `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_impls(&item, false, true)
        .parse()
        .expect("generated Deserialize impl parses")
}
