#![warn(missing_docs)]

//! Offline stand-in for `rayon`: the `into_par_iter().map(..).collect()`
//! shape this workspace uses, implemented with `std::thread::scope`.
//!
//! Items are materialised eagerly, split into contiguous chunks (one per
//! available core), mapped on scoped threads, and re-assembled in the
//! original order — so `collect()` is deterministic regardless of thread
//! scheduling.

use std::ops::Range;

/// Converts a collection into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Creates the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Minimal parallel-iterator interface: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Consumes the iterator into its items (in order).
    fn into_items(self) -> Vec<Self::Item>;

    /// Lazily attaches a map stage, executed in parallel at `collect`.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        ParMap { inner: self, f }
    }
}

/// Eager list of items pretending to be a parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator; the closure runs on scoped threads when
/// collected.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParMap<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    /// Runs the map stage across threads and gathers results in input
    /// order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let items = self.inner.into_items();
        let n = items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let f = &self.f;
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<Vec<O>>> = Vec::new();
        slots.resize_with(threads, || None);
        // Hand each scoped thread one contiguous chunk and one output
        // slot; order is restored by slot index, not completion order.
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(threads);
        let mut items = items;
        while items.len() > chunk {
            let rest = items.split_off(chunk);
            chunks.push(items);
            items = rest;
        }
        chunks.push(items);
        std::thread::scope(|scope| {
            for (slot, chunk_items) in slots.iter_mut().zip(chunks) {
                scope.spawn(move || {
                    *slot = Some(chunk_items.into_iter().map(f).collect());
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|s| s.expect("scoped thread filled its slot"))
            .collect()
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn vec_source() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x: i32| x.to_string())
            .collect();
        assert_eq!(out, ["1", "2", "3"]);
    }
}
