#![warn(missing_docs)]

//! Offline stand-in for `serde_json`: prints and parses the [`serde`]
//! shim's [`Value`] tree as JSON.
//!
//! Output is deterministic: object fields keep their insertion order
//! (struct declaration order from the derive), floats print through
//! Rust's shortest-round-trip `Display`, and integers print exactly.
//! `f64` round-trips bit-exactly through `to_string` → `from_str`, which
//! the golden-trace tests rely on.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// 1-based line of the error, when known (0 = not applicable).
    line: usize,
    /// 1-based column of the error, when known.
    column: usize,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
            line: 0,
            column: 0,
        }
    }

    fn at(msg: impl fmt::Display, line: usize, column: usize) -> Self {
        Error {
            msg: msg.to_string(),
            line,
            column,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::new)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::new)
}

// ---- printer ---------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Rust's Display prints the shortest decimal that round-trips,
            // without exponents — valid JSON and bit-exact on re-parse.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains('.') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn line_col(&self) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        let (line, col) = self.line_col();
        Error::at(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                self.peek()
                    .map(|c| format!("`{}`", c as char))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let v = self.parse_inner(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn parse_inner(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 512 {
            return Err(self.err("recursion depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_inner(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_inner(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{kw}`)")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

fn parse_value(s: &str) -> Result<Value, Error> {
    Parser::new(s).parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("2.5").unwrap();
        assert_eq!(x, 2.5);
        let s: String = from_str("\"a\\u0041b\"").unwrap();
        assert_eq!(s, "aAb");
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            12345.678901234567,
            -0.000001,
            1e300,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn large_u64_survive() {
        let seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let json = to_string(&seed).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.5]]");
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_prints_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Vec<u32>>("[1, x]").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(to_string(&f64::NAN).is_err());
    }
}
