//! A guided walkthrough of the paper, start to finish, on one small
//! application — every concept of Zhu et al. (ICPP'02) demonstrated with
//! real numbers:
//!
//! 1. the AND/OR model (§2.1) and its program sections,
//! 2. power management points and their statistics (§2.2),
//! 3. the off-line phase: canonical schedules and latest start times
//!    (§3.2),
//! 4. the on-line phase: greedy slack sharing vs speculation (§3–4),
//! 5. the evaluation quantities: normalized energy and speed changes (§5).
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::Segment;
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. The AND/OR application (paper §2.1) ==\n");
    // Figure 1's two structures combined: an AND fork and an OR branch.
    let app = Segment::seq([
        Segment::task("A", 8.0, 5.0),
        Segment::par([Segment::task("B", 5.0, 3.0), Segment::task("C", 4.0, 2.0)]),
        Segment::branch([
            (0.3, Segment::seq([Segment::task("F", 8.0, 6.0)])),
            (0.7, Segment::seq([Segment::task("G", 5.0, 3.0)])),
        ]),
    ]);
    let graph = app.lower()?;
    println!(
        "tasks: {}   AND nodes: {}   OR nodes: {}",
        graph.num_tasks(),
        graph.nodes().iter().filter(|n| n.kind.is_and()).count(),
        graph.num_or_nodes()
    );

    println!("\n== 2-3. The off-line phase (paper §3.2) ==\n");
    // Two processors, Transmeta levels, deadline 30 ms.
    let setup = Setup::new(graph, ProcessorModel::transmeta5400(), 2, 30.0)?;
    println!(
        "canonical worst case Tw = {:.1} ms  (longest path: A, then B on one \
         processor while C runs on the other, then the 8 ms branch)",
        setup.plan.worst_total
    );
    println!(
        "average case Ta = {:.1} ms  (ACETs, branch probabilities weighted)",
        setup.plan.avg_total
    );
    println!(
        "deadline D = {:.0} ms → static slack {:.1} ms (load {:.2})",
        setup.plan.deadline,
        setup.plan.static_slack(),
        setup.plan.load()
    );
    println!("\nlatest start times (canonical schedule shifted to end at D):");
    for (id, node) in setup.graph.iter() {
        if node.kind.is_computation() {
            println!(
                "  {:<4} LST = {:>5.1} ms   (worst-case remaining after this \
                 start: {:>4.1} ms)",
                node.name,
                setup.plan.lst[id.index()].unwrap(),
                setup.plan.deadline - setup.plan.lst[id.index()].unwrap()
            );
        }
    }

    println!("\n== 4. One on-line run, traced (paper §3.3, Figure 2) ==\n");
    let mut rng = StdRng::seed_from_u64(2002);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    for scheme in [Scheme::Gss, Scheme::As] {
        let mut policy = setup.policy(scheme);
        let res = setup.simulator(true).run(policy.as_mut(), &real)?;
        println!("{}:", scheme.name());
        for e in res.trace.as_ref().unwrap() {
            println!(
                "  {:<4} p{}  [{:>5.2}, {:>5.2}] ms at speed {:.2}",
                setup.graph.node(e.node).name,
                e.proc,
                e.start,
                e.end,
                e.speed
            );
        }
        println!(
            "  → finished {:.2}/{:.0} ms, energy {:.2}, {} speed change(s)\n",
            res.finish_time,
            res.deadline,
            res.total_energy(),
            res.energy.speed_changes()
        );
    }

    println!("== 5. The evaluation quantities (paper §5) ==\n");
    let mut rng = StdRng::seed_from_u64(42);
    let etm = ExecTimeModel::paper_defaults();
    let mut energy = vec![0.0_f64; Scheme::ALL.len()];
    let mut changes = vec![0.0_f64; Scheme::ALL.len()];
    const RUNS: usize = 1000;
    for _ in 0..RUNS {
        let real = setup.sample(&etm, &mut rng);
        for (i, s) in Scheme::ALL.iter().enumerate() {
            let res = setup.run(*s, &real)?;
            assert!(!res.missed_deadline, "Theorem 1 violated?!");
            energy[i] += res.total_energy();
            changes[i] += res.energy.speed_changes() as f64;
        }
    }
    println!("{RUNS} runs, paired realizations (the paper's methodology):");
    println!(
        "{:<7} {:>12} {:>14}",
        "scheme", "norm.energy", "changes/run"
    );
    for (i, s) in Scheme::ALL.iter().enumerate() {
        println!(
            "{:<7} {:>12.4} {:>14.2}",
            s.name(),
            energy[i] / energy[0],
            changes[i] / RUNS as f64
        );
    }
    println!("\nEvery run met its deadline — Theorem 1 in action.");
    Ok(())
}
