//! Quickstart: build an AND/OR application, schedule it with greedy slack
//! sharing on two DVS processors, and compare the energy against running
//! without power management.
//!
//! Run with: `cargo run --example quickstart`

use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::Segment;
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The application: a preprocessing task, a parallel pair, then a
    // data-dependent branch — 30% of inputs need the expensive path.
    // Task attributes are (worst-case ms, average-case ms) at full speed.
    let app = Segment::seq([
        Segment::task("preprocess", 8.0, 5.0),
        Segment::par([
            Segment::task("filter", 5.0, 3.0),
            Segment::task("transform", 4.0, 2.0),
        ]),
        Segment::branch([
            (0.3, Segment::task("deep-analysis", 10.0, 6.0)),
            (0.7, Segment::task("quick-analysis", 3.0, 2.0)),
        ]),
    ]);

    // Two processors with the Transmeta TM5400's 16 voltage/speed levels,
    // and a 40 ms deadline. `Setup` runs the paper's off-line phase:
    // canonical LTF schedules, latest start times, per-PMP statistics.
    let setup = Setup::new(app.lower()?, ProcessorModel::transmeta5400(), 2, 40.0)?;
    println!(
        "worst-case finish {:.1} ms, average {:.1} ms, deadline {:.1} ms (load {:.2})",
        setup.plan.worst_total,
        setup.plan.avg_total,
        setup.plan.deadline,
        setup.plan.load()
    );

    // Simulate 1000 frames; each frame draws OR decisions and actual
    // execution times, then every scheme runs on the identical draw.
    let mut rng = StdRng::seed_from_u64(2002);
    let etm = ExecTimeModel::paper_defaults();
    let mut totals = vec![0.0_f64; Scheme::ALL.len()];
    const FRAMES: usize = 1000;
    for _ in 0..FRAMES {
        let real = setup.sample(&etm, &mut rng);
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            let res = setup.run(*scheme, &real)?;
            assert!(!res.missed_deadline, "{scheme} must meet the deadline");
            totals[i] += res.total_energy();
        }
    }

    let npm = totals[0];
    println!("\nscheme   normalized energy (lower is better)");
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        println!("{:<8} {:.4}", scheme.name(), totals[i] / npm);
    }
    Ok(())
}
