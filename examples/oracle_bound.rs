//! How close do the on-line schemes get to a clairvoyant scheduler?
//!
//! Paper §3.3 motivates speculation with the observation that a
//! clairvoyant algorithm — one that knows every task's actual execution
//! time in advance — achieves minimal energy by running everything at one
//! speed. This example measures each scheme's distance from that bound on
//! both evaluation platforms.
//!
//! Two effects to look for in the output:
//!
//! * on the fine-grained Transmeta table, adaptive speculation (AS) tracks
//!   the clairvoyant bound within a few percent at every load;
//! * on the coarse XScale table, schemes occasionally dip *below* 1.0 —
//!   mixing two adjacent levels across tasks beats any single rounded-up
//!   level, something the single-speed clairvoyant cannot express.
//!
//! Run with: `cargo run --release --example oracle_bound`

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::AtrParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0xA72);
    let app = AtrParams::default().build_jittered(&mut rng)?.lower()?;
    const RUNS: usize = 400;

    for model in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
        println!("== {} ==", model.name());
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8}",
            "load", "GSS", "AS", "SPM", "NPM"
        );
        for load in [0.3, 0.5, 0.7, 0.9] {
            let setup = Setup::for_load(app.clone(), model.clone(), 2, load)?;
            let mut rng = StdRng::seed_from_u64(99);
            let etm = ExecTimeModel::paper_defaults();
            let (mut oracle, mut gss, mut asp, mut spm, mut npm) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for _ in 0..RUNS {
                let real = setup.sample(&etm, &mut rng);
                oracle += setup.run_oracle(&real)?.total_energy();
                gss += setup.run(Scheme::Gss, &real)?.total_energy();
                asp += setup.run(Scheme::As, &real)?.total_energy();
                spm += setup.run(Scheme::Spm, &real)?.total_energy();
                npm += setup.run(Scheme::Npm, &real)?.total_energy();
            }
            println!(
                "{:<6} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                load,
                gss / oracle,
                asp / oracle,
                spm / oracle,
                npm / oracle
            );
        }
        println!();
    }
    println!("values are mean energy over the clairvoyant single-speed bound;");
    println!("< 1.0 is possible on coarse level tables (level mixing).");
    Ok(())
}
