//! Extending the scheduler: writing your own speed policy.
//!
//! The engine accepts anything implementing `mp_sim::Policy`. This example
//! builds a *stochastic race-to-sleep* policy — it flips between full speed
//! and a low level, never dropping below the GSS-guaranteed speed — and
//! checks that (a) it still meets every deadline (the GSS floor is doing
//! its job) and (b) it burns more energy than plain GSS (racing wastes the
//! quadratic voltage saving).
//!
//! Run with: `cargo run --example custom_policy`

use pas_andor::core::{GssPolicy, Scheme, Setup};
use pas_andor::graph::NodeId;
use pas_andor::power::ProcessorModel;
use pas_andor::sim::{DispatchCtx, ExecTimeModel, Policy, SpeedDecision};
use pas_andor::workloads::synthetic_app;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs every other task flat-out and the rest at the guaranteed minimum.
struct RaceToSleep<'a> {
    /// Deadline safety comes from composing with the GSS policy.
    guarantee: GssPolicy<'a>,
    model: &'a ProcessorModel,
    rng: StdRng,
}

impl Policy for RaceToSleep<'_> {
    fn name(&self) -> &str {
        "race-to-sleep"
    }

    fn begin_run(&mut self) {
        self.rng = StdRng::seed_from_u64(0xACE);
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let floor = self.guarantee.speed_for(task, ctx).point.speed;
        let race: bool = self.rng.gen();
        let desired = if race { 1.0 } else { floor };
        SpeedDecision {
            point: self.model.quantize_up(desired.max(floor)),
            ran_pmp: true,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = synthetic_app().lower()?;
    let setup = Setup::for_load(graph, ProcessorModel::xscale(), 2, 0.6)?;

    let mut custom = RaceToSleep {
        guarantee: GssPolicy::new(&setup.plan, &setup.model, setup.overheads),
        model: &setup.model,
        rng: StdRng::seed_from_u64(0),
    };

    let etm = ExecTimeModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(123);
    let sim = setup.simulator(false);
    let (mut e_custom, mut e_gss, mut e_npm) = (0.0, 0.0, 0.0);
    const RUNS: usize = 500;
    for _ in 0..RUNS {
        let real = setup.sample(&etm, &mut rng);
        let res = sim.run(&mut custom, &real)?;
        assert!(
            !res.missed_deadline,
            "the GSS floor must keep any custom policy deadline-safe"
        );
        e_custom += res.total_energy();
        e_gss += setup.run(Scheme::Gss, &real)?.total_energy();
        e_npm += setup.run(Scheme::Npm, &real)?.total_energy();
    }

    println!("policy          normalized energy");
    println!("NPM             1.0000");
    println!("race-to-sleep   {:.4}", e_custom / e_npm);
    println!("GSS             {:.4}", e_gss / e_npm);
    println!();
    println!(
        "race-to-sleep meets every deadline (inherited from the GSS floor) \
         but wastes {:.1}% more energy than GSS — racing forfeits the \
         quadratic voltage saving.",
        100.0 * (e_custom - e_gss) / e_gss
    );
    Ok(())
}
