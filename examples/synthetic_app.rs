//! The paper's Figure-3 synthetic application, dissected.
//!
//! Prints the program-section decomposition, the off-line phase's
//! per-PMP statistics (worst/average remaining times), one traced GSS run,
//! and an energy comparison of all six schemes.
//!
//! Run with: `cargo run --example synthetic_app`

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::synthetic_app;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = synthetic_app().lower()?;
    let setup = Setup::for_load(graph, ProcessorModel::transmeta5400(), 2, 0.5)?;

    println!("== Program sections ==");
    for (i, section) in setup.sections.sections().iter().enumerate() {
        let names: Vec<&str> = section
            .nodes
            .iter()
            .map(|&n| setup.graph.node(n).name.as_str())
            .collect();
        let exit = section
            .exit_or
            .map(|o| setup.graph.node(o).name.clone())
            .unwrap_or_else(|| "end".into());
        println!(
            "  s{i} (depth {}): [{}] -> {}",
            section.depth,
            names.join(", "),
            exit
        );
    }

    println!("\n== Off-line phase ==");
    println!(
        "  Tw = {:.1} ms, Ta = {:.1} ms, deadline = {:.1} ms",
        setup.plan.worst_total, setup.plan.avg_total, setup.plan.deadline
    );
    let mut pmps: Vec<_> = setup.plan.branch_worst.iter().collect();
    pmps.sort_by_key(|((or, k), _)| (*or, *k));
    for ((or, k), tw) in pmps {
        let ta = setup.plan.branch_avg[&(*or, *k)];
        println!(
            "  PMP at {} branch {k}: Tw_k = {tw:.1} ms, Ta_k = {ta:.1} ms",
            setup.graph.node(*or).name
        );
    }

    println!("\n== One traced GSS run ==");
    let mut rng = StdRng::seed_from_u64(42);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let mut policy = setup.policy(Scheme::Gss);
    let res = setup.simulator(true).run(policy.as_mut(), &real)?;
    println!("  task            proc  start(ms)  end(ms)  speed");
    for e in res.trace.as_ref().unwrap() {
        println!(
            "  {:<15} {:>4}  {:>9.2}  {:>7.2}  {:>5.2}",
            setup.graph.node(e.node).name,
            e.proc,
            e.start,
            e.end,
            e.speed
        );
    }
    println!(
        "  finished at {:.2} ms (deadline {:.1}), energy {:.2}, {} speed changes",
        res.finish_time,
        res.deadline,
        res.total_energy(),
        res.energy.speed_changes()
    );

    println!("\n== Scheme comparison (500 runs) ==");
    let mut rng = StdRng::seed_from_u64(7);
    let etm = ExecTimeModel::paper_defaults();
    let mut totals = vec![0.0_f64; Scheme::ALL.len()];
    for _ in 0..500 {
        let real = setup.sample(&etm, &mut rng);
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            totals[i] += setup.run(*scheme, &real)?.total_energy();
        }
    }
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        println!("  {:<7} {:.4}", scheme.name(), totals[i] / totals[0]);
    }
    Ok(())
}
