//! Automated target recognition (ATR): the paper's motivating workload.
//!
//! Each frame detects a variable number of regions of interest; every
//! detected ROI is compared against all templates in parallel. This example
//! configures the ATR generator, shows how the OR structure exposes
//! dynamic slack, and sweeps the processor count to show where the
//! parallelism saturates.
//!
//! Run with: `cargo run --release --example atr_pipeline`

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::AtrParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ATR instance: up to 6 ROIs per frame (most frames have 1-2),
    // 4 templates, 2 frames per deadline window.
    let params = AtrParams {
        max_rois: 6,
        roi_probs: vec![0.30, 0.28, 0.18, 0.12, 0.08, 0.04],
        num_templates: 4,
        frames: 2,
        ..AtrParams::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let app = params.build_jittered(&mut rng)?;
    let graph = app.lower()?;
    println!(
        "ATR instance: {} tasks, {} OR nodes, total WCET {:.0} ms",
        graph.num_tasks(),
        graph.num_or_nodes(),
        graph.total_wcet()
    );

    let etm = ExecTimeModel::paper_defaults();
    println!("\nprocs  scheme  norm.energy  speed-changes/run");
    for procs in [1, 2, 4, 6] {
        // Deadline chosen for 60% load at each processor count.
        let setup = Setup::for_load(graph.clone(), ProcessorModel::xscale(), procs, 0.6)?;
        let mut sim_rng = StdRng::seed_from_u64(99);
        const RUNS: usize = 300;
        let mut energy = [0.0_f64; 3];
        let mut changes = [0.0_f64; 3];
        let schemes = [Scheme::Npm, Scheme::Gss, Scheme::As];
        for _ in 0..RUNS {
            let real = setup.sample(&etm, &mut sim_rng);
            for (i, s) in schemes.iter().enumerate() {
                let res = setup.run(*s, &real)?;
                assert!(!res.missed_deadline);
                energy[i] += res.total_energy();
                changes[i] += res.energy.speed_changes() as f64;
            }
        }
        for (i, s) in schemes.iter().enumerate() {
            println!(
                "{:>5}  {:<6}  {:>10.4}  {:>16.2}",
                procs,
                s.name(),
                energy[i] / energy[0],
                changes[i] / RUNS as f64
            );
        }
        println!();
    }
    println!("Note how the dynamic schemes' relative savings shrink as the");
    println!("processor count outgrows the application's parallelism — the");
    println!("effect the paper reports for its 4- and 6-processor runs.");
    Ok(())
}
