//! Decoding a video stream under a per-frame deadline.
//!
//! Uses the MPEG-style workload (`workloads::video`): each frame's work
//! depends on its type (I/P/B), so the OR structure exposes dynamic slack
//! frame by frame. The stream runs twice — with every frame starting at
//! `f_max` (the paper's independent-instances assumption) and with DVS
//! state carried across frames (`mp_sim::run_stream`) — to show the
//! transition savings of warm starts.
//!
//! Run with: `cargo run --release --example video_stream`

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::{run_stream, ExecTimeModel, Realization};
use pas_andor::workloads::VideoParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams {
        frames: 2, // frames per deadline window (GOP slice)
        ..VideoParams::default()
    };
    let graph = params.build()?.lower()?;
    println!(
        "video app: {} tasks, {} OR nodes per window",
        graph.num_tasks(),
        graph.num_or_nodes()
    );

    // 30 fps-style budget: schedule each window at 60% load.
    let setup = Setup::for_load(graph, ProcessorModel::xscale(), 2, 0.6)?;
    println!(
        "window deadline {:.1} ms (Tw {:.1} ms, Ta {:.1} ms)\n",
        setup.plan.deadline, setup.plan.worst_total, setup.plan.avg_total
    );

    const WINDOWS: usize = 64;
    let mut rng = StdRng::seed_from_u64(30);
    let etm = ExecTimeModel::paper_defaults();
    let stream: Vec<Realization> = (0..WINDOWS).map(|_| setup.sample(&etm, &mut rng)).collect();

    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "scheme", "cold chg/win", "warm chg/win", "warm energy Δ"
    );
    for scheme in [Scheme::Spm, Scheme::Gss, Scheme::Ss1, Scheme::As] {
        let sim = setup.simulator(false);
        let mut policy = setup.policy(scheme);
        let cold = run_stream(&sim, policy.as_mut(), &stream, false)?;
        let warm = run_stream(&sim, policy.as_mut(), &stream, true)?;
        assert_eq!(cold.misses + warm.misses, 0);
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>13.2}%",
            scheme.name(),
            cold.speed_changes() as f64 / WINDOWS as f64,
            warm.speed_changes() as f64 / WINDOWS as f64,
            100.0 * (warm.total_energy() - cold.total_energy()) / cold.total_energy()
        );
    }
    println!();
    println!("warm starts (DVS state kept across windows) avoid the return-to-");
    println!("f_max transition the paper's per-instance model pays every frame.");
    Ok(())
}
