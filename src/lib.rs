#![warn(missing_docs)]

//! # pas-andor — Power-Aware Scheduling for AND/OR Graphs
//!
//! A from-scratch Rust reproduction of *Zhu, AbouGhazaleh, Mossé, Melhem:
//! "Power Aware Scheduling for AND/OR Graphs in Multi-Processor Real-Time
//! Systems", ICPP 2002* — the AND/OR application model, the greedy
//! slack-sharing DVS scheduler with its deadline guarantee, the speculative
//! variants, the multiprocessor execution engine, the two processor power
//! models of the evaluation, and every figure/table of the paper's
//! experimental section.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] ([`andor_graph`]) — AND/OR task graphs, program sections,
//!   scenarios, structured construction with loop expansion;
//! * [`power`] ([`dvfs_power`]) — voltage/frequency tables (Transmeta
//!   TM5400, Intel XScale, synthetic), energy accounting, overheads;
//! * [`sim`] ([`mp_sim`]) — the deterministic multiprocessor engine;
//! * [`core`] ([`pas_core`]) — the off-line phase and the six on-line
//!   schemes (NPM, SPM, GSS, SS(1), SS(2), AS);
//! * [`workloads`] — ATR, the Figure-3 synthetic application, random
//!   generators;
//! * [`stats`] ([`pas_stats`]) — sampling and summary statistics;
//! * [`experiments`] ([`pas_experiments`]) — the Monte-Carlo harness and
//!   per-figure sweeps;
//! * [`obs`] ([`pas_obs`]) — the structured event stream, metrics
//!   registry, energy ledger and trace exporters;
//! * [`analyze`] ([`pas_analyze`]) — the `PAS0xxx` static diagnostics and
//!   the Theorem-1 feasibility verifier behind `pas check`.
//!
//! ## Quick start
//!
//! ```
//! use pas_andor::graph::Segment;
//! use pas_andor::power::ProcessorModel;
//! use pas_andor::core::{Scheme, Setup};
//! use pas_andor::sim::ExecTimeModel;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // An application: A, then either B (30%) or C (70%).
//! let app = Segment::seq([
//!     Segment::task("A", 8.0, 5.0),
//!     Segment::branch([
//!         (0.3, Segment::task("B", 5.0, 3.0)),
//!         (0.7, Segment::task("C", 4.0, 2.0)),
//!     ]),
//! ]);
//!
//! // Two processors, 26 ms deadline, Transmeta TM5400 levels.
//! let setup = Setup::new(app.lower()?, ProcessorModel::transmeta5400(), 2, 26.0)?;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
//! let gss = setup.run(Scheme::Gss, &real).expect("valid setup simulates");
//! assert!(!gss.missed_deadline);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use andor_graph as graph;
pub use dvfs_power as power;
pub use mp_sim as sim;
pub use pas_analyze as analyze;
pub use pas_core as core;
pub use pas_experiments as experiments;
pub use pas_obs as obs;
pub use pas_stats as stats;
pub use workloads;
