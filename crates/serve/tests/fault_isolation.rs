//! Fault-isolation suite: the daemon must answer *every* request with a
//! structured response and survive — panicking handlers, deadline blowers
//! and typed simulation failures included.

use pas_serve::{ServeConfig, Service};
use serde::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn service(workers: usize, queue_cap: usize) -> Service {
    Service::start(ServeConfig {
        workers,
        queue_cap,
        default_timeout_ms: 30_000,
        debug_faults: true,
        ..ServeConfig::default()
    })
}

fn status_of(resp: &str) -> String {
    let v: Value = serde_json::from_str(resp).expect("response is valid JSON");
    v.get("status")
        .and_then(Value::as_str)
        .expect("response has a status")
        .to_string()
}

/// Panic messages from injected handler faults would spam the test
/// output; silence the hook for the duration of a closure.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn panicking_handler_answers_structured_and_worker_survives() {
    let svc = service(2, 8);
    let resp = with_quiet_panics(|| svc.handle_line(r#"{"id":"p1","kind":"debug-panic"}"#));
    assert_eq!(status_of(&resp), "panic");
    assert!(resp.contains("PAS0506"), "{resp}");

    // The same pool keeps serving real work afterwards.
    let next = svc.handle_line(r#"{"id":"p2","kind":"run","workload":"synthetic"}"#);
    assert_eq!(status_of(&next), "ok");
    assert_eq!(svc.counter("serve.panics"), 1);
    assert_eq!(svc.counter("serve.worker_recoveries"), 1);
    assert_eq!(svc.shutdown(), 0);
}

#[test]
fn deadline_exceeding_handler_answers_timeout_and_worker_survives() {
    let svc = service(2, 8);
    let resp =
        svc.handle_line(r#"{"id":"t1","kind":"debug-sleep","sleep_ms":60000,"timeout_ms":40}"#);
    assert_eq!(status_of(&resp), "timeout");
    assert!(resp.contains("PAS0505"), "{resp}");

    let next = svc.handle_line(r#"{"id":"t2","kind":"run","workload":"synthetic"}"#);
    assert_eq!(status_of(&next), "ok");
    assert_eq!(svc.counter("serve.timeouts"), 1);
    // Cooperative cancellation released the worker, so the drain is clean.
    assert_eq!(svc.shutdown(), 0);
}

#[test]
fn sim_error_handler_answers_error_and_worker_survives() {
    let svc = service(2, 8);
    let resp = svc.handle_line(r#"{"id":"f1","kind":"debug-fail"}"#);
    assert_eq!(status_of(&resp), "error");
    assert!(resp.contains("PAS0508"), "{resp}");

    let next = svc.handle_line(r#"{"id":"f2","kind":"check","workload":"synthetic"}"#);
    assert_eq!(status_of(&next), "ok");
    assert_eq!(svc.shutdown(), 0);
}

/// The acceptance scenario: a 4-worker pool under 100 concurrent mixed
/// requests — at least 10 panicking and 10 deadline-exceeding — must
/// produce 100 structured responses, zero daemon crashes, and a plan
/// cache hit rate above zero.
#[test]
fn mixed_storm_of_100_requests_all_get_structured_responses() {
    let svc = Arc::new(service(4, 128));
    let counted = Arc::new(AtomicUsize::new(0));

    let lines: Vec<String> = (0..100)
        .map(|i| match i % 10 {
            // 10 panicking handlers.
            0 => format!(r#"{{"id":"r{i}","kind":"debug-panic"}}"#),
            // 10 deadline blowers (sleep far past their 30ms budget).
            1 => {
                format!(r#"{{"id":"r{i}","kind":"debug-sleep","sleep_ms":60000,"timeout_ms":30}}"#)
            }
            // 10 typed failures.
            2 => format!(r#"{{"id":"r{i}","kind":"debug-fail"}}"#),
            // 10 malformed lines.
            3 => format!("{{r{i} not json"),
            // 20 identical plans: the repeats must hit the cache.
            4 | 5 => r#"{"id":"plan","kind":"plan","workload":"synthetic","load":0.5}"#.to_string(),
            // 10 checks.
            6 => format!(r#"{{"id":"r{i}","kind":"check","workload":"synthetic"}}"#),
            // 10 status probes.
            7 => format!(r#"{{"id":"r{i}","kind":"status"}}"#),
            // 20 seeded runs.
            _ => format!(
                r#"{{"id":"r{i}","kind":"run","workload":"synthetic","scheme":"gss","seed":{i}}}"#
            ),
        })
        .collect();

    let responses = with_quiet_panics(|| {
        let handles: Vec<_> = lines
            .into_iter()
            .map(|line| {
                let svc = Arc::clone(&svc);
                let counted = Arc::clone(&counted);
                std::thread::spawn(move || {
                    let resp = svc.handle_line(&line);
                    counted.fetch_add(1, Ordering::SeqCst);
                    resp
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread survives"))
            .collect::<Vec<_>>()
    });

    // Every one of the 100 requests got exactly one structured response.
    assert_eq!(counted.load(Ordering::SeqCst), 100);
    assert_eq!(responses.len(), 100);
    let mut by_status = std::collections::BTreeMap::new();
    for resp in &responses {
        *by_status.entry(status_of(resp)).or_insert(0u32) += 1;
    }
    let n = |s: &str| by_status.get(s).copied().unwrap_or(0);
    assert!(n("panic") >= 10, "statuses: {by_status:?}");
    assert!(n("timeout") >= 10, "statuses: {by_status:?}");
    assert!(n("error") >= 20, "statuses: {by_status:?}"); // typed + malformed
    assert!(n("ok") >= 40, "statuses: {by_status:?}");

    // The daemon is alive and the pool still answers after the storm.
    let after = svc.handle_line(r#"{"id":"after","kind":"run","workload":"synthetic"}"#);
    assert_eq!(status_of(&after), "ok");

    // Metrics saw every fault class, and the identical plans hit the cache.
    assert!(svc.counter("serve.panics") >= 10);
    assert!(svc.counter("serve.timeouts") >= 10);
    let hits = svc.counter("serve.cache.hits");
    let misses = svc.counter("serve.cache.misses");
    assert!(
        hits > 0,
        "cache hit rate must be > 0 (hits={hits} misses={misses})"
    );

    // The timed-out sleepers were cancelled cooperatively, so the drain
    // completes without abandoning workers.
    assert_eq!(svc.shutdown(), 0);
}

#[test]
fn back_pressure_sheds_with_retry_after_instead_of_queueing_unboundedly() {
    // 1 worker, tiny queue: park the worker, fill the queue, then watch
    // overflow shed with PAS0504 + retry_after_ms.
    let svc = Arc::new(service(1, 2));
    let parked: Vec<_> = (0..3)
        .map(|i| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.handle_line(&format!(
                    r#"{{"id":"park{i}","kind":"debug-sleep","sleep_ms":60000,"timeout_ms":2000}}"#
                ))
            })
        })
        .collect();
    // Wait until the worker is busy and the queue is saturated.
    let t0 = std::time::Instant::now();
    while svc.counter("serve.shed") == 0 && t0.elapsed() < std::time::Duration::from_secs(10) {
        let resp = svc.handle_line(r#"{"id":"probe","kind":"debug-fail"}"#);
        if status_of(&resp) == "shed" {
            assert!(resp.contains("PAS0504"), "{resp}");
            assert!(resp.contains("retry_after_ms"), "{resp}");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(svc.counter("serve.shed") > 0, "an overflow request shed");
    for h in parked {
        let resp = h.join().expect("parked client");
        assert!(
            matches!(status_of(&resp).as_str(), "timeout" | "shed"),
            "{resp}"
        );
    }
    assert_eq!(svc.shutdown(), 0);
}
