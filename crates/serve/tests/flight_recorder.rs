//! Flight-recorder determinism: an injected `PAS0506` debug-panic must
//! dump a schema-valid crash report naming the offending request's
//! correlation id and carrying exactly the last-N black-box events, and
//! `status` must account for it.

use pas_serve::{ServeConfig, Service, CRASH_SCHEMA_VERSION};
use serde::Value;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pas-flight-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn debug_panic_dumps_a_deterministic_crash_report() {
    let crash_dir = temp_dir("panic");
    // One worker makes handle_line fully synchronous per request, so
    // the black-box contents at dump time are deterministic.
    let svc = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        default_timeout_ms: 30_000,
        debug_faults: true,
        flight_cap: 8,
        crash_dir: Some(crash_dir.to_string_lossy().to_string()),
        ..ServeConfig::default()
    });

    // Three clean requests: each leaves ingest, dispatch, respond.
    for i in 0..3 {
        let resp = svc.handle_line(&format!(
            r#"{{"id":"warm-{i}","kind":"run","workload":"synthetic"}}"#
        ));
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    }
    // The offender: ingest, dispatch, then panic — and the dump happens
    // inside the worker, before the respond event is recorded.
    let resp = with_quiet_panics(|| svc.handle_line(r#"{"id":"boom-7","kind":"debug-panic"}"#));
    assert!(resp.contains("PAS0506"), "{resp}");

    // Exactly one report, named after the offending correlation id.
    let report_path = svc.flight().last_crash_path().expect("report written");
    assert_eq!(svc.flight().crash_count(), 1);
    assert!(report_path.contains("crash-1-boom-7"), "{report_path}");
    assert_eq!(svc.counter("serve.crash_reports"), 1);

    let text = std::fs::read_to_string(&report_path).expect("report readable");
    let v: Value = serde_json::from_str(&text).expect("report is valid JSON");
    assert_eq!(
        v.get("crash_schema").and_then(Value::as_u64),
        Some(u64::from(CRASH_SCHEMA_VERSION))
    );
    assert_eq!(v.get("trigger").and_then(Value::as_str), Some("PAS0506"));
    assert_eq!(v.get("corr_id").and_then(Value::as_str), Some("boom-7"));
    let raw = v.get("request").and_then(Value::as_str).expect("request");
    assert!(raw.contains("debug-panic"), "{raw}");

    // 3 clean requests × (ingest, dispatch, respond) + the offender's
    // (ingest, dispatch, panic) = 12 events through a capacity-8 ring:
    // the report holds exactly the last 8, ending in the panic.
    let events = v.get("events").and_then(Value::as_array).expect("events");
    assert_eq!(events.len(), 8, "{text}");
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str))
        .collect();
    assert_eq!(
        kinds,
        vec!["dispatch", "respond", "ingest", "dispatch", "respond", "ingest", "dispatch", "panic"],
        "{text}"
    );
    let seqs: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("seq").and_then(Value::as_u64))
        .collect();
    assert_eq!(seqs, (5..=12).collect::<Vec<u64>>(), "{text}");
    assert_eq!(
        events[7].get("corr_id").and_then(Value::as_str),
        Some("boom-7")
    );

    // Counter snapshot was taken at dump time: the panic is in it.
    let counters = v.get("counters").expect("counters");
    assert_eq!(
        counters.get("serve.panics").and_then(Value::as_u64),
        Some(1),
        "{text}"
    );
    assert!(v.get("gauges").and_then(Value::as_object).is_some());
    assert!(v.get("log_tail").and_then(Value::as_array).is_some());
    assert!(v.get("t_wall_ms").and_then(Value::as_u64).is_some());

    // `status` reports the crash bookkeeping.
    let status = svc.handle_line(r#"{"id":"s","kind":"status"}"#);
    let sv: Value = serde_json::from_str(&status).expect("valid JSON");
    let crashes = sv
        .get("body")
        .and_then(|b| b.get("crashes"))
        .expect("crashes block");
    assert_eq!(crashes.get("count"), Some(&Value::UInt(1)), "{status}");
    assert_eq!(
        crashes.get("last_path").and_then(Value::as_str),
        Some(report_path.as_str()),
        "{status}"
    );

    assert_eq!(svc.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn timeout_dumps_a_pas0505_report() {
    let crash_dir = temp_dir("timeout");
    let svc = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        debug_faults: true,
        crash_dir: Some(crash_dir.to_string_lossy().to_string()),
        ..ServeConfig::default()
    });
    let resp =
        svc.handle_line(r#"{"id":"slow-1","kind":"debug-sleep","sleep_ms":60000,"timeout_ms":40}"#);
    assert!(resp.contains("PAS0505"), "{resp}");
    let path = svc.flight().last_crash_path().expect("report written");
    let text = std::fs::read_to_string(&path).expect("readable");
    let v: Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v.get("trigger").and_then(Value::as_str), Some("PAS0505"));
    assert_eq!(v.get("corr_id").and_then(Value::as_str), Some("slow-1"));
    assert_eq!(svc.counter("serve.crash_reports"), 1);
    assert_eq!(svc.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn trace_out_writes_a_chrome_trace_file_per_request() {
    let trace_dir = temp_dir("traces");
    let svc = Service::start(ServeConfig {
        workers: 1,
        trace_dir: Some(trace_dir.to_string_lossy().to_string()),
        ..ServeConfig::default()
    });
    let resp = svc.handle_line(r#"{"id":"tr-1","kind":"run","workload":"synthetic"}"#);
    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    // --trace-out alone does not echo the timeline in the response.
    let v: Value = serde_json::from_str(&resp).expect("valid JSON");
    assert!(v.get("timeline").is_none(), "{resp}");

    let doc = std::fs::read_to_string(trace_dir.join("tr-1.trace.json")).expect("trace file");
    let parsed: Value = serde_json::from_str(&doc).expect("valid chrome trace");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    let spans: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for required in ["req.ingest", "req.queue_wait", "req.exec", "req.respond"] {
        assert!(spans.contains(&required), "missing {required}: {spans:?}");
    }
    assert_eq!(svc.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&trace_dir);
}
