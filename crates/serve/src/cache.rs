//! The content-addressed plan cache.
//!
//! Keys are SHA-256 digests over the *inputs* of a plan — the resolved
//! graph, platform, processor count, deadline spec and scheme — so two
//! requests that describe the same problem hit the same entry no matter
//! how they spelled it (builtin name, inline graph, file path). The
//! cached value carries the [`pas_core::PlanArtifact`] receipt digest
//! and its serialized JSON, which doubles as the last-known-good plan
//! for graceful degradation: when re-derivation fails, the service
//! serves the cached entry flagged `stale: true` (`PAS0507`).

use pas_core::sha256_hex;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// One cached plan: the artifact's receipt digest and its exact JSON.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// `PlanArtifact::digest()` of the stored artifact.
    pub digest: String,
    /// The artifact's canonical JSON (what `pas plan --out` writes).
    pub artifact_json: String,
    /// Scheme name, for the status snapshot.
    pub scheme: &'static str,
}

struct Inner {
    map: HashMap<String, CachedPlan>,
    // Recency order, most recent at the back. Touched on every hit.
    order: VecDeque<String>,
}

/// A bounded LRU of plans keyed by input digest. All methods take `&self`
/// and are safe to call from any worker.
pub struct PlanCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl PlanCache {
    /// A cache holding at most `cap` plans (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            cap: cap.max(1),
        }
    }

    /// The content-addressed key for one plan request: a SHA-256 over
    /// the canonical input description. `graph_json` must be the
    /// serialized *resolved* graph so builtin/inline/path spellings of
    /// the same workload collide (that is the point).
    pub fn key(
        graph_json: &str,
        platform: &str,
        procs: usize,
        load: Option<f64>,
        deadline_ms: Option<f64>,
        scheme: &str,
    ) -> String {
        let spec = match (load, deadline_ms) {
            (Some(l), _) => format!("load={l}"),
            (None, Some(d)) => format!("deadline_ms={d}"),
            (None, None) => "default".to_string(),
        };
        sha256_hex(
            format!("pas-plan-v1\n{graph_json}\n{platform}\n{procs}\n{spec}\n{scheme}\n")
                .as_bytes(),
        )
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<CachedPlan> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let hit = inner.map.get(key).cloned();
        if hit.is_some() {
            inner.order.retain(|k| k != key);
            inner.order.push_back(key.to_string());
        }
        hit
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry beyond capacity.
    pub fn put(&self, key: &str, plan: CachedPlan) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(key.to_string(), plan).is_some() {
            inner.order.retain(|k| k != key);
        }
        inner.order.push_back(key.to_string());
        while inner.map.len() > self.cap {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: &str) -> CachedPlan {
        CachedPlan {
            digest: tag.to_string(),
            artifact_json: format!("{{\"tag\":\"{tag}\"}}"),
            scheme: "gss",
        }
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let k = |g: &str, p: &str, n, l, d, s: &str| PlanCache::key(g, p, n, l, d, s);
        let base = k("{}", "transmeta", 2, Some(0.5), None, "gss");
        assert_eq!(base, k("{}", "transmeta", 2, Some(0.5), None, "gss"));
        assert_eq!(base.len(), 64);
        for other in [
            k("{\"x\":1}", "transmeta", 2, Some(0.5), None, "gss"),
            k("{}", "xscale", 2, Some(0.5), None, "gss"),
            k("{}", "transmeta", 4, Some(0.5), None, "gss"),
            k("{}", "transmeta", 2, Some(0.6), None, "gss"),
            k("{}", "transmeta", 2, None, Some(40.0), "gss"),
            k("{}", "transmeta", 2, Some(0.5), None, "as"),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = PlanCache::new(2);
        c.put("a", plan("a"));
        c.put("b", plan("b"));
        assert!(c.get("a").is_some()); // refresh a; b is now LRU
        c.put("c", plan("c"));
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_grow_the_cache() {
        let c = PlanCache::new(2);
        c.put("a", plan("a1"));
        c.put("a", plan("a2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").expect("hit").digest, "a2");
    }
}
