//! The service front-end: one request line in, one response line out.
//!
//! [`Service::handle_line`] is the whole synchronous round trip — parse,
//! admission (back-pressure), dispatch to the pool, deadline enforcement
//! — and is transport-agnostic: the TCP, Unix-socket and drop-directory
//! front-ends in [`crate::net`] all funnel through it, as do the tests.

use crate::cache::PlanCache;
use crate::flight::FlightRecorder;
use crate::handlers;
use crate::pool::{Executor, Job, JobCtx, SubmitError, WorkerPool};
use crate::proto::{
    error_response, ok_response, parse_request, shed_response, timeout_response, Rejection, ReqKind,
};
use crate::reqtrace::{sanitize_id, Timeline};
use crate::telemetry::{self, LatencyStore, SeriesKey};
use pas_analyze::Code;
use pas_obs::profile::names;
use pas_obs::{log, MetricsRegistry};
use serde::Value;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests shed (`PAS0504`).
    pub queue_cap: usize,
    /// Per-request deadline when the request names none (ms).
    pub default_timeout_ms: u64,
    /// Plans kept in the content-addressed LRU.
    pub cache_cap: usize,
    /// Enables the `debug-*` fault-injection kinds and `fail_build`.
    pub debug_faults: bool,
    /// The hint sent with shed responses (ms).
    pub retry_after_ms: u64,
    /// How long shutdown waits for in-flight work (ms).
    pub drain_ms: u64,
    /// Directory for flight-recorder crash reports (`--crash-dir`);
    /// `None` disables report files (the ring still records).
    pub crash_dir: Option<String>,
    /// Directory for per-request Chrome-trace files (`--trace-out`);
    /// `None` means timelines exist only for `"trace": true` requests.
    pub trace_dir: Option<String>,
    /// Flight-recorder ring capacity (lifecycle events retained).
    pub flight_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            default_timeout_ms: 10_000,
            cache_cap: 32,
            debug_faults: false,
            retry_after_ms: 50,
            drain_ms: 5_000,
            crash_dir: None,
            trace_dir: None,
            flight_cap: 64,
        }
    }
}

/// A running service: worker pool, plan cache, metrics, shutdown flag.
pub struct Service {
    cfg: ServeConfig,
    pool: WorkerPool,
    metrics: Arc<Mutex<MetricsRegistry>>,
    latencies: Arc<LatencyStore>,
    cache: Arc<PlanCache>,
    flight: Arc<FlightRecorder>,
    shutdown_requested: Arc<AtomicBool>,
    next_auto_id: AtomicU64,
    started: Instant,
}

impl Service {
    /// Spawns the worker pool and returns a ready service.
    pub fn start(cfg: ServeConfig) -> Self {
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        {
            // Pre-seed every lifecycle counter at zero so the health
            // snapshot always reports the full set — an operator can
            // tell "never shed" from "not instrumented". The catalog
            // lives in `telemetry` so the docs-sync tests police it.
            let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
            for name in telemetry::PRE_SEEDED_COUNTERS {
                m.inc(name, 0);
            }
        }
        let latencies = Arc::new(LatencyStore::new());
        let cache = Arc::new(PlanCache::new(cfg.cache_cap));
        let flight = Arc::new(FlightRecorder::new(cfg.flight_cap, cfg.crash_dir.clone()));
        let handler_cfg = cfg.clone();
        let handler_cache = Arc::clone(&cache);
        let handler_metrics = Arc::clone(&metrics);
        let handler: crate::pool::Handler = Arc::new(move |req, ctx| {
            handlers::handle(&handler_cfg, &handler_cache, &handler_metrics, req, ctx)
        });
        let pool = WorkerPool::new(
            cfg.workers,
            cfg.queue_cap,
            Arc::clone(&metrics),
            Arc::clone(&latencies),
            Arc::clone(&flight),
            handler,
        );
        Service {
            cfg,
            pool,
            metrics,
            latencies,
            cache,
            flight,
            shutdown_requested: Arc::new(AtomicBool::new(false)),
            next_auto_id: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Mints a fresh request id (`auto-<seq>`) for requests that arrive
    /// without one, so every response and log line stays correlatable.
    fn generate_request_id(&self) -> String {
        let seq = self.next_auto_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.inc("serve.request_ids.generated", 1);
        format!("auto-{seq:06}")
    }

    /// The full round trip for one request line: always returns exactly
    /// one single-line JSON response, whatever the input did.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.inc("serve.requests", 1);
        }
        let mut req = match parse_request(line) {
            Ok(req) => req,
            Err(rej) => {
                // Even an unparseable line gets a minted id, so the
                // error response is correlatable in client logs.
                let id = self.generate_request_id();
                log::emit(
                    log::Level::Warn,
                    "serve.service",
                    "request rejected at parse",
                    vec![
                        ("corr_id", Value::Str(id.clone())),
                        ("code", Value::Str(rej.code.as_str().to_string())),
                        ("message", Value::Str(rej.message.clone())),
                    ],
                );
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.responses.error", 1);
                return error_response(&id, &rej);
            }
        };
        if req.id == "-" {
            req.id = self.generate_request_id();
        } else {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.inc("serve.request_ids.client", 1);
        }

        // Control-plane kinds bypass the queue: health must stay
        // observable under full load, and shutdown must always land.
        match req.kind {
            ReqKind::Status => {
                let body = self.status_body();
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.responses.ok", 1);
                return ok_response(&req.id, ReqKind::Status, body);
            }
            ReqKind::Metrics => {
                let body = self.metrics_body();
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.responses.ok", 1);
                return ok_response(&req.id, ReqKind::Metrics, body);
            }
            ReqKind::Shutdown => {
                self.shutdown_requested.store(true, Ordering::SeqCst);
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.responses.ok", 1);
                return ok_response(
                    &req.id,
                    ReqKind::Shutdown,
                    crate::proto::object(vec![("draining", Value::Bool(true))]),
                );
            }
            _ => {}
        }

        let timeout_ms = req.timeout_ms.unwrap_or(self.cfg.default_timeout_ms);
        let id = req.id.clone();
        let kind = req.kind;
        let _corr = log::with_corr(&id);
        let want_echo = req.trace;
        self.flight.record("ingest", &id, kind.name());
        // A timeline exists only when someone will read it: the client
        // asked for the echo, or the daemon writes per-request traces.
        let timeline = if want_echo || self.cfg.trace_dir.is_some() {
            let tl = Arc::new(Timeline::new());
            tl.record_since(names::REQ_INGEST, t0);
            Some(tl)
        } else {
            None
        };
        let cancelled = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            raw: line.to_string(),
            ctx: JobCtx {
                cancelled: Arc::clone(&cancelled),
                timeline: timeline.clone(),
            },
            reply: tx,
            enqueued: Instant::now(),
        };
        let response = match self.pool.submit(job) {
            Err(SubmitError::QueueFull { depth }) => {
                self.flight
                    .record("shed", &id, &format!("queue depth {depth}"));
                log::emit(
                    log::Level::Warn,
                    "serve.service",
                    "request shed",
                    vec![
                        ("kind", Value::Str(kind.name().to_string())),
                        ("depth", Value::UInt(depth as u64)),
                    ],
                );
                // Sheds are load signals, not faults; they dump a black
                // box only when the operator opted into fault debugging.
                if self.cfg.debug_faults
                    && self
                        .flight
                        .dump("PAS0504", &id, line, &self.metrics)
                        .is_some()
                {
                    let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    m.inc("serve.crash_reports", 1);
                }
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.shed", 1);
                m.inc("serve.responses.shed", 1);
                shed_response(&id, self.cfg.retry_after_ms, depth)
            }
            Err(SubmitError::ShuttingDown) => {
                let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                m.inc("serve.responses.error", 1);
                error_response(
                    &id,
                    &Rejection::new(Code::Pas0504, "service is draining for shutdown"),
                )
            }
            Ok(_) => match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
                Ok(line) => line,
                Err(_) => {
                    // Deadline expired: cancel cooperatively. A worker
                    // mid-job abandons at its next check; a job still
                    // queued is skipped entirely.
                    cancelled.store(true, Ordering::SeqCst);
                    self.flight
                        .record("timeout", &id, &format!("{timeout_ms} ms deadline"));
                    log::emit(
                        log::Level::Warn,
                        "serve.service",
                        "request deadline expired",
                        vec![
                            ("kind", Value::Str(kind.name().to_string())),
                            ("timeout_ms", Value::UInt(timeout_ms)),
                        ],
                    );
                    if self
                        .flight
                        .dump("PAS0505", &id, line, &self.metrics)
                        .is_some()
                    {
                        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                        m.inc("serve.crash_reports", 1);
                    }
                    let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    m.inc("serve.timeouts", 1);
                    m.inc("serve.responses.timeout", 1);
                    timeout_response(&id, timeout_ms)
                }
            },
        };
        let respond_t0 = Instant::now();
        self.flight.record("respond", &id, kind.name());
        let response = match &timeline {
            Some(tl) => {
                tl.record_since(names::REQ_RESPOND, respond_t0);
                if let Some(dir) = &self.cfg.trace_dir {
                    self.write_trace_file(dir, &id, tl);
                }
                if want_echo {
                    echo_timeline(&response, tl)
                } else {
                    response
                }
            }
            None => response,
        };
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        if self
            .latencies
            .record(SeriesKey::new(kind.name(), "total"), elapsed_ms)
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.inc("serve.latency.overflow", 1);
        }
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.add_gauge(&format!("serve.stage_ms.{}", kind.name()), elapsed_ms);
            m.inc(&format!("serve.handled.{}", kind.name()), 1);
            m.set_gauge("serve.queue_depth", self.pool.queue_depth() as f64);
        }
        log::emit(
            log::Level::Debug,
            "serve.service",
            "request answered",
            vec![
                ("kind", Value::Str(kind.name().to_string())),
                ("elapsed_ms", Value::Float(elapsed_ms)),
            ],
        );
        response
    }

    /// Writes one Chrome-trace file per request under `--trace-out`; a
    /// failed write is logged and dropped, never fatal.
    fn write_trace_file(&self, dir: &str, id: &str, tl: &Timeline) {
        let dir = Path::new(dir);
        let write = std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::write(
                dir.join(format!("{}.trace.json", sanitize_id(id))),
                tl.chrome_trace(),
            )
        });
        if let Err(e) = write {
            log::emit(
                log::Level::Warn,
                "serve.service",
                "trace file write failed",
                vec![("error", Value::Str(e.to_string()))],
            );
        }
    }

    /// The `/health`-style snapshot served for `status` requests.
    pub fn status_body(&self) -> Value {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let hits = m.counter("serve.cache.hits");
        let misses = m.counter("serve.cache.misses");
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let counters: Vec<(String, Value)> = m
            .counters()
            .filter(|(name, _)| name.starts_with("serve."))
            .map(|(name, v)| (name.to_string(), Value::UInt(v)))
            .collect();
        let gauges: Vec<(String, Value)> = m
            .gauges()
            .filter(|(name, _)| name.starts_with("serve."))
            .map(|(name, v)| (name.to_string(), Value::Float(v)))
            .collect();
        fn opt_ms(x: Option<f64>) -> Value {
            x.map(Value::Float).unwrap_or(Value::Null)
        }
        let latency: Vec<(String, Value)> = self
            .latencies
            .snapshot()
            .into_iter()
            .map(|(key, snap)| {
                (
                    key.dotted(),
                    crate::proto::object(vec![
                        ("count", Value::UInt(snap.count)),
                        ("sum_ms", Value::Float(snap.sum_ms)),
                        ("p50_ms", opt_ms(snap.p50_ms)),
                        ("p95_ms", opt_ms(snap.p95_ms)),
                        ("p99_ms", opt_ms(snap.p99_ms)),
                    ]),
                )
            })
            .collect();
        crate::proto::object(vec![
            (
                "uptime_ms",
                Value::Float(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "queue",
                crate::proto::object(vec![
                    ("depth", Value::UInt(self.pool.queue_depth() as u64)),
                    ("capacity", Value::UInt(self.pool.queue_capacity() as u64)),
                    ("busy_workers", Value::UInt(self.pool.busy_workers() as u64)),
                    ("workers", Value::UInt(self.cfg.workers as u64)),
                ]),
            ),
            (
                "cache",
                crate::proto::object(vec![
                    ("size", Value::UInt(self.cache.len() as u64)),
                    ("capacity", Value::UInt(self.cfg.cache_cap as u64)),
                    ("hits", Value::UInt(hits)),
                    ("misses", Value::UInt(misses)),
                    ("hit_rate", Value::Float(hit_rate)),
                ]),
            ),
            (
                "crashes",
                crate::proto::object(vec![
                    ("count", Value::UInt(self.flight.crash_count())),
                    (
                        "last_path",
                        self.flight
                            .last_crash_path()
                            .map(Value::Str)
                            .unwrap_or(Value::Null),
                    ),
                ]),
            ),
            ("counters", Value::Object(counters)),
            ("gauges", Value::Object(gauges)),
            ("latency", Value::Object(latency)),
        ])
    }

    /// The body served for `metrics` requests: the full `serve.*`
    /// surface rendered in Prometheus text exposition format. The text
    /// is carried inside the usual JSON envelope (the transport is
    /// line-delimited JSON, not HTTP); a scraper unwraps `exposition`.
    pub fn metrics_body(&self) -> Value {
        let text = {
            let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            telemetry::prometheus_exposition(&m, &self.latencies)
        };
        crate::proto::object(vec![
            (
                "content_type",
                Value::Str("text/plain; version=0.0.4".to_string()),
            ),
            ("exposition", Value::Str(text)),
        ])
    }

    /// True once a `shutdown` request (or signal) asked us to drain.
    pub fn is_shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Marks the service as draining (the signal handler's entry point).
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Drains the pool under the configured deadline; returns the number
    /// of workers abandoned mid-job (0 on a clean drain).
    pub fn shutdown(&self) -> usize {
        self.pool.shutdown(Duration::from_millis(self.cfg.drain_ms))
    }

    /// A snapshot of counter `name` (test and summary helper).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counter(name)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The flight recorder (test and summary helper).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }
}

/// Appends the request's span timeline to an already-rendered response
/// line as a top-level `timeline` array. A response that somehow isn't a
/// JSON object (unreachable for pool responses) passes through untouched
/// rather than being mangled.
fn echo_timeline(response: &str, tl: &Timeline) -> String {
    let Ok(Value::Object(mut pairs)) = serde_json::from_str::<Value>(response) else {
        return response.to_string();
    };
    pairs.push(("timeline".to_string(), tl.to_value()));
    serde_json::to_string(&Value::Object(pairs)).unwrap_or_else(|_| response.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 4,
            default_timeout_ms: 30_000,
            debug_faults: true,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn malformed_lines_get_an_error_response_not_a_crash() {
        let svc = Service::start(quick_cfg());
        let resp = svc.handle_line("{oops");
        assert!(resp.contains("PAS0501"), "{resp}");
        assert_eq!(svc.counter("serve.responses.error"), 1);
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn status_bypasses_the_queue_and_reports_counters() {
        let svc = Service::start(quick_cfg());
        let ok = svc.handle_line(r#"{"id":"r","kind":"run","workload":"synthetic"}"#);
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        let status = svc.handle_line(r#"{"id":"s","kind":"status"}"#);
        let v: Value = serde_json::from_str(&status).expect("valid JSON");
        let body = v.get("body").expect("body");
        assert!(body.get("queue").is_some());
        assert!(body.get("cache").is_some());
        let counters = body.get("counters").expect("counters");
        assert_eq!(
            counters.get("serve.responses.ok"),
            Some(&Value::UInt(1)),
            "{status}"
        );
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn timeout_cancels_and_answers_pas0505() {
        let svc = Service::start(quick_cfg());
        let resp =
            svc.handle_line(r#"{"id":"t","kind":"debug-sleep","sleep_ms":60000,"timeout_ms":50}"#);
        assert!(resp.contains("PAS0505"), "{resp}");
        assert_eq!(svc.counter("serve.timeouts"), 1);
        // The cancelled flag stops the sleeper, so the drain is clean.
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn requests_without_an_id_get_a_minted_one() {
        let svc = Service::start(quick_cfg());
        let resp = svc.handle_line(r#"{"kind":"run","workload":"synthetic"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        let id = v.get("id").and_then(Value::as_str).expect("id");
        assert!(id.starts_with("auto-"), "{resp}");
        assert_eq!(svc.counter("serve.request_ids.generated"), 1);
        assert_eq!(svc.counter("serve.request_ids.client"), 0);

        // A client-chosen id is echoed verbatim and tallied separately.
        let resp = svc.handle_line(r#"{"id":"mine","kind":"status"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("mine"));
        assert_eq!(svc.counter("serve.request_ids.client"), 1);

        // Malformed lines still answer with a minted id, not "-".
        let resp = svc.handle_line("{oops");
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        let id = v.get("id").and_then(Value::as_str).expect("id");
        assert!(id.starts_with("auto-"), "{resp}");
        assert_eq!(svc.counter("serve.request_ids.generated"), 2);
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn metrics_requests_render_the_prometheus_exposition() {
        let svc = Service::start(quick_cfg());
        let ok = svc.handle_line(r#"{"id":"r","kind":"run","workload":"synthetic"}"#);
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        let resp = svc.handle_line(r#"{"id":"m","kind":"metrics"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        let body = v.get("body").expect("body");
        assert_eq!(
            body.get("content_type").and_then(Value::as_str),
            Some("text/plain; version=0.0.4")
        );
        let text = body
            .get("exposition")
            .and_then(Value::as_str)
            .expect("exposition");
        assert!(text.contains("# TYPE serve_requests counter"), "{text}");
        assert!(text.contains("# TYPE serve_latency summary"), "{text}");
        assert!(
            text.contains("serve_latency_count{kind=\"run\",stage=\"total\"} 1"),
            "{text}"
        );
        // Pre-seeded series are present before any traffic of that kind.
        assert!(text.contains("serve_cache_hits 0"), "{text}");
        assert!(
            text.contains("serve_latency_count{kind=\"check\",stage=\"queue\"} 0"),
            "{text}"
        );
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn status_reports_latency_quantiles_per_kind() {
        let svc = Service::start(quick_cfg());
        let ok = svc.handle_line(r#"{"id":"r","kind":"run","workload":"synthetic"}"#);
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        let status = svc.handle_line(r#"{"id":"s","kind":"status"}"#);
        let v: Value = serde_json::from_str(&status).expect("valid JSON");
        let latency = v
            .get("body")
            .and_then(|b| b.get("latency"))
            .expect("latency block");
        let total = latency
            .get("serve.latency.run.total")
            .expect("run total series");
        assert_eq!(total.get("count"), Some(&Value::UInt(1)), "{status}");
        assert!(
            matches!(total.get("p50_ms"), Some(Value::Float(x)) if *x >= 0.0),
            "{status}"
        );
        assert!(
            matches!(total.get("p99_ms"), Some(Value::Float(_))),
            "{status}"
        );
        // Untouched kinds stay visible with empty quantiles.
        let idle = latency
            .get("serve.latency.check.exec")
            .expect("pre-seeded series");
        assert_eq!(idle.get("count"), Some(&Value::UInt(0)), "{status}");
        assert_eq!(idle.get("p50_ms"), Some(&Value::Null), "{status}");
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn trace_requests_echo_a_full_timeline() {
        let svc = Service::start(quick_cfg());
        let resp =
            svc.handle_line(r#"{"id":"tr","kind":"plan","workload":"synthetic","trace":true}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        let tl = v
            .get("timeline")
            .and_then(Value::as_array)
            .expect("timeline echoed");
        let seen: Vec<&str> = tl
            .iter()
            .filter_map(|s| s.get("name").and_then(Value::as_str))
            .collect();
        for required in [
            "req.ingest",
            "req.queue_wait",
            "req.validate",
            "req.cache_lookup",
            "req.exec",
            "req.respond",
        ] {
            assert!(seen.contains(&required), "missing {required} in {seen:?}");
        }
        // A cache miss runs the real derivation, so the offline catalog
        // names appear too — the join point with `pas plan --profile`.
        assert!(seen.contains(&"offline.build"), "{seen:?}");

        // Untraced requests stay untouched.
        let resp = svc.handle_line(r#"{"id":"plain","kind":"run"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert!(v.get("timeline").is_none(), "{resp}");
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn status_reports_crash_bookkeeping() {
        let svc = Service::start(quick_cfg());
        let status = svc.handle_line(r#"{"id":"s","kind":"status"}"#);
        let v: Value = serde_json::from_str(&status).expect("valid JSON");
        let crashes = v
            .get("body")
            .and_then(|b| b.get("crashes"))
            .expect("crashes block");
        assert_eq!(crashes.get("count"), Some(&Value::UInt(0)), "{status}");
        assert_eq!(crashes.get("last_path"), Some(&Value::Null), "{status}");
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn shutdown_request_sets_the_drain_flag() {
        let svc = Service::start(quick_cfg());
        assert!(!svc.is_shutdown_requested());
        let resp = svc.handle_line(r#"{"id":"x","kind":"shutdown"}"#);
        assert!(resp.contains("\"draining\":true"), "{resp}");
        assert!(svc.is_shutdown_requested());
        assert_eq!(svc.shutdown(), 0);
    }
}
