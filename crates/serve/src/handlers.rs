//! Request handlers: the work a pool job actually does.
//!
//! Every handler validates its inputs through `pas-analyze` on ingest
//! (the service-side equivalent of `pas check` exiting 2), resolves the
//! workload/platform the same way the CLI does, then plans or simulates.
//! The plan path is cached content-addressed by input digest and
//! degrades gracefully: when re-derivation fails but a cached plan
//! exists, the stale plan is served flagged `stale: true` (`PAS0507`).

use crate::cache::{CachedPlan, PlanCache};
use crate::pool::JobCtx;
use crate::proto::{object, report_value, Rejection, ReqKind, Request, WorkloadSpec};
use crate::service::ServeConfig;
use andor_graph::AndOrGraph;
use dvfs_power::{Overheads, ProcessorModel};
use mp_sim::ExecTimeModel;
use pas_analyze::{check_application, check_graph, check_model, Code, DeadlineSpec};
use pas_core::{PlanArtifact, Scheme, Setup};
use pas_obs::profile::names;
use pas_obs::{log, MetricsRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default load when a request names neither `load` nor `deadline_ms`.
pub const DEFAULT_LOAD: f64 = 0.5;

fn inc(metrics: &Mutex<MetricsRegistry>, name: &str) {
    metrics
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .inc(name, 1);
}

fn cancelled_check(flag: &AtomicBool) -> Result<(), Rejection> {
    if flag.load(Ordering::SeqCst) {
        // The submitter already answered PAS0505; this reply is dropped,
        // the point is to stop burning the worker.
        Err(Rejection::new(Code::Pas0505, "request was cancelled"))
    } else {
        Ok(())
    }
}

/// Reads a file with a bounded retry-and-backoff for transient I/O
/// failures; each retry is tallied as `serve.io_retries`.
fn read_with_retry(path: &str, metrics: &Mutex<MetricsRegistry>) -> Result<String, Rejection> {
    const ATTEMPTS: u32 = 3;
    let mut last = String::new();
    for attempt in 0..ATTEMPTS {
        if attempt > 0 {
            inc(metrics, "serve.io_retries");
            std::thread::sleep(Duration::from_millis(10 * u64::from(attempt)));
        }
        match std::fs::read_to_string(path) {
            Ok(text) => return Ok(text),
            Err(e) => last = e.to_string(),
        }
    }
    Err(Rejection::bad_param(format!(
        "reading workload '{path}' failed after {ATTEMPTS} attempts: {last}"
    )))
}

/// Resolves the request's workload to a graph plus its source label.
fn resolve_graph(
    req: &Request,
    metrics: &Mutex<MetricsRegistry>,
) -> Result<(AndOrGraph, String), Rejection> {
    match &req.workload {
        WorkloadSpec::Builtin(name) => {
            let g = match name.as_str() {
                "synthetic" => workloads::synthetic_app()
                    .lower()
                    .map_err(|e| Rejection::bad_param(format!("synthetic app: {e}")))?,
                "video" => workloads::VideoParams::default()
                    .build()
                    .map_err(|e| Rejection::bad_param(format!("video params: {e}")))?
                    .lower()
                    .map_err(|e| Rejection::bad_param(format!("video app: {e}")))?,
                "atr" => {
                    let mut rng = StdRng::seed_from_u64(req.seed);
                    workloads::AtrParams::default()
                        .build_jittered(&mut rng)
                        .map_err(|e| Rejection::bad_param(format!("atr params: {e}")))?
                        .lower()
                        .map_err(|e| Rejection::bad_param(format!("atr app: {e}")))?
                }
                other => {
                    return Err(Rejection::bad_param(format!(
                        "'{other}' is not a built-in workload"
                    )))
                }
            };
            Ok((g, name.clone()))
        }
        WorkloadSpec::Inline(v) => {
            let text = serde_json::to_string(v)
                .map_err(|e| Rejection::bad_param(format!("inline graph: {e}")))?;
            let g: AndOrGraph = serde_json::from_str(&text)
                .map_err(|e| Rejection::bad_param(format!("inline graph: {e}")))?;
            Ok((g, "<inline>".to_string()))
        }
        WorkloadSpec::Path(path) => {
            let text = read_with_retry(path, metrics)?;
            let g: AndOrGraph = serde_json::from_str(&text)
                .map_err(|e| Rejection::bad_param(format!("parsing {path}: {e}")))?;
            Ok((g, path.clone()))
        }
    }
}

fn resolve_model(spec: &str) -> Result<ProcessorModel, Rejection> {
    match spec {
        "transmeta" => Ok(ProcessorModel::transmeta5400()),
        "xscale" => Ok(ProcessorModel::xscale()),
        other => {
            if let Some(smin) = other.strip_prefix("continuous:") {
                let smin: f64 = smin
                    .parse()
                    .map_err(|_| Rejection::bad_param(format!("bad continuous smin: {smin}")))?;
                ProcessorModel::continuous(smin)
                    .ok_or_else(|| Rejection::bad_param("continuous smin must be in (0, 1]"))
            } else {
                Err(Rejection::bad_param(format!(
                    "unknown platform '{other}' (transmeta|xscale|continuous:<smin>)"
                )))
            }
        }
    }
}

/// The request's deadline spec, defaulting to `load = 0.5`.
fn deadline_spec(req: &Request) -> DeadlineSpec {
    match (req.load, req.deadline_ms) {
        (_, Some(d)) => DeadlineSpec::Deadline(d),
        (Some(l), None) => DeadlineSpec::Load(l),
        (None, None) => DeadlineSpec::Load(DEFAULT_LOAD),
    }
}

/// Ingest validation: graph + platform structural checks. Errors become
/// a `PAS0503` rejection carrying the full report.
fn ingest_check(
    g: &AndOrGraph,
    graph_src: &str,
    model: &ProcessorModel,
    model_src: &str,
) -> Result<(), Rejection> {
    let mut report = check_graph(g, graph_src);
    report.merge(check_model(model, model_src));
    if report.has_errors() {
        let (errors, warnings, _) = report.counts();
        let mut rej = Rejection::bad_param(format!(
            "request failed ingest validation: {errors} error(s), {warnings} warning(s)"
        ));
        rej.diagnostics = Some(report);
        return Err(rej);
    }
    Ok(())
}

fn build_setup(g: AndOrGraph, model: ProcessorModel, req: &Request) -> Result<Setup, Rejection> {
    let res = match deadline_spec(req) {
        DeadlineSpec::Deadline(d) => Setup::new(g, model, req.procs, d),
        DeadlineSpec::Load(l) => Setup::for_load(g, model, req.procs, l),
    };
    res.map_err(|e| Rejection::new(Code::Pas0508, format!("offline planning failed: {e}")))
}

/// Dispatches one parsed request to its handler. This is the closure the
/// worker pool runs under `catch_unwind`.
pub fn handle(
    cfg: &ServeConfig,
    cache: &PlanCache,
    metrics: &Mutex<MetricsRegistry>,
    req: &Request,
    ctx: &JobCtx,
) -> Result<Value, Rejection> {
    match req.kind {
        ReqKind::Plan => handle_plan(cfg, cache, metrics, req, ctx),
        ReqKind::Check => handle_check(metrics, req, ctx),
        ReqKind::Run => handle_run(metrics, req, ctx, false),
        ReqKind::Trace => handle_run(metrics, req, ctx, true),
        ReqKind::Montecarlo => handle_montecarlo(metrics, req, ctx),
        ReqKind::DebugPanic | ReqKind::DebugSleep | ReqKind::DebugFail => {
            handle_debug(cfg, req, &ctx.cancelled)
        }
        // Status/Metrics/Shutdown are answered by the service front-end
        // without queueing; reaching here is a dispatch bug worth
        // surfacing.
        ReqKind::Status | ReqKind::Metrics | ReqKind::Shutdown => Err(Rejection::bad_param(
            format!("kind '{}' is not a pooled request", req.kind.name()),
        )),
    }
}

fn handle_plan(
    cfg: &ServeConfig,
    cache: &PlanCache,
    metrics: &Mutex<MetricsRegistry>,
    req: &Request,
    ctx: &JobCtx,
) -> Result<Value, Rejection> {
    let (g, graph_src, model) = {
        let _v = ctx.span(names::REQ_VALIDATE);
        let (g, graph_src) = resolve_graph(req, metrics)?;
        let model = resolve_model(&req.platform)?;
        ingest_check(&g, &graph_src, &model, &req.platform)?;
        (g, graph_src, model)
    };
    cancelled_check(&ctx.cancelled)?;

    let graph_json = serde_json::to_string(&g)
        .map_err(|e| Rejection::bad_param(format!("serializing graph: {e}")))?;
    let (load, deadline_ms) = match deadline_spec(req) {
        DeadlineSpec::Load(l) => (Some(l), None),
        DeadlineSpec::Deadline(d) => (None, Some(d)),
    };
    let key = PlanCache::key(
        &graph_json,
        &req.platform,
        req.procs,
        load,
        deadline_ms,
        req.scheme.name(),
    );

    let cached = {
        let _c = ctx.span(names::REQ_CACHE_LOOKUP);
        cache.get(&key)
    };
    if let (Some(hit), false) = (&cached, req.revalidate) {
        inc(metrics, "serve.cache.hits");
        log::emit(
            log::Level::Debug,
            "serve.handlers",
            "plan cache hit",
            vec![("digest", Value::Str(hit.digest.clone()))],
        );
        return plan_body(&key, hit, true, false);
    }
    if cached.is_none() {
        inc(metrics, "serve.cache.misses");
        log::emit(
            log::Level::Debug,
            "serve.handlers",
            "plan cache miss",
            vec![("scheme", Value::Str(req.scheme.name().to_string()))],
        );
    }

    // Re-derivation runs under its own unwind guard so a crash here can
    // fall back to the last known-good plan instead of killing the job.
    let scheme = req.scheme;
    let fail_injected = cfg.debug_faults && req.fail_build;
    let built = catch_unwind(AssertUnwindSafe(|| -> Result<CachedPlan, Rejection> {
        if fail_injected {
            return Err(Rejection::new(
                Code::Pas0508,
                "injected plan re-derivation failure (debug-faults)",
            ));
        }
        // Cache misses record the offline catalog names, so a request
        // trace joins directly against `pas plan --profile` output.
        let artifact = {
            let _b = ctx.span(names::OFFLINE_BUILD);
            let setup = build_setup(g, model, req)?;
            PlanArtifact::from_setup(&setup, scheme, &graph_src, &req.platform)
        };
        let artifact_json = {
            let _s = ctx.span(names::ARTIFACT_SERIALIZE);
            artifact
                .to_json()
                .map_err(|e| Rejection::new(Code::Pas0508, format!("serializing plan: {e}")))?
        };
        let digest = {
            let _d = ctx.span(names::ARTIFACT_DIGEST);
            artifact
                .digest()
                .map_err(|e| Rejection::new(Code::Pas0508, format!("digesting plan: {e}")))?
        };
        Ok(CachedPlan {
            digest,
            artifact_json,
            scheme: scheme.name(),
        })
    }));

    match built {
        Ok(Ok(plan)) => {
            cache.put(&key, plan.clone());
            plan_body(&key, &plan, cached.is_some(), false)
        }
        Ok(Err(rej)) => match cached {
            Some(stale) => {
                inc(metrics, "serve.stale_served");
                warn_stale(&stale);
                plan_body(&key, &stale, true, true)
            }
            None => Err(rej),
        },
        Err(payload) => match cached {
            Some(stale) => {
                inc(metrics, "serve.stale_served");
                warn_stale(&stale);
                plan_body(&key, &stale, true, true)
            }
            // No known-good plan to degrade to: let the pool's unwind
            // guard turn this into a PAS0506 response.
            None => resume_unwind(payload),
        },
    }
}

fn warn_stale(stale: &CachedPlan) {
    log::emit(
        log::Level::Warn,
        "serve.handlers",
        "re-derivation failed; serving stale plan",
        vec![("digest", Value::Str(stale.digest.clone()))],
    );
}

fn plan_body(key: &str, plan: &CachedPlan, cached: bool, stale: bool) -> Result<Value, Rejection> {
    let artifact: Value = serde_json::from_str(&plan.artifact_json)
        .map_err(|e| Rejection::new(Code::Pas0508, format!("cached plan corrupt: {e}")))?;
    let mut pairs = vec![
        ("cache_key", Value::Str(key.to_string())),
        ("digest", Value::Str(plan.digest.clone())),
        ("scheme", Value::Str(plan.scheme.to_string())),
        ("cached", Value::Bool(cached)),
        ("stale", Value::Bool(stale)),
    ];
    if stale {
        pairs.push((
            "warning",
            Value::Str(format!(
                "{}: re-derivation failed; serving last known-good plan",
                Code::Pas0507.as_str()
            )),
        ));
    }
    pairs.push(("artifact", artifact));
    Ok(object(pairs))
}

fn handle_check(
    metrics: &Mutex<MetricsRegistry>,
    req: &Request,
    ctx: &JobCtx,
) -> Result<Value, Rejection> {
    let (g, graph_src, model) = {
        let _v = ctx.span(names::REQ_VALIDATE);
        let (g, graph_src) = resolve_graph(req, metrics)?;
        let model = resolve_model(&req.platform)?;
        (g, graph_src, model)
    };
    cancelled_check(&ctx.cancelled)?;
    let analysis = check_application(
        &g,
        &graph_src,
        &model,
        &req.platform,
        Overheads::paper_defaults(),
        req.procs,
        deadline_spec(req),
    );
    let (errors, warnings, _) = analysis.report.counts();
    let mut pairs = vec![
        ("clean", Value::Bool(analysis.report.is_clean())),
        ("errors", Value::UInt(errors as u64)),
        ("warnings", Value::UInt(warnings as u64)),
        ("diagnostics", report_value(&analysis.report)),
    ];
    match &analysis.feasibility {
        Some(f) => {
            pairs.push(("feasible", Value::Bool(f.static_slack_ms >= 0.0)));
            pairs.push(("worst_case_ms", Value::Float(f.worst_case_ms)));
            pairs.push(("deadline_ms", Value::Float(f.deadline_ms)));
            pairs.push(("static_slack_ms", Value::Float(f.static_slack_ms)));
        }
        None => pairs.push(("feasible", Value::Null)),
    }
    Ok(object(pairs))
}

fn handle_run(
    metrics: &Mutex<MetricsRegistry>,
    req: &Request,
    ctx: &JobCtx,
    traced: bool,
) -> Result<Value, Rejection> {
    let (g, model) = {
        let _v = ctx.span(names::REQ_VALIDATE);
        let (g, graph_src) = resolve_graph(req, metrics)?;
        let model = resolve_model(&req.platform)?;
        ingest_check(&g, &graph_src, &model, &req.platform)?;
        (g, model)
    };
    cancelled_check(&ctx.cancelled)?;
    let setup = build_setup(g, model, req)?;
    let etm = ExecTimeModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(req.seed);
    let real = setup.sample(&etm, &mut rng);
    cancelled_check(&ctx.cancelled)?;

    let scheme: Scheme = req.scheme;
    if traced {
        let mut reg = MetricsRegistry::new();
        let mut policy = setup.policy(scheme);
        let res = setup
            .simulator(false)
            .run_observed(policy.as_mut(), &real, None, None, Some(&mut reg))
            .map_err(|e| Rejection::new(Code::Pas0508, format!("simulation failed: {e}")))?;
        let events: Vec<(String, Value)> = reg
            .counters()
            .filter(|(name, _)| name.starts_with("events."))
            .map(|(name, v)| {
                (
                    name.trim_start_matches("events.").to_string(),
                    Value::UInt(v),
                )
            })
            .collect();
        Ok(object(vec![
            ("scheme", Value::Str(scheme.name().to_string())),
            ("seed", Value::UInt(req.seed)),
            ("horizon_ms", Value::Float(reg.end_time())),
            ("finish_ms", Value::Float(res.finish_time)),
            ("total_energy", Value::Float(res.total_energy())),
            ("speed_changes", Value::UInt(res.energy.speed_changes())),
            ("slack_reclaimed_ms", Value::Float(reg.slack_reclaimed_ms())),
            ("events", Value::Object(events)),
        ]))
    } else {
        let res = setup
            .run(scheme, &real)
            .map_err(|e| Rejection::new(Code::Pas0508, format!("simulation failed: {e}")))?;
        Ok(object(vec![
            ("scheme", Value::Str(scheme.name().to_string())),
            ("seed", Value::UInt(req.seed)),
            ("finish_ms", Value::Float(res.finish_time)),
            ("deadline_ms", Value::Float(res.deadline)),
            ("missed_deadline", Value::Bool(res.missed_deadline)),
            ("total_energy", Value::Float(res.total_energy())),
            ("speed_changes", Value::UInt(res.energy.speed_changes())),
        ]))
    }
}

/// `montecarlo`: a batched Monte-Carlo sweep through the batch engine
/// (see `docs/simulator.md`). The request's `batch` realizations are
/// executed in bounded slices with a cancellation check between slices,
/// so a long sweep stays cooperatively cancellable on the shared worker
/// pool; because the batch seeding is a pure function of
/// `(seed, global index)` and the distribution is a strict index-order
/// fold, slicing changes neither any draw nor any summary bit.
fn handle_montecarlo(
    metrics: &Mutex<MetricsRegistry>,
    req: &Request,
    ctx: &JobCtx,
) -> Result<Value, Rejection> {
    use mp_sim::{run_batch, BatchConfig, BatchDistribution};
    const SLICE: usize = 256;
    let (g, model) = {
        let _v = ctx.span(names::REQ_VALIDATE);
        let (g, graph_src) = resolve_graph(req, metrics)?;
        let model = resolve_model(&req.platform)?;
        ingest_check(&g, &graph_src, &model, &req.platform)?;
        (g, model)
    };
    cancelled_check(&ctx.cancelled)?;
    let setup = build_setup(g, model, req)?;
    let etm = ExecTimeModel::paper_defaults();
    let sim = setup.simulator(false);
    let scheme: Scheme = req.scheme;
    // Histogram geometry mirrors `pas compare --metrics --batch`.
    let e_max = setup.plan.num_procs as f64 * setup.plan.deadline * 1.05;
    let t_max = setup.plan.deadline * 1.5;
    let mut dist = BatchDistribution::new(e_max, t_max, setup.sections.len(), 200)
        .ok_or_else(|| Rejection::new(Code::Pas0508, "degenerate histogram bounds"))?;
    let mut events_sampled = 0u64;
    let mut runs_sampled = 0u64;
    let mut done = 0usize;
    while done < req.batch {
        cancelled_check(&ctx.cancelled)?;
        let mut cfg = BatchConfig::new((req.batch - done).min(SLICE), req.seed);
        cfg.start_index = req.start_index + done as u64;
        cfg.observe_stride = 64;
        let out = run_batch(&sim, &etm, None, || setup.policy(scheme), &cfg)
            .map_err(|e| Rejection::new(Code::Pas0508, format!("simulation failed: {e}")))?;
        for i in 0..out.len() {
            dist.push(
                out.energy[i],
                out.finish_time[i],
                out.missed[i],
                out.section_row(i),
            );
        }
        events_sampled += out.events_sampled;
        runs_sampled += out.runs_sampled;
        done += out.len();
    }
    let quantiles = |m: &mp_sim::MetricDistribution| {
        object(vec![
            ("mean", Value::Float(m.summary().mean())),
            ("ci95", Value::Float(m.summary().ci95())),
            ("p50", Value::Float(m.quantile(0.5).unwrap_or(0.0))),
            ("p95", Value::Float(m.quantile(0.95).unwrap_or(0.0))),
            ("p99", Value::Float(m.quantile(0.99).unwrap_or(0.0))),
            ("max", Value::Float(m.max())),
        ])
    };
    let sections = Value::Array(dist.sections().iter().map(quantiles).collect());
    let events_per_run = if runs_sampled > 0 {
        events_sampled as f64 / runs_sampled as f64
    } else {
        0.0
    };
    Ok(object(vec![
        ("scheme", Value::Str(scheme.name().to_string())),
        ("seed", Value::UInt(req.seed)),
        ("batch", Value::UInt(req.batch as u64)),
        ("start_index", Value::UInt(req.start_index)),
        ("deadline_ms", Value::Float(setup.plan.deadline)),
        ("energy", quantiles(dist.energy())),
        ("makespan_ms", quantiles(dist.makespan())),
        (
            "miss",
            object(vec![
                ("count", Value::UInt(dist.misses())),
                ("rate", Value::Float(dist.miss_rate())),
                ("ci95", Value::Float(dist.miss_ci95())),
            ]),
        ),
        ("sections", sections),
        ("events_per_realization", Value::Float(events_per_run)),
    ]))
}

fn handle_debug(
    cfg: &ServeConfig,
    req: &Request,
    cancelled: &AtomicBool,
) -> Result<Value, Rejection> {
    if !cfg.debug_faults {
        return Err(Rejection::bad_param(format!(
            "kind '{}' requires the service to run with --debug-faults",
            req.kind.name()
        )));
    }
    match req.kind {
        ReqKind::DebugPanic => panic!("injected handler panic (debug-faults)"),
        ReqKind::DebugFail => Err(Rejection::new(
            Code::Pas0508,
            "injected simulation failure (debug-faults)",
        )),
        ReqKind::DebugSleep => {
            // Sleep in small slices so cancellation stays responsive.
            let mut remaining = req.sleep_ms;
            while remaining > 0 {
                cancelled_check(cancelled)?;
                let slice = remaining.min(5);
                std::thread::sleep(Duration::from_millis(slice));
                remaining -= slice;
            }
            Ok(object(vec![("slept_ms", Value::UInt(req.sleep_ms))]))
        }
        _ => unreachable!("handle_debug only dispatches debug kinds"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    fn ctx() -> (ServeConfig, PlanCache, Mutex<MetricsRegistry>) {
        let cfg = ServeConfig {
            debug_faults: true,
            ..ServeConfig::default()
        };
        (cfg, PlanCache::new(8), Mutex::new(MetricsRegistry::new()))
    }

    fn run(
        cfg: &ServeConfig,
        cache: &PlanCache,
        metrics: &Mutex<MetricsRegistry>,
        line: &str,
    ) -> Result<Value, Rejection> {
        let req = parse_request(line).expect("request parses");
        handle(cfg, cache, metrics, &req, &JobCtx::detached())
    }

    #[test]
    fn plan_misses_then_hits_the_cache() {
        let (cfg, cache, metrics) = ctx();
        let line = r#"{"kind":"plan","workload":"synthetic","load":0.5}"#;
        let first = run(&cfg, &cache, &metrics, line).expect("plans");
        assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
        assert_eq!(first.get("stale"), Some(&Value::Bool(false)));
        let digest = first.get("digest").and_then(Value::as_str).expect("digest");
        assert_eq!(digest.len(), 64);

        let second = run(&cfg, &cache, &metrics, line).expect("plans");
        assert_eq!(second.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(second.get("digest").and_then(Value::as_str), Some(digest));
        let m = metrics.lock().expect("metrics");
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert_eq!(m.counter("serve.cache.misses"), 1);
    }

    #[test]
    fn failed_rederivation_serves_the_stale_plan() {
        let (cfg, cache, metrics) = ctx();
        let ok = r#"{"kind":"plan","workload":"synthetic","load":0.5}"#;
        run(&cfg, &cache, &metrics, ok).expect("seeds the cache");
        let broken = r#"{"kind":"plan","workload":"synthetic","load":0.5,"revalidate":true,"fail_build":true}"#;
        let body = run(&cfg, &cache, &metrics, broken).expect("degrades, not fails");
        assert_eq!(body.get("stale"), Some(&Value::Bool(true)));
        let warning = body
            .get("warning")
            .and_then(Value::as_str)
            .expect("warning");
        assert!(warning.contains("PAS0507"), "{warning}");
        let m = metrics.lock().expect("metrics");
        assert_eq!(m.counter("serve.stale_served"), 1);
    }

    #[test]
    fn failed_rederivation_without_a_cache_entry_is_an_error() {
        let (cfg, cache, metrics) = ctx();
        let broken = r#"{"kind":"plan","workload":"synthetic","fail_build":true}"#;
        let rej = run(&cfg, &cache, &metrics, broken).expect_err("no fallback");
        assert_eq!(rej.code, Code::Pas0508);
    }

    #[test]
    fn ingest_validation_rejects_with_diagnostics() {
        let (cfg, cache, metrics) = ctx();
        // An inline empty graph: deserializes fine, fails PAS0001.
        let line = r#"{"kind":"run","graph":{"nodes":[]}}"#;
        let rej = run(&cfg, &cache, &metrics, line).expect_err("rejected");
        assert_eq!(rej.code, Code::Pas0503);
        assert!(rej.diagnostics.is_some(), "carries the report");
    }

    #[test]
    fn run_and_trace_agree_on_the_seeded_realization() {
        let (cfg, cache, metrics) = ctx();
        let r = run(
            &cfg,
            &cache,
            &metrics,
            r#"{"kind":"run","workload":"synthetic","scheme":"gss","seed":7}"#,
        )
        .expect("runs");
        let t = run(
            &cfg,
            &cache,
            &metrics,
            r#"{"kind":"trace","workload":"synthetic","scheme":"gss","seed":7}"#,
        )
        .expect("traces");
        assert_eq!(r.get("finish_ms"), t.get("finish_ms"));
        assert_eq!(r.get("total_energy"), t.get("total_energy"));
        assert!(t.get("events").and_then(Value::as_object).is_some());
    }

    #[test]
    fn montecarlo_slices_fold_to_one_distribution() {
        let (cfg, cache, metrics) = ctx();
        // 512 realizations spanning two 256-realization slices must match a
        // client-side split at start_index 256 exactly (determinism contract).
        let whole = run(
            &cfg,
            &cache,
            &metrics,
            r#"{"kind":"montecarlo","workload":"synthetic","scheme":"gss","seed":7,"batch":512}"#,
        )
        .expect("runs");
        assert_eq!(whole.get("batch"), Some(&Value::UInt(512)));
        let miss = whole.get("miss").and_then(Value::as_object).expect("miss");
        assert!(miss.iter().any(|(k, _)| k == "rate"));
        let energy = whole
            .get("energy")
            .and_then(Value::as_object)
            .expect("energy");
        let p50 = energy
            .iter()
            .find(|(k, _)| k == "p50")
            .and_then(|(_, v)| v.as_f64())
            .expect("p50");
        assert!(p50 > 0.0);
        let sections = whole
            .get("sections")
            .and_then(Value::as_array)
            .expect("sections");
        assert!(!sections.is_empty());

        // A sliced continuation reports the requested window verbatim.
        let tail = run(
            &cfg,
            &cache,
            &metrics,
            r#"{"kind":"montecarlo","workload":"synthetic","scheme":"gss","seed":7,"batch":256,"start_index":256}"#,
        )
        .expect("runs");
        assert_eq!(tail.get("start_index"), Some(&Value::UInt(256)));
        assert_eq!(tail.get("batch"), Some(&Value::UInt(256)));
    }

    #[test]
    fn debug_kinds_require_the_flag() {
        let (mut cfg, cache, metrics) = ctx();
        cfg.debug_faults = false;
        let rej = run(&cfg, &cache, &metrics, r#"{"kind":"debug-panic"}"#).expect_err("gated");
        assert_eq!(rej.code, Code::Pas0503);
        assert!(rej.message.contains("--debug-faults"), "{}", rej.message);
    }
}
