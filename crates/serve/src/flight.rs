//! The flight recorder: a bounded black box of recent request lifecycle
//! events, dumped as a versioned crash report when something goes wrong.
//!
//! Every request passing through the service leaves a short trail here —
//! `ingest` when the line arrives, `dispatch` when a worker picks it up,
//! `respond` when the answer leaves, plus `shed`/`timeout`/`panic` on
//! the failure paths — in a bounded [`Window`] (the same windowing that
//! backs [`pas_obs::RingLog`]), so memory stays O(capacity) however long
//! the daemon runs.
//!
//! On a worker panic (`PAS0506`), a deadline cancellation (`PAS0505`),
//! or — under `--debug-faults` — a shed (`PAS0504`), the recorder dumps
//! a crash report to `--crash-dir`: the offending request and its
//! correlation id, the last-N lifecycle events, the tail of the
//! structured log ring, and a counter/gauge snapshot. The JSON schema is
//! versioned ([`CRASH_SCHEMA_VERSION`]) and documented in
//! `docs/schemas.md`; `status` reports the report count and the last
//! path written.

use pas_obs::{log, MetricsRegistry, Window};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Version of the crash-report JSON schema; bumped on breaking changes,
/// embedded in every report as `crash_schema`.
pub const CRASH_SCHEMA_VERSION: u32 = 1;

/// One request lifecycle event in the black-box ring.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Process-global sequence number (1-based, gap-free).
    pub seq: u64,
    /// Monotonic milliseconds since the recorder was created.
    pub t_mono_ms: f64,
    /// Lifecycle stage: `ingest`, `dispatch`, `respond`, `shed`,
    /// `timeout` or `panic`.
    pub kind: &'static str,
    /// Correlation id of the request this event belongs to.
    pub corr_id: String,
    /// Free-form context (request kind, panic message, ...).
    pub detail: String,
}

impl FlightEvent {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("t_mono_ms".to_string(), Value::Float(self.t_mono_ms)),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            ("corr_id".to_string(), Value::Str(self.corr_id.clone())),
            ("detail".to_string(), Value::Str(self.detail.clone())),
        ])
    }
}

/// The bounded black box plus crash-report bookkeeping. Shared between
/// the service front-end (ingest/respond/shed/timeout) and the worker
/// pool (dispatch/panic).
#[derive(Debug)]
pub struct FlightRecorder {
    events: Mutex<Window<FlightEvent>>,
    crash_dir: Option<PathBuf>,
    crashes: AtomicU64,
    last_path: Mutex<Option<String>>,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events; crash reports go to
    /// `crash_dir` (no dumps are written when `None`, but the ring still
    /// records).
    pub fn new(cap: usize, crash_dir: Option<String>) -> Self {
        FlightRecorder {
            events: Mutex::new(Window::new(cap)),
            crash_dir: crash_dir.map(PathBuf::from),
            crashes: AtomicU64::new(0),
            last_path: Mutex::new(None),
            epoch: Instant::now(),
        }
    }

    /// Appends one lifecycle event, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, corr_id: &str, detail: &str) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let seq = events.seen() + 1;
        events.push(FlightEvent {
            seq,
            t_mono_ms: self.epoch.elapsed().as_secs_f64() * 1e3,
            kind,
            corr_id: corr_id.to_string(),
            detail: detail.to_string(),
        });
    }

    /// The retained ring, oldest first.
    pub fn recent(&self) -> Vec<FlightEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Crash reports written so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes.load(Ordering::SeqCst)
    }

    /// Path of the most recent crash report, if any.
    pub fn last_crash_path(&self) -> Option<String> {
        self.last_path
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Dumps a crash report for the request identified by `corr_id`:
    /// trigger code, raw request line, the last-N flight events, the
    /// structured-log tail, and a `serve.*` counter/gauge snapshot.
    /// Written atomically (temp file + rename) as
    /// `crash-<n>-<sanitized id>.json` under the crash dir. Returns the
    /// path, or `None` when no crash dir is configured or the write
    /// failed — the daemon never dies for want of a black box.
    pub fn dump(
        &self,
        trigger: &str,
        corr_id: &str,
        raw_request: &str,
        metrics: &Mutex<MetricsRegistry>,
    ) -> Option<String> {
        let dir = self.crash_dir.as_ref()?;
        let events: Vec<Value> = self.recent().iter().map(FlightEvent::to_value).collect();
        let log_tail: Vec<Value> = log::recent().iter().map(log::LogRecord::to_value).collect();
        let (counters, gauges) = {
            let m = metrics.lock().unwrap_or_else(|e| e.into_inner());
            let counters: Vec<(String, Value)> = m
                .counters()
                .filter(|(name, _)| name.starts_with("serve."))
                .map(|(name, v)| (name.to_string(), Value::UInt(v)))
                .collect();
            let gauges: Vec<(String, Value)> = m
                .gauges()
                .filter(|(name, _)| name.starts_with("serve."))
                .map(|(name, v)| (name.to_string(), Value::Float(v)))
                .collect();
            (counters, gauges)
        };
        let t_wall_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let report = Value::Object(vec![
            (
                "crash_schema".to_string(),
                Value::UInt(u64::from(CRASH_SCHEMA_VERSION)),
            ),
            ("trigger".to_string(), Value::Str(trigger.to_string())),
            ("corr_id".to_string(), Value::Str(corr_id.to_string())),
            ("request".to_string(), Value::Str(raw_request.to_string())),
            ("t_wall_ms".to_string(), Value::UInt(t_wall_ms)),
            ("events".to_string(), Value::Array(events)),
            ("log_tail".to_string(), Value::Array(log_tail)),
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
        ]);
        let body = match serde_json::to_string(&report) {
            Ok(b) => b,
            Err(_) => return None,
        };
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        let n = self.crashes.load(Ordering::SeqCst) + 1;
        let stem = format!("crash-{n}-{}", crate::reqtrace::sanitize_id(corr_id));
        let path = dir.join(format!("{stem}.json"));
        let tmp = dir.join(format!(".{stem}.json.tmp"));
        if std::fs::write(&tmp, format!("{body}\n")).is_err() {
            return None;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return None;
        }
        self.crashes.fetch_add(1, Ordering::SeqCst);
        let path = path.to_string_lossy().to_string();
        *self.last_path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.clone());
        log::emit(
            log::Level::Error,
            "serve.flight",
            "crash report written",
            vec![
                ("trigger", Value::Str(trigger.to_string())),
                ("path", Value::Str(path.clone())),
            ],
        );
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pas-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_is_bounded_with_gap_free_seqs() {
        let fr = FlightRecorder::new(3, None);
        for i in 0..5 {
            fr.record("ingest", &format!("r{i}"), "run");
        }
        let events = fr.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(events[2].corr_id, "r4");
    }

    #[test]
    fn dump_without_a_crash_dir_is_a_no_op() {
        let fr = FlightRecorder::new(4, None);
        fr.record("panic", "x", "boom");
        let metrics = Mutex::new(MetricsRegistry::new());
        assert!(fr.dump("PAS0506", "x", "{}", &metrics).is_none());
        assert_eq!(fr.crash_count(), 0);
        assert!(fr.last_crash_path().is_none());
    }

    #[test]
    fn dump_writes_a_schema_versioned_report() {
        let dir = temp_dir("dump");
        let fr = FlightRecorder::new(4, Some(dir.to_string_lossy().to_string()));
        fr.record("ingest", "bad:id", "debug-panic");
        fr.record("panic", "bad:id", "boom");
        let metrics = Mutex::new(MetricsRegistry::new());
        metrics.lock().expect("metrics").inc("serve.panics", 1);
        let path = fr
            .dump("PAS0506", "bad:id", r#"{"id":"bad:id"}"#, &metrics)
            .expect("report written");
        assert_eq!(fr.crash_count(), 1);
        assert_eq!(fr.last_crash_path().as_deref(), Some(path.as_str()));
        assert!(path.contains("crash-1-bad_id"), "{path}");
        let text = std::fs::read_to_string(&path).expect("readable");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v.get("crash_schema").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("trigger").and_then(Value::as_str), Some("PAS0506"));
        assert_eq!(v.get("corr_id").and_then(Value::as_str), Some("bad:id"));
        let events = v.get("events").and_then(Value::as_array).expect("events");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("kind").and_then(Value::as_str), Some("panic"));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("serve.panics"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert!(v.get("log_tail").and_then(Value::as_array).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
