#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! `pas serve` — a fault-isolated, back-pressured plan/simulation
//! service with a content-addressed plan cache.
//!
//! The paper's offline/online split (expensive Theorem-1 analysis once,
//! cheap per-frame serving forever after) only pays off if the offline
//! half can run somewhere long-lived. This crate is that somewhere: a
//! daemon that accepts plan/check/run/trace requests as
//! newline-delimited JSON over TCP, a Unix socket, or a watched drop
//! directory, and answers every single one with a structured response —
//! whatever the request did.
//!
//! Robustness is the design center:
//!
//! - **Back-pressure, never unbounded queueing** — a fixed worker pool
//!   drains a bounded queue ([`queue::Bounded`]); beyond capacity,
//!   requests shed immediately with a retry-after hint (`PAS0504`).
//! - **Deadlines with cancellation** — every request carries a deadline;
//!   on expiry the submitter answers `PAS0505` and flips a cooperative
//!   cancellation flag that workers poll.
//! - **Panic isolation** — handlers run under `catch_unwind`; a panic
//!   becomes a `PAS0506` response and the worker keeps serving
//!   ([`pool::WorkerPool`]).
//! - **Bounded retries** — transient I/O reading workload files retries
//!   with backoff, tallied as `serve.io_retries`.
//! - **Graceful degradation** — plans are cached content-addressed by an
//!   input digest ([`cache::PlanCache`], [`pas_core::sha256_hex`]); when
//!   re-derivation fails, the last known-good plan is served flagged
//!   `stale: true` (`PAS0507`).
//! - **Validation on ingest** — every request runs through `pas-analyze`
//!   before touching the simulator; failures are structured `PAS05xx`
//!   error responses, the service-side equivalent of `pas check`
//!   exiting 2.
//! - **Observable lifecycle** — queue depth, shed/timeout/retry/panic
//!   counters, cache hit rate and per-kind latency flow through
//!   [`pas_obs::MetricsRegistry`] and surface in `status` responses.
//!   Per-kind latency histograms (queue wait, execution, end-to-end,
//!   plan execution split by cache hit/miss) report p50/p95/p99 in
//!   `status`, and the `metrics` kind renders the whole surface in
//!   Prometheus text exposition format ([`telemetry`]). Every request
//!   carries a correlation id — client-chosen, or minted `auto-<seq>`
//!   at ingest — echoed in its response.
//! - **Structured logs** — `--log FILE|stderr` routes every service
//!   event through [`pas_obs::log`] as single-line JSON records, with
//!   the request's correlation id threaded through queue and workers.
//! - **Per-request timelines** — `"trace": true` echoes the request's
//!   span timeline (queue wait, validation, cache lookup, execution) in
//!   the response ([`reqtrace::Timeline`]); `--trace-out DIR` writes a
//!   Chrome-trace file per request, joinable against `pas plan
//!   --profile` output on cache misses.
//! - **Flight recorder** — a bounded black box of recent lifecycle
//!   events ([`flight::FlightRecorder`]) dumps a versioned crash report
//!   to `--crash-dir` on panic, deadline cancellation, or (under
//!   `--debug-faults`) shed; `status` reports the count and last path.
//! - **Graceful shutdown** — `SIGTERM`/`SIGINT` or an in-band `shutdown`
//!   request stops accepting and drains in-flight work under a deadline.
//!
//! The wire schema is documented in `docs/service.md`; the `PAS0501` –
//! `PAS0508` diagnostics in `docs/diagnostics.md`.
//!
//! # Example
//!
//! ```
//! use pas_serve::{ServeConfig, Service};
//!
//! let svc = Service::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let resp = svc.handle_line(r#"{"id":"1","kind":"status"}"#);
//! assert!(resp.contains("\"status\":\"ok\""));
//! assert_eq!(svc.shutdown(), 0);
//! ```

pub mod cache;
pub mod flight;
pub mod handlers;
pub mod net;
pub mod pool;
pub mod proto;
pub mod queue;
pub mod reqtrace;
pub mod service;
pub mod telemetry;

pub use cache::{CachedPlan, PlanCache};
pub use flight::{FlightEvent, FlightRecorder, CRASH_SCHEMA_VERSION};
pub use net::{run_server, Endpoints};
pub use pool::{Executor, Job, JobCtx, SubmitError, WorkerPool};
pub use proto::{parse_request, Rejection, ReqKind, Request, PROTO_VERSION};
pub use queue::Bounded;
pub use reqtrace::Timeline;
pub use service::{ServeConfig, Service};
pub use telemetry::{
    prometheus_exposition, LatencySnapshot, LatencyStore, SeriesKey, LATENCY_KINDS, LATENCY_STAGES,
    PRE_SEEDED_COUNTERS,
};
