//! Per-request trace timelines.
//!
//! A [`Timeline`] collects [`SpanRecord`]s for one request's trip through
//! the service — ingest, queue wait, validation, cache lookup, handler
//! execution, response — using the same record type and span-name
//! catalog as the offline profiler ([`pas_obs::profile`]). Cache-miss
//! plan derivations additionally record the offline catalog names
//! (`offline.build`, `artifact.serialize`, `artifact.digest`), so a
//! per-request trace joins directly against `pas plan --profile` output.
//!
//! A timeline exists only when the request asked for one (`"trace":
//! true`) or the daemon writes Chrome-trace files (`--trace-out DIR`);
//! otherwise every span helper is a no-op on a `None`. Its spans are
//! echoed in the response (`timeline` array) and/or rendered through
//! [`pas_obs::profile::chrome_trace`] into one file per request.

use pas_obs::profile::SpanRecord;
use serde::Value;
use std::sync::Mutex;
use std::time::Instant;

/// Span collector for one request. Threads hand spans in from both the
/// submitter (ingest, respond) and the worker (queue wait, validation,
/// execution), so the record list is behind a mutex.
#[derive(Debug)]
pub struct Timeline {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// A fresh timeline; the epoch (t=0 of every span) is now.
    pub fn new() -> Self {
        Timeline {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Opens a span named `name` starting now; it is recorded when the
    /// returned guard drops.
    pub fn span(&self, name: &'static str) -> TimelineSpan<'_> {
        TimelineSpan {
            timeline: self,
            name,
            opened: Instant::now(),
        }
    }

    /// Records a span that ran from `start` until now — for stages whose
    /// start predates the code that can observe them (queue wait starts
    /// at enqueue time, ingest at line arrival).
    pub fn record_since(&self, name: &'static str, start: Instant) {
        let now = Instant::now();
        let start_ms = start
            .checked_duration_since(self.epoch)
            .map_or(0.0, |d| d.as_secs_f64() * 1e3);
        let dur_ms = now.saturating_duration_since(start).as_secs_f64() * 1e3;
        self.push(name, start_ms, dur_ms);
    }

    fn push(&self, name: &'static str, start_ms: f64, dur_ms: f64) {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(SpanRecord {
                name,
                detail: None,
                thread: 0,
                depth: 0,
                start_ms,
                dur_ms,
            });
    }

    /// The collected spans, ordered by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        spans
    }

    /// The timeline as the JSON array echoed in traced responses: one
    /// `{name, start_ms, dur_ms}` object per span, ordered by start.
    pub fn to_value(&self) -> Value {
        Value::Array(
            self.spans()
                .into_iter()
                .map(|s| {
                    Value::Object(vec![
                        ("name".to_string(), Value::Str(s.name.to_string())),
                        ("start_ms".to_string(), Value::Float(s.start_ms)),
                        ("dur_ms".to_string(), Value::Float(s.dur_ms)),
                    ])
                })
                .collect(),
        )
    }

    /// The timeline rendered as a Chrome trace-event document (what
    /// `--trace-out` writes, one file per request) — the same renderer
    /// the offline profiler uses, so request and offline traces open
    /// side by side.
    pub fn chrome_trace(&self) -> String {
        pas_obs::profile::chrome_trace(&self.spans())
    }
}

/// RAII guard returned by [`Timeline::span`]: records the span on drop.
#[must_use = "a span measures nothing unless the guard lives across the work"]
pub struct TimelineSpan<'a> {
    timeline: &'a Timeline,
    name: &'static str,
    opened: Instant,
}

impl Drop for TimelineSpan<'_> {
    fn drop(&mut self) {
        let start_ms = self
            .opened
            .checked_duration_since(self.timeline.epoch)
            .map_or(0.0, |d| d.as_secs_f64() * 1e3);
        let dur_ms = self.opened.elapsed().as_secs_f64() * 1e3;
        self.timeline.push(self.name, start_ms, dur_ms);
    }
}

/// Reduces a request id to a filesystem-safe stem for `--trace-out` and
/// crash-report file names: `[A-Za-z0-9._-]` pass through, everything
/// else becomes `_`.
pub fn sanitize_id(id: &str) -> String {
    let mut out: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_obs::profile::names;

    #[test]
    fn spans_record_and_sort_by_start() {
        let tl = Timeline::new();
        let early = Instant::now();
        {
            let _v = tl.span(names::REQ_VALIDATE);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        tl.record_since(names::REQ_INGEST, early);
        let spans = tl.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, names::REQ_INGEST);
        assert_eq!(spans[1].name, names::REQ_VALIDATE);
        assert!(spans[0].dur_ms >= spans[1].dur_ms);
    }

    #[test]
    fn value_and_chrome_renderings_carry_every_span() {
        let tl = Timeline::new();
        {
            let _e = tl.span(names::REQ_EXEC);
        }
        let v = tl.to_value();
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("name").and_then(Value::as_str),
            Some(names::REQ_EXEC)
        );
        assert!(arr[0].get("dur_ms").and_then(Value::as_f64).is_some());
        let doc = tl.chrome_trace();
        let parsed: Value = serde_json::from_str(&doc).expect("valid chrome trace");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn ids_sanitize_to_safe_stems() {
        assert_eq!(sanitize_id("auto-000001"), "auto-000001");
        assert_eq!(sanitize_id("a/b:c"), "a_b_c");
        assert_eq!(sanitize_id(""), "_");
    }
}
