//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request is one JSON object on one line; the service answers with
//! exactly one JSON object on one line. The schema is a documented
//! on-disk contract (see `docs/service.md`) and is policed like the
//! others: malformed input never panics the daemon, it produces a
//! structured `PAS05xx` error response (the service-side equivalent of
//! `pas check`'s exit 2).
//!
//! Parsing is hand-rolled over the [`Value`] tree rather than derived so
//! that every missing field and out-of-range parameter can name itself
//! in a `PAS0503` diagnostic instead of surfacing as a generic
//! deserialization error.

use pas_analyze::{Code, Report};
use pas_core::Scheme;
use serde::Value;

/// Version of the request/response wire schema; bumped on breaking
/// changes, echoed in every response.
pub const PROTO_VERSION: u32 = 1;

/// Default `montecarlo` batch size when the request omits `batch`.
pub const DEFAULT_BATCH: usize = 1024;

/// Upper bound on `batch` per request: one `montecarlo` job must stay a
/// bounded unit of work on the shared worker pool (larger sweeps slice
/// with `start_index`, which is draw-stable by construction).
pub const MAX_BATCH: usize = 65_536;

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Build (or fetch from cache) the offline [`pas_core::PlanArtifact`]
    /// for a (workload, platform, scheme) triple.
    Plan,
    /// Run the full static-analysis pipeline and return the report.
    Check,
    /// Simulate one seeded realization and return the run summary.
    Run,
    /// Simulate one seeded realization under observation and return the
    /// event-stream digest (per-kind counts, energy, horizon).
    Trace,
    /// Run a batched Monte-Carlo sweep (`batch` realizations through the
    /// batched engine) and return distribution summaries: energy and
    /// makespan quantiles, miss rate with CI, per-section energy
    /// quantiles.
    Montecarlo,
    /// Health snapshot: queue depth, counters, cache stats, latencies.
    Status,
    /// The full `serve.*` metric surface rendered in Prometheus text
    /// exposition format (see `docs/observability.md`).
    Metrics,
    /// Ask the daemon to drain and exit cleanly.
    Shutdown,
    /// Debug-only (requires `--debug-faults`): panic inside the handler.
    DebugPanic,
    /// Debug-only: hold a worker for `sleep_ms`, checking cancellation.
    DebugSleep,
    /// Debug-only: fail with a typed simulation error.
    DebugFail,
}

impl ReqKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ReqKind::Plan => "plan",
            ReqKind::Check => "check",
            ReqKind::Run => "run",
            ReqKind::Trace => "trace",
            ReqKind::Montecarlo => "montecarlo",
            ReqKind::Status => "status",
            ReqKind::Metrics => "metrics",
            ReqKind::Shutdown => "shutdown",
            ReqKind::DebugPanic => "debug-panic",
            ReqKind::DebugSleep => "debug-sleep",
            ReqKind::DebugFail => "debug-fail",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "plan" => ReqKind::Plan,
            "check" => ReqKind::Check,
            "run" => ReqKind::Run,
            "trace" => ReqKind::Trace,
            "montecarlo" => ReqKind::Montecarlo,
            "status" => ReqKind::Status,
            "metrics" => ReqKind::Metrics,
            "shutdown" => ReqKind::Shutdown,
            "debug-panic" => ReqKind::DebugPanic,
            "debug-sleep" => ReqKind::DebugSleep,
            "debug-fail" => ReqKind::DebugFail,
            _ => return None,
        })
    }
}

/// Where the request's workload comes from.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A built-in workload: `synthetic`, `video` or `atr`.
    Builtin(String),
    /// An inline graph object (the serde form of
    /// [`andor_graph::AndOrGraph`]) embedded in the request.
    Inline(Value),
    /// A JSON file on the daemon's filesystem.
    Path(String),
}

/// A parsed, validated request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// The operation.
    pub kind: ReqKind,
    /// Workload source (`workload` string field or inline `graph`).
    pub workload: WorkloadSpec,
    /// Platform spec: `transmeta`, `xscale`, `continuous:<smin>`.
    pub platform: String,
    /// Processor count.
    pub procs: usize,
    /// Target load in `(0, 1]` (mutually exclusive with `deadline_ms`).
    pub load: Option<f64>,
    /// Explicit deadline in ms.
    pub deadline_ms: Option<f64>,
    /// Scheme for `plan`/`run`/`trace`.
    pub scheme: Scheme,
    /// RNG seed for `run`/`trace` (and `atr` jitter); the base seed of a
    /// `montecarlo` batch.
    pub seed: u64,
    /// `montecarlo`: realizations to run (capped at [`MAX_BATCH`]).
    pub batch: usize,
    /// `montecarlo`: global index of the first realization — slices of
    /// one logical batch submitted as separate requests draw exactly the
    /// realizations the full batch would (see `docs/simulator.md`).
    pub start_index: u64,
    /// Per-request deadline; `None` uses the service default.
    pub timeout_ms: Option<u64>,
    /// `plan`: rebuild even on a cache hit (re-derivation; on failure
    /// the cached plan is served `stale: true`).
    pub revalidate: bool,
    /// `debug-sleep`: how long to hold the worker.
    pub sleep_ms: u64,
    /// `plan` + `--debug-faults`: simulate a re-derivation failure (the
    /// deterministic trigger for the stale-plan degradation path).
    pub fail_build: bool,
    /// Echo the request's span timeline (queue wait, validation, cache
    /// lookup, execution, ...) in the response as a `timeline` array.
    pub trace: bool,
}

/// A structured refusal: the `PAS05xx` code, a message, and optionally
/// the full `pas-analyze` report that triggered it (ingest validation).
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The service diagnostic describing the failure class.
    pub code: Code,
    /// Human-readable specifics.
    pub message: String,
    /// Ingest-validation findings, when the refusal came from the
    /// static-analysis pass.
    pub diagnostics: Option<Report>,
}

impl Rejection {
    /// A rejection with no attached report.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Rejection {
            code,
            message: message.into(),
            diagnostics: None,
        }
    }

    /// A `PAS0503` invalid-parameter rejection.
    pub fn bad_param(message: impl Into<String>) -> Self {
        Rejection::new(Code::Pas0503, message)
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_field(v: &Value, name: &str) -> Result<Option<String>, Rejection> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(Rejection::bad_param(format!("`{name}` must be a string"))),
    }
}

fn f64_field(v: &Value, name: &str) -> Result<Option<f64>, Rejection> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| Rejection::bad_param(format!("`{name}` must be a number"))),
    }
}

fn u64_field(v: &Value, name: &str) -> Result<Option<u64>, Rejection> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            Rejection::bad_param(format!("`{name}` must be a non-negative integer"))
        }),
    }
}

fn bool_field(v: &Value, name: &str) -> Result<bool, Rejection> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(Rejection::bad_param(format!("`{name}` must be a boolean"))),
    }
}

/// Parses one request line. Every failure maps to a `PAS05xx` code:
/// `PAS0501` for malformed JSON, `PAS0502` for an unknown kind,
/// `PAS0503` for missing/invalid fields.
pub fn parse_request(line: &str) -> Result<Request, Rejection> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| Rejection::new(Code::Pas0501, format!("request is not valid JSON: {e}")))?;
    if v.as_object().is_none() {
        return Err(Rejection::new(
            Code::Pas0501,
            "request must be a JSON object",
        ));
    }
    let id = str_field(&v, "id")?.unwrap_or_else(|| "-".to_string());
    let kind_name = str_field(&v, "kind")?
        .ok_or_else(|| Rejection::bad_param("missing required field `kind`"))?;
    let kind = ReqKind::parse(&kind_name)
        .ok_or_else(|| Rejection::new(Code::Pas0502, format!("unknown kind '{kind_name}'")))?;

    let workload = match (str_field(&v, "workload")?, v.get("graph")) {
        (Some(_), Some(g)) if *g != Value::Null => {
            return Err(Rejection::bad_param(
                "`workload` and `graph` are mutually exclusive",
            ))
        }
        (Some(w), _) => match w.as_str() {
            "synthetic" | "video" | "atr" => WorkloadSpec::Builtin(w),
            _ => WorkloadSpec::Path(w),
        },
        (None, Some(g)) if *g != Value::Null => WorkloadSpec::Inline(g.clone()),
        (None, _) => WorkloadSpec::Builtin("synthetic".to_string()),
    };

    let platform = str_field(&v, "platform")?.unwrap_or_else(|| "transmeta".to_string());
    let procs = match u64_field(&v, "procs")? {
        None => 2,
        Some(0) => return Err(Rejection::bad_param("`procs` must be positive")),
        Some(p) => usize::try_from(p).map_err(|_| Rejection::bad_param("`procs` out of range"))?,
    };
    let load = f64_field(&v, "load")?;
    if let Some(l) = load {
        if !(l > 0.0 && l <= 1.0) {
            return Err(Rejection::bad_param("`load` must be in (0, 1]"));
        }
    }
    let deadline_ms = f64_field(&v, "deadline_ms")?;
    if load.is_some() && deadline_ms.is_some() {
        return Err(Rejection::bad_param(
            "`load` and `deadline_ms` are mutually exclusive",
        ));
    }
    let scheme = match str_field(&v, "scheme")? {
        None => Scheme::Gss,
        Some(s) => {
            parse_scheme(&s).ok_or_else(|| Rejection::bad_param(format!("unknown scheme '{s}'")))?
        }
    };
    let seed = u64_field(&v, "seed")?.unwrap_or(42);
    let batch = match u64_field(&v, "batch")? {
        None => DEFAULT_BATCH,
        Some(0) => return Err(Rejection::bad_param("`batch` must be positive")),
        Some(b) if b > MAX_BATCH as u64 => {
            return Err(Rejection::bad_param(format!(
                "`batch` must be at most {MAX_BATCH} per request (slice with `start_index`)"
            )))
        }
        Some(b) => b as usize,
    };
    let start_index = u64_field(&v, "start_index")?.unwrap_or(0);
    let timeout_ms = u64_field(&v, "timeout_ms")?;
    if timeout_ms == Some(0) {
        return Err(Rejection::bad_param("`timeout_ms` must be positive"));
    }
    Ok(Request {
        id,
        kind,
        workload,
        platform,
        procs,
        load,
        deadline_ms,
        scheme,
        seed,
        batch,
        start_index,
        timeout_ms,
        revalidate: bool_field(&v, "revalidate")?,
        sleep_ms: u64_field(&v, "sleep_ms")?.unwrap_or(0),
        fail_build: bool_field(&v, "fail_build")?,
        trace: bool_field(&v, "trace")?,
    })
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    Some(match s.to_ascii_lowercase().as_str() {
        "npm" => Scheme::Npm,
        "spm" => Scheme::Spm,
        "gss" => Scheme::Gss,
        "ss1" | "ss(1)" => Scheme::Ss1,
        "ss2" | "ss(2)" => Scheme::Ss2,
        "as" => Scheme::As,
        _ => return None,
    })
}

pub(crate) fn report_value(report: &Report) -> Value {
    Value::Array(
        report
            .diagnostics
            .iter()
            .map(|d| {
                obj(vec![
                    ("code", Value::Str(d.code.as_str().to_string())),
                    ("severity", Value::Str(d.severity.label().to_string())),
                    ("source", Value::Str(d.loc.source.clone())),
                    ("path", Value::Str(d.loc.path.clone())),
                    ("message", Value::Str(d.message.clone())),
                ])
            })
            .collect(),
    )
}

fn envelope(id: &str, status: &str, extra: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![
        ("proto", Value::UInt(u64::from(PROTO_VERSION))),
        ("id", Value::Str(id.to_string())),
        ("status", Value::Str(status.to_string())),
    ];
    pairs.extend(extra);
    serde_json::to_string(&obj(pairs)).unwrap_or_else(|_| {
        // Unreachable: Value serialization is total. Kept total anyway.
        format!("{{\"proto\":{PROTO_VERSION},\"id\":\"{id}\",\"status\":\"error\"}}")
    })
}

/// A successful response: `status: "ok"` with a kind-specific body.
pub fn ok_response(id: &str, kind: ReqKind, body: Value) -> String {
    envelope(
        id,
        "ok",
        vec![
            ("kind", Value::Str(kind.name().to_string())),
            ("body", body),
        ],
    )
}

/// A structured failure: `status: "error"` with the `PAS05xx` code, the
/// message, and any attached ingest diagnostics.
pub fn error_response(id: &str, rej: &Rejection) -> String {
    let mut extra = vec![
        ("code", Value::Str(rej.code.as_str().to_string())),
        ("message", Value::Str(rej.message.clone())),
    ];
    if let Some(report) = &rej.diagnostics {
        extra.push(("diagnostics", report_value(report)));
    }
    envelope(id, "error", extra)
}

/// Back-pressure refusal: `status: "shed"` (`PAS0504`) with a
/// retry-after hint. The request was never queued.
pub fn shed_response(id: &str, retry_after_ms: u64, depth: usize) -> String {
    envelope(
        id,
        "shed",
        vec![
            ("code", Value::Str(Code::Pas0504.as_str().to_string())),
            (
                "message",
                Value::Str(format!(
                    "queue full ({depth} requests deep); retry in {retry_after_ms} ms"
                )),
            ),
            ("retry_after_ms", Value::UInt(retry_after_ms)),
        ],
    )
}

/// Deadline refusal: `status: "timeout"` (`PAS0505`). The request was
/// cancelled; if it was still queued, the worker skips it.
pub fn timeout_response(id: &str, timeout_ms: u64) -> String {
    envelope(
        id,
        "timeout",
        vec![
            ("code", Value::Str(Code::Pas0505.as_str().to_string())),
            (
                "message",
                Value::Str(format!("request exceeded its {timeout_ms} ms deadline")),
            ),
            ("timeout_ms", Value::UInt(timeout_ms)),
        ],
    )
}

/// Panic containment: `status: "panic"` (`PAS0506`). The worker caught
/// the unwind and kept serving.
pub fn panic_response(id: &str, detail: &str) -> String {
    envelope(
        id,
        "panic",
        vec![
            ("code", Value::Str(Code::Pas0506.as_str().to_string())),
            (
                "message",
                Value::Str(format!("request handler panicked: {detail}")),
            ),
        ],
    )
}

/// Builds a JSON object value from string keys (handler helper).
pub fn object(pairs: Vec<(&str, Value)>) -> Value {
    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let r = parse_request(r#"{"id":"a","kind":"run"}"#).expect("parses");
        assert_eq!(r.id, "a");
        assert_eq!(r.kind, ReqKind::Run);
        assert!(matches!(&r.workload, WorkloadSpec::Builtin(n) if n == "synthetic"));
        assert_eq!(r.platform, "transmeta");
        assert_eq!(r.procs, 2);
        assert_eq!(r.scheme, Scheme::Gss);
        assert_eq!(r.seed, 42);
        assert_eq!(r.batch, DEFAULT_BATCH);
        assert_eq!(r.start_index, 0);
        assert!(r.timeout_ms.is_none());
        assert!(!r.revalidate);
        assert!(!r.trace);
    }

    #[test]
    fn montecarlo_batch_parses_and_is_capped() {
        let r = parse_request(r#"{"kind":"montecarlo","batch":512,"start_index":2048}"#)
            .expect("parses");
        assert_eq!(r.kind, ReqKind::Montecarlo);
        assert_eq!(r.batch, 512);
        assert_eq!(r.start_index, 2048);
        for line in [
            r#"{"kind":"montecarlo","batch":0}"#,
            r#"{"kind":"montecarlo","batch":100000}"#,
            r#"{"kind":"montecarlo","batch":-3}"#,
        ] {
            let rej = parse_request(line).expect_err(line);
            assert_eq!(rej.code, Code::Pas0503, "{line}");
        }
    }

    #[test]
    fn trace_flag_parses_and_rejects_non_booleans() {
        let r = parse_request(r#"{"id":"t","kind":"run","trace":true}"#).expect("parses");
        assert!(r.trace);
        let rej = parse_request(r#"{"kind":"run","trace":1}"#).expect_err("rejected");
        assert_eq!(rej.code, Code::Pas0503);
    }

    #[test]
    fn malformed_json_is_pas0501() {
        let rej = parse_request("{not json").expect_err("rejected");
        assert_eq!(rej.code, Code::Pas0501);
        let rej = parse_request("[1,2]").expect_err("rejected");
        assert_eq!(rej.code, Code::Pas0501);
    }

    #[test]
    fn unknown_kind_is_pas0502() {
        let rej = parse_request(r#"{"kind":"frobnicate"}"#).expect_err("rejected");
        assert_eq!(rej.code, Code::Pas0502);
        assert!(rej.message.contains("frobnicate"), "{}", rej.message);
    }

    #[test]
    fn bad_parameters_are_pas0503() {
        for line in [
            r#"{}"#,
            r#"{"kind":"run","procs":0}"#,
            r#"{"kind":"run","load":1.5}"#,
            r#"{"kind":"run","load":0.5,"deadline_ms":40}"#,
            r#"{"kind":"run","scheme":"warp"}"#,
            r#"{"kind":"run","timeout_ms":0}"#,
            r#"{"kind":"run","workload":"atr","graph":{"nodes":[]}}"#,
            r#"{"kind":"run","procs":"two"}"#,
        ] {
            let rej = parse_request(line).expect_err(line);
            assert_eq!(rej.code, Code::Pas0503, "{line}");
        }
    }

    #[test]
    fn workload_classification() {
        let r = parse_request(r#"{"kind":"plan","workload":"atr"}"#).expect("parses");
        assert!(matches!(&r.workload, WorkloadSpec::Builtin(n) if n == "atr"));
        let r = parse_request(r#"{"kind":"plan","workload":"w.json"}"#).expect("parses");
        assert!(matches!(&r.workload, WorkloadSpec::Path(p) if p == "w.json"));
        let r = parse_request(r#"{"kind":"plan","graph":{"nodes":[]}}"#).expect("parses");
        assert!(matches!(&r.workload, WorkloadSpec::Inline(_)));
    }

    #[test]
    fn responses_are_single_json_lines_with_the_envelope() {
        let ok = ok_response("r1", ReqKind::Plan, Value::Null);
        let v: Value = serde_json::from_str(&ok).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("proto").and_then(Value::as_u64), Some(1));
        assert!(!ok.contains('\n'));

        let shed = shed_response("r2", 50, 64);
        let v: Value = serde_json::from_str(&shed).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("shed"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("PAS0504"));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(50));

        let to = timeout_response("r3", 25);
        assert!(to.contains("PAS0505"), "{to}");
        let p = panic_response("r4", "boom");
        assert!(p.contains("PAS0506"), "{p}");
        assert!(p.contains("boom"), "{p}");

        let mut rej = Rejection::bad_param("missing field");
        rej.diagnostics = Some(Report::new());
        let err = error_response("r5", &rej);
        let v: Value = serde_json::from_str(&err).expect("valid JSON");
        assert_eq!(v.get("code").and_then(Value::as_str), Some("PAS0503"));
        assert!(v.get("diagnostics").is_some());
    }
}
