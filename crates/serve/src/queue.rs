//! A bounded MPMC queue with explicit back-pressure.
//!
//! The service never queues unboundedly: when the queue is at capacity,
//! [`Bounded::try_push`] refuses immediately and the caller sheds the
//! request with a retry-after hint (`PAS0504`). Workers block on
//! [`Bounded::pop`] and drain naturally when the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the payload carries the current depth.
    Full(usize),
    /// The queue was closed (service shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between submitters and workers.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// An open queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues without blocking. Returns the depth *after* the push, or
    /// refuses when full/closed — the back-pressure decision point.
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.cap {
            return Err(PushError::Full(st.items.len()));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means a worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pushes are refused, workers drain what is left
    /// and then exit.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn refuses_when_full_and_reports_depth() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(2)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Bounded::new(4);
        q.try_push("a").expect("push");
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).expect("push");
        assert_eq!(h.join().expect("join"), Some(7));
    }
}
