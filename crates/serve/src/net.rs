//! Transport front-ends: TCP, Unix socket and a watched drop directory.
//!
//! All three funnel into [`Service::handle_line`]. Listeners run
//! nonblocking accept loops so they can notice `SIGTERM`/`SIGINT` (or an
//! in-band `shutdown` request) promptly; the daemon then stops
//! accepting, drains in-flight work under the configured deadline and
//! exits 0.

use crate::service::{ServeConfig, Service};
use pas_obs::log;
use serde::Value;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens. At least one endpoint must be set.
#[derive(Debug, Clone, Default)]
pub struct Endpoints {
    /// TCP listen address, e.g. `127.0.0.1:7453`.
    pub tcp: Option<String>,
    /// Unix-domain socket path (Unix only).
    pub unix: Option<String>,
    /// Drop directory: `*.json` request files are answered with
    /// `<stem>.response.json` siblings.
    pub watch: Option<String>,
}

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term_signal(_sig: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs `SIGTERM`/`SIGINT` handlers that flip the drain flag. Uses
/// libc's `signal(2)` directly (std already links it on Unix); a no-op
/// elsewhere.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // SAFETY: `signal` is async-signal-safe to install, and the
        // handler only stores to an atomic (async-signal-safe).
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term_signal as *const () as usize);
            signal(SIGINT, on_term_signal as *const () as usize);
        }
    }
}

/// True once a termination signal arrived (test hook: resettable).
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Clears the signal flag (tests only; the daemon never un-terms).
pub fn reset_term_flag() {
    TERM_REQUESTED.store(false, Ordering::SeqCst);
}

fn should_stop(svc: &Service, stopping: &AtomicBool) -> bool {
    stopping.load(Ordering::SeqCst) || term_requested() || svc.is_shutdown_requested()
}

/// Serves one connection: newline-delimited requests in, one response
/// line per request out. Short read timeouts keep the loop responsive
/// to shutdown.
fn serve_conn<S: Read + Write>(mut stream: S, svc: &Service, stopping: &AtomicBool) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if should_stop(svc, stopping) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                while let Some(pos) = buf.iter().position(|b| *b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let resp = svc.handle_line(line);
                    if stream.write_all(resp.as_bytes()).is_err()
                        || stream.write_all(b"\n").is_err()
                        || stream.flush().is_err()
                    {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

fn tcp_listener_loop(listener: TcpListener, svc: Arc<Service>, stopping: Arc<AtomicBool>) {
    let _ = listener.set_nonblocking(true);
    while !should_stop(&svc, &stopping) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let svc = Arc::clone(&svc);
                let stopping = Arc::clone(&stopping);
                std::thread::spawn(move || serve_conn(stream, &svc, &stopping));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(unix)]
fn unix_listener_loop(
    listener: std::os::unix::net::UnixListener,
    svc: Arc<Service>,
    stopping: Arc<AtomicBool>,
) {
    let _ = listener.set_nonblocking(true);
    while !should_stop(&svc, &stopping) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let svc = Arc::clone(&svc);
                let stopping = Arc::clone(&stopping);
                std::thread::spawn(move || serve_conn(stream, &svc, &stopping));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// One pass over the drop directory: each `*.json` file (that is not a
/// response) is consumed and answered with `<stem>.response.json`,
/// written atomically via a temp-file rename.
fn watch_pass(dir: &Path, svc: &Service) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut requests: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("json")
                && !p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".response.json"))
        })
        .collect();
    requests.sort();
    for path in requests {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => continue, // mid-write; next pass gets it
        };
        // Consume first so a crash mid-handling cannot loop forever on
        // the same poisoned file.
        if std::fs::remove_file(&path).is_err() {
            continue;
        }
        let line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
        let resp = svc.handle_line(line.trim());
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("request");
        let out = dir.join(format!("{stem}.response.json"));
        let tmp = dir.join(format!(".{stem}.response.json.tmp"));
        if std::fs::write(&tmp, format!("{resp}\n")).is_ok() {
            let _ = std::fs::rename(&tmp, &out);
        }
    }
}

fn watcher_loop(dir: PathBuf, svc: Arc<Service>, stopping: Arc<AtomicBool>) {
    while !should_stop(&svc, &stopping) {
        watch_pass(&dir, &svc);
        std::thread::sleep(Duration::from_millis(200));
    }
    // One final pass so requests dropped just before shutdown still get
    // answered (likely with a drain refusal) rather than ignored.
    watch_pass(&dir, &svc);
}

/// Runs the daemon until a signal or in-band `shutdown` request, then
/// drains and returns a one-line summary. Errors are configuration
/// problems (nothing to listen on, bind failures).
pub fn run_server(cfg: ServeConfig, eps: &Endpoints) -> Result<String, String> {
    if eps.tcp.is_none() && eps.unix.is_none() && eps.watch.is_none() {
        return Err("pas serve: no endpoint; give --listen, --socket or --watch".to_string());
    }
    install_signal_handlers();
    let svc = Arc::new(Service::start(cfg));
    let stopping = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();

    if let Some(addr) = &eps.tcp {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("pas serve: binding {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        log::emit(
            log::Level::Info,
            "serve.net",
            "listening",
            vec![
                ("transport", Value::Str("tcp".to_string())),
                ("addr", Value::Str(local.clone())),
            ],
        );
        let svc = Arc::clone(&svc);
        let stopping = Arc::clone(&stopping);
        joins.push(std::thread::spawn(move || {
            tcp_listener_loop(listener, svc, stopping)
        }));
    }
    #[cfg(unix)]
    if let Some(path) = &eps.unix {
        let _ = std::fs::remove_file(path); // stale socket from a crash
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("pas serve: binding {path}: {e}"))?;
        log::emit(
            log::Level::Info,
            "serve.net",
            "listening",
            vec![
                ("transport", Value::Str("unix".to_string())),
                ("addr", Value::Str(path.clone())),
            ],
        );
        let svc = Arc::clone(&svc);
        let stopping = Arc::clone(&stopping);
        joins.push(std::thread::spawn(move || {
            unix_listener_loop(listener, svc, stopping)
        }));
    }
    #[cfg(not(unix))]
    if eps.unix.is_some() {
        return Err("pas serve: --socket is only supported on Unix".to_string());
    }
    if let Some(dir) = &eps.watch {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("pas serve: creating watch dir {}: {e}", dir.display()))?;
        log::emit(
            log::Level::Info,
            "serve.net",
            "watching",
            vec![("dir", Value::Str(dir.display().to_string()))],
        );
        let svc = Arc::clone(&svc);
        let stopping = Arc::clone(&stopping);
        joins.push(std::thread::spawn(move || watcher_loop(dir, svc, stopping)));
    }

    while !term_requested() && !svc.is_shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    stopping.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let abandoned = svc.shutdown();
    if let Some(path) = &eps.unix {
        let _ = std::fs::remove_file(path);
    }
    let summary = format!(
        "pas serve: drained; requests={} ok={} errors={} shed={} timeouts={} panics={} abandoned={}",
        svc.counter("serve.requests"),
        svc.counter("serve.responses.ok"),
        svc.counter("serve.responses.error"),
        svc.counter("serve.shed"),
        svc.counter("serve.timeouts"),
        svc.counter("serve.panics"),
        abandoned,
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn start_tcp_service() -> (Arc<Service>, std::net::SocketAddr, Arc<AtomicBool>) {
        let svc = Arc::new(Service::start(ServeConfig {
            workers: 2,
            queue_cap: 8,
            debug_faults: true,
            ..ServeConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stopping = Arc::new(AtomicBool::new(false));
        {
            let svc = Arc::clone(&svc);
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || tcp_listener_loop(listener, svc, stopping));
        }
        (svc, addr, stopping)
    }

    #[test]
    fn tcp_round_trip_including_malformed_lines() {
        reset_term_flag();
        let (svc, addr, stopping) = start_tcp_service();
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;

        stream
            .write_all(b"{\"id\":\"a\",\"kind\":\"run\",\"workload\":\"synthetic\"}\nnot json\n")
            .expect("write");
        let mut l1 = String::new();
        reader.read_line(&mut l1).expect("ok line");
        assert!(l1.contains("\"status\":\"ok\""), "{l1}");
        let mut l2 = String::new();
        reader.read_line(&mut l2).expect("error line");
        assert!(l2.contains("PAS0501"), "{l2}");

        stopping.store(true, Ordering::SeqCst);
        assert_eq!(svc.shutdown(), 0);
    }

    #[test]
    fn drop_directory_requests_get_response_files() {
        reset_term_flag();
        let dir = std::env::temp_dir().join(format!("pas-serve-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let svc = Arc::new(Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }));
        std::fs::write(
            dir.join("req1.json"),
            "{\"id\":\"d1\",\"kind\":\"status\"}\n",
        )
        .expect("drop request");
        watch_pass(&dir, &svc);
        let resp = std::fs::read_to_string(dir.join("req1.response.json")).expect("response file");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        assert!(!dir.join("req1.json").exists(), "request file is consumed");
        assert_eq!(svc.shutdown(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
