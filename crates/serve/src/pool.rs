//! The fault-isolated worker pool behind the service.
//!
//! A fixed set of worker threads drains the bounded queue. Each job runs
//! under [`std::panic::catch_unwind`], so a panicking handler produces a
//! structured `PAS0506` response and the worker keeps serving — the
//! daemon never dies with a request. Cancellation is cooperative: the
//! submitter flips the job's `cancelled` flag on deadline expiry, and
//! workers skip cancelled jobs still sitting in the queue.

use crate::flight::FlightRecorder;
use crate::proto::{error_response, ok_response, panic_response, Rejection, ReqKind, Request};
use crate::queue::{Bounded, PushError};
use crate::reqtrace::{Timeline, TimelineSpan};
use crate::telemetry::{LatencyStore, SeriesKey};
use pas_obs::profile::names;
use pas_obs::{log, MetricsRegistry};
use serde::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-request execution context handed to the handler: the cooperative
/// cancellation flag plus the request's trace timeline, when one is
/// active.
#[derive(Clone)]
pub struct JobCtx {
    /// Set by the submitter when the request's deadline expires; workers
    /// and handlers poll it and abandon work cooperatively.
    pub cancelled: Arc<AtomicBool>,
    /// The request's span timeline (`"trace": true` or `--trace-out`);
    /// `None` when the request is untraced.
    pub timeline: Option<Arc<Timeline>>,
}

impl JobCtx {
    /// A context with a fresh cancellation flag and no timeline — the
    /// common untraced case (and the test default).
    pub fn detached() -> Self {
        JobCtx {
            cancelled: Arc::new(AtomicBool::new(false)),
            timeline: None,
        }
    }

    /// Opens a timeline span, when a timeline is active. Bind the result
    /// (`let _s = ctx.span(...)`) so the guard lives across the work.
    pub fn span(&self, name: &'static str) -> Option<TimelineSpan<'_>> {
        self.timeline.as_deref().map(|tl| tl.span(name))
    }
}

/// One unit of queued work: the parsed request, its execution context,
/// and the channel the single-line response goes back on.
pub struct Job {
    /// The validated request.
    pub req: Request,
    /// The raw request line as received — embedded verbatim in crash
    /// reports so the offending input is reproducible.
    pub raw: String,
    /// Cancellation flag + optional trace timeline.
    pub ctx: JobCtx,
    /// Where the response line is delivered. A closed receiver (the
    /// submitter already timed out) is not an error.
    pub reply: mpsc::Sender<String>,
    /// When the job was pushed onto the queue; the dequeuing worker
    /// records the difference as `serve.latency.<kind>.queue`.
    pub enqueued: Instant,
}

/// Why a submission was refused at the queue boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed with retry-after (`PAS0504`).
    QueueFull {
        /// Depth at refusal time, for the shed response.
        depth: usize,
    },
    /// The pool is draining for shutdown.
    ShuttingDown,
}

/// The dispatch seam: anything that accepts jobs. The production
/// implementation is [`WorkerPool`]; tests substitute doubles to
/// exercise the protocol layer without threads.
pub trait Executor: Send + Sync {
    /// Enqueues a job, returning the queue depth after the push.
    fn submit(&self, job: Job) -> Result<usize, SubmitError>;
}

/// The handler a worker runs for each job. Returns the response body on
/// success or a structured [`Rejection`]; panics are contained by the
/// pool.
pub type Handler = Arc<dyn Fn(&Request, &JobCtx) -> Result<Value, Rejection> + Send + Sync>;

/// A fixed pool of workers over a bounded queue.
pub struct WorkerPool {
    queue: Arc<Bounded<Job>>,
    busy: Arc<AtomicUsize>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads draining a queue of capacity `queue_cap`.
    /// Panic containment and cancellation skips are tallied into
    /// `metrics` (`serve.panics`, `serve.worker_recoveries`,
    /// `serve.cancelled_in_queue`, `serve.responses.*`); queue-wait and
    /// execution latencies are recorded into `latencies`; lifecycle
    /// events (dispatch, panic) land in `flight`, which dumps a crash
    /// report on `PAS0506`.
    pub fn new(
        workers: usize,
        queue_cap: usize,
        metrics: Arc<Mutex<MetricsRegistry>>,
        latencies: Arc<LatencyStore>,
        flight: Arc<FlightRecorder>,
        handler: Handler,
    ) -> Self {
        let queue = Arc::new(Bounded::new(queue_cap));
        let busy = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let queue = Arc::clone(&queue);
            let busy = Arc::clone(&busy);
            let metrics = Arc::clone(&metrics);
            let latencies = Arc::clone(&latencies);
            let flight = Arc::clone(&flight);
            let handler = Arc::clone(&handler);
            let h = std::thread::Builder::new()
                .name(format!("pas-serve-worker-{i}"))
                .spawn(move || worker_loop(&queue, &busy, &metrics, &latencies, &flight, &handler))
                .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"));
            handles.push(h);
        }
        WorkerPool {
            queue,
            busy,
            handles: Mutex::new(handles),
        }
    }

    /// Current queue depth (the `serve.queue_depth` gauge).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Workers currently executing a job.
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::SeqCst)
    }

    /// Closes the queue and waits for in-flight work to drain, up to
    /// `deadline`. Returns the number of workers abandoned mid-job (0 on
    /// a clean drain); abandoned threads are detached, not killed.
    pub fn shutdown(&self, deadline: Duration) -> usize {
        self.queue.close();
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            if self.busy.load(Ordering::SeqCst) == 0 && self.queue.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let abandoned = self.busy.load(Ordering::SeqCst);
        if abandoned == 0 {
            let handles =
                std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
            for h in handles {
                let _ = h.join();
            }
        }
        abandoned
    }
}

impl Executor for WorkerPool {
    fn submit(&self, job: Job) -> Result<usize, SubmitError> {
        self.queue.try_push(job).map_err(|e| match e {
            PushError::Full(depth) => SubmitError::QueueFull { depth },
            PushError::Closed => SubmitError::ShuttingDown,
        })
    }
}

/// Records one latency observation, tallying `serve.latency.overflow`
/// when the sample fell beyond the histogram range (it still lands,
/// clamped, in the top bin — but no longer silently).
fn record_latency(
    latencies: &LatencyStore,
    metrics: &Mutex<MetricsRegistry>,
    key: SeriesKey,
    ms: f64,
) {
    if latencies.record(key, ms) {
        let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.inc("serve.latency.overflow", 1);
    }
}

fn worker_loop(
    queue: &Bounded<Job>,
    busy: &AtomicUsize,
    metrics: &Mutex<MetricsRegistry>,
    latencies: &LatencyStore,
    flight: &FlightRecorder,
    handler: &Handler,
) {
    while let Some(job) = queue.pop() {
        if job.ctx.cancelled.load(Ordering::SeqCst) {
            // The submitter already answered with PAS0505; don't burn a
            // worker on a response nobody is waiting for.
            let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.inc("serve.cancelled_in_queue", 1);
            continue;
        }
        let kind = job.req.kind.name();
        let _corr = log::with_corr(&job.req.id);
        flight.record("dispatch", &job.req.id, kind);
        if let Some(tl) = job.ctx.timeline.as_deref() {
            tl.record_since(names::REQ_QUEUE_WAIT, job.enqueued);
        }
        record_latency(
            latencies,
            metrics,
            SeriesKey::new(kind, "queue"),
            job.enqueued.elapsed().as_secs_f64() * 1e3,
        );
        busy.fetch_add(1, Ordering::SeqCst);
        let exec_span = job.ctx.span(names::REQ_EXEC);
        let exec_t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (handler)(&job.req, &job.ctx)));
        let exec_ms = exec_t0.elapsed().as_secs_f64() * 1e3;
        drop(exec_span);
        busy.fetch_sub(1, Ordering::SeqCst);
        record_latency(latencies, metrics, SeriesKey::new(kind, "exec"), exec_ms);
        if job.req.kind == ReqKind::Plan {
            // The plan body carries its cache outcome; split the exec
            // series so hit (cache fetch) and miss (full re-derivation)
            // latencies don't average into one meaningless number.
            if let Ok(Ok(body)) = &outcome {
                if let Some(Value::Bool(cached)) = body.get("cached") {
                    let split = if *cached { "hit" } else { "miss" };
                    record_latency(
                        latencies,
                        metrics,
                        SeriesKey::with_cache(kind, "exec", split),
                        exec_ms,
                    );
                }
            }
        }
        let (line, counter) = match outcome {
            Ok(Ok(body)) => (
                ok_response(&job.req.id, job.req.kind, body),
                "serve.responses.ok",
            ),
            Ok(Err(rej)) => (error_response(&job.req.id, &rej), "serve.responses.error"),
            Err(payload) => {
                let detail = panic_detail(payload.as_ref());
                {
                    let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
                    m.inc("serve.panics", 1);
                    // catch_unwind recovers the worker in place — the
                    // same accounting slot a respawn would fill.
                    m.inc("serve.worker_recoveries", 1);
                }
                log::emit(
                    log::Level::Error,
                    "serve.pool",
                    "worker panic contained",
                    vec![
                        ("kind", Value::Str(kind.to_string())),
                        ("detail", Value::Str(detail.clone())),
                    ],
                );
                flight.record("panic", &job.req.id, &detail);
                if flight
                    .dump("PAS0506", &job.req.id, &job.raw, metrics)
                    .is_some()
                {
                    let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
                    m.inc("serve.crash_reports", 1);
                }
                (
                    panic_response(&job.req.id, &detail),
                    "serve.responses.panic",
                )
            }
        };
        {
            let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.inc(counter, 1);
        }
        // A dropped receiver means the submitter gave up (deadline); the
        // work is wasted but the worker is fine.
        let _ = job.reply.send(line);
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_request, ReqKind};
    use serde::Value;

    fn pool_with(handler: Handler) -> (WorkerPool, Arc<Mutex<MetricsRegistry>>) {
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let latencies = Arc::new(LatencyStore::new());
        let flight = Arc::new(FlightRecorder::new(64, None));
        let pool = WorkerPool::new(2, 8, Arc::clone(&metrics), latencies, flight, handler);
        (pool, metrics)
    }

    fn job_for(line: &str) -> (Job, mpsc::Receiver<String>) {
        let req = parse_request(line).expect("request parses");
        let (tx, rx) = mpsc::channel();
        (
            Job {
                req,
                raw: line.to_string(),
                ctx: JobCtx::detached(),
                reply: tx,
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn ok_and_error_and_panic_all_answer() {
        let handler: Handler = Arc::new(|req, _| match req.kind {
            ReqKind::DebugPanic => panic!("kaboom"),
            ReqKind::DebugFail => Err(Rejection::bad_param("nope")),
            _ => Ok(Value::Null),
        });
        let (pool, metrics) = pool_with(handler);

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (j1, r1) = job_for(r#"{"id":"ok","kind":"run"}"#);
        let (j2, r2) = job_for(r#"{"id":"bad","kind":"debug-fail"}"#);
        let (j3, r3) = job_for(r#"{"id":"boom","kind":"debug-panic"}"#);
        pool.submit(j1).expect("submit");
        pool.submit(j2).expect("submit");
        pool.submit(j3).expect("submit");
        let t = Duration::from_secs(5);
        let a = r1.recv_timeout(t).expect("ok reply");
        let b = r2.recv_timeout(t).expect("error reply");
        let c = r3.recv_timeout(t).expect("panic reply");
        std::panic::set_hook(prev);

        assert!(a.contains("\"status\":\"ok\""), "{a}");
        assert!(b.contains("PAS0503"), "{b}");
        assert!(c.contains("PAS0506") && c.contains("kaboom"), "{c}");
        let m = metrics.lock().expect("metrics");
        assert_eq!(m.counter("serve.panics"), 1);
        assert_eq!(m.counter("serve.worker_recoveries"), 1);
        assert_eq!(m.counter("serve.responses.ok"), 1);
        assert_eq!(m.counter("serve.responses.error"), 1);
        assert_eq!(m.counter("serve.responses.panic"), 1);
        assert_eq!(pool.shutdown(Duration::from_secs(5)), 0);
    }

    #[test]
    fn workers_record_queue_and_exec_latencies() {
        let handler: Handler = Arc::new(|_, _| Ok(Value::Null));
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let latencies = Arc::new(LatencyStore::new());
        let flight = Arc::new(FlightRecorder::new(64, None));
        let pool = WorkerPool::new(1, 8, metrics, Arc::clone(&latencies), flight, handler);
        let (job, rx) = job_for(r#"{"id":"l","kind":"run"}"#);
        pool.submit(job).expect("submit");
        rx.recv_timeout(Duration::from_secs(5)).expect("reply");
        assert_eq!(pool.shutdown(Duration::from_secs(5)), 0);
        let snaps = latencies.snapshot();
        for stage in ["queue", "exec"] {
            let (_, s) = snaps
                .iter()
                .find(|(k, _)| *k == SeriesKey::new("run", stage))
                .expect("series exists");
            assert_eq!(s.count, 1, "{stage}");
        }
    }

    #[test]
    fn cancelled_jobs_are_skipped_in_queue() {
        let handler: Handler = Arc::new(|_, _| Ok(Value::Null));
        let (pool, metrics) = pool_with(handler);
        let (job, rx) = job_for(r#"{"id":"late","kind":"run"}"#);
        job.ctx.cancelled.store(true, Ordering::SeqCst);
        pool.submit(job).expect("submit");
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        assert_eq!(pool.shutdown(Duration::from_secs(5)), 0);
        let m = metrics.lock().expect("metrics");
        assert_eq!(m.counter("serve.cancelled_in_queue"), 1);
        assert_eq!(m.counter("serve.responses.ok"), 0);
    }

    #[test]
    fn shed_when_queue_full() {
        // One worker parked on a slow job + capacity-1 queue: the third
        // submission must shed, not block or queue unboundedly.
        let handler: Handler = Arc::new(|req, ctx| {
            if req.kind == ReqKind::DebugSleep {
                while !ctx.cancelled.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Ok(Value::Null)
        });
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let latencies = Arc::new(LatencyStore::new());
        let flight = Arc::new(FlightRecorder::new(64, None));
        let pool = WorkerPool::new(1, 1, Arc::clone(&metrics), latencies, flight, handler);
        let (j1, _r1) = job_for(r#"{"id":"slow","kind":"debug-sleep","sleep_ms":1000}"#);
        let stop = Arc::clone(&j1.ctx.cancelled);
        pool.submit(j1).expect("submit slow");
        // Wait for the worker to pick the slow job up.
        let t0 = Instant::now();
        while pool.busy_workers() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (j2, _r2) = job_for(r#"{"id":"q","kind":"run"}"#);
        pool.submit(j2).expect("fills queue");
        let (j3, _r3) = job_for(r#"{"id":"shed","kind":"run"}"#);
        assert_eq!(
            pool.submit(j3).expect_err("must shed"),
            SubmitError::QueueFull { depth: 1 }
        );
        stop.store(true, Ordering::SeqCst);
        assert_eq!(pool.shutdown(Duration::from_secs(5)), 0);
    }
}
