//! Request telemetry: per-kind latency histograms and the Prometheus
//! text exposition behind the `metrics` request kind.
//!
//! Latencies are recorded in three stages per request kind — `queue`
//! (wait in the bounded queue), `exec` (handler wall time) and `total`
//! (end-to-end, ingest to response) — on fixed-bin [`Histogram`]s so the
//! store stays bounded no matter how long the daemon runs. `plan`
//! execution is additionally split by cache outcome (`hit`/`miss`),
//! because a cached plan and a full Theorem-1 re-derivation are
//! different operations that happen to share a request kind.
//!
//! The exposition contract is documented in `docs/observability.md` and
//! policed by `tests/docs_sync.rs`.

use pas_obs::MetricsRegistry;
use pas_stats::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Lower edge of every latency histogram (ms).
const LATENCY_LO_MS: f64 = 0.0;
/// Upper edge of every latency histogram (ms); slower observations clamp
/// into the top bin rather than being dropped, and [`LatencyStore::record`]
/// reports them so callers can tally `serve.latency.overflow`.
const LATENCY_HI_MS: f64 = 10_000.0;
/// Bin count: 1 ms resolution across the range.
const LATENCY_BINS: usize = 10_000;

/// Lifecycle counters pre-seeded at zero when the service starts, so the
/// health snapshot and the exposition always report the full set — an
/// operator can tell "never shed" from "not instrumented".
pub const PRE_SEEDED_COUNTERS: &[&str] = &[
    "serve.requests",
    "serve.responses.ok",
    "serve.responses.error",
    "serve.responses.shed",
    "serve.responses.timeout",
    "serve.responses.panic",
    "serve.shed",
    "serve.timeouts",
    "serve.panics",
    "serve.worker_recoveries",
    "serve.cancelled_in_queue",
    "serve.io_retries",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.stale_served",
    "serve.request_ids.generated",
    "serve.request_ids.client",
    "serve.latency.overflow",
    "serve.crash_reports",
];

/// Request kinds whose latency series are pre-seeded at zero. Debug
/// kinds get series on demand but are not part of the stable surface.
pub const LATENCY_KINDS: &[&str] = &["plan", "check", "run", "trace", "montecarlo"];

/// The pipeline stages recorded per kind: `queue` is time spent waiting
/// in the bounded queue, `exec` is handler wall time on a worker, and
/// `total` is end-to-end from ingest to response.
pub const LATENCY_STAGES: &[&str] = &["queue", "exec", "total"];

/// Identifies one latency series: request kind, pipeline stage, and the
/// optional cache-outcome split (`plan` execution only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Wire name of the request kind (`plan`, `check`, ...).
    pub kind: &'static str,
    /// One of [`LATENCY_STAGES`].
    pub stage: &'static str,
    /// `Some("hit")` / `Some("miss")` for the plan-exec cache split.
    pub cache: Option<&'static str>,
}

impl SeriesKey {
    /// A plain kind/stage series.
    pub fn new(kind: &'static str, stage: &'static str) -> Self {
        SeriesKey {
            kind,
            stage,
            cache: None,
        }
    }

    /// A cache-split series (plan execution by hit/miss).
    pub fn with_cache(kind: &'static str, stage: &'static str, cache: &'static str) -> Self {
        SeriesKey {
            kind,
            stage,
            cache: Some(cache),
        }
    }

    /// The dotted metric name used in `status` bodies:
    /// `serve.latency.<kind>.<stage>[.<hit|miss>]`.
    pub fn dotted(&self) -> String {
        match self.cache {
            Some(c) => format!("serve.latency.{}.{}.{c}", self.kind, self.stage),
            None => format!("serve.latency.{}.{}", self.kind, self.stage),
        }
    }
}

/// One latency series: a fixed-bin histogram plus the exact running sum
/// (the histogram alone would only bound the sum to bin resolution).
#[derive(Debug, Clone)]
struct LatencySeries {
    hist: Histogram,
    sum_ms: f64,
}

impl LatencySeries {
    fn empty() -> Self {
        LatencySeries {
            hist: Histogram::new(LATENCY_LO_MS, LATENCY_HI_MS, LATENCY_BINS)
                .expect("static latency histogram geometry is valid"),
            sum_ms: 0.0,
        }
    }
}

/// A point-in-time summary of one latency series. Quantiles are `None`
/// while the series is empty (rendered `NaN` in the exposition, the
/// Prometheus convention for observation-free summaries).
#[derive(Debug, Clone, Copy)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observations (ms).
    pub sum_ms: f64,
    /// Median estimate (ms).
    pub p50_ms: Option<f64>,
    /// 95th-percentile estimate (ms).
    pub p95_ms: Option<f64>,
    /// 99th-percentile estimate (ms).
    pub p99_ms: Option<f64>,
}

/// Thread-safe store of per-kind request-latency series.
///
/// The stable surface ([`LATENCY_KINDS`] × [`LATENCY_STAGES`], plus the
/// plan-exec hit/miss split) is pre-seeded at construction; debug kinds
/// create series on first observation.
#[derive(Debug)]
pub struct LatencyStore {
    series: Mutex<BTreeMap<SeriesKey, LatencySeries>>,
}

impl Default for LatencyStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStore {
    /// Creates the store with the stable series pre-seeded at zero.
    pub fn new() -> Self {
        let mut series = BTreeMap::new();
        for kind in LATENCY_KINDS {
            for stage in LATENCY_STAGES {
                series.insert(SeriesKey::new(kind, stage), LatencySeries::empty());
            }
        }
        for cache in ["hit", "miss"] {
            series.insert(
                SeriesKey::with_cache("plan", "exec", cache),
                LatencySeries::empty(),
            );
        }
        LatencyStore {
            series: Mutex::new(series),
        }
    }

    /// Records one observation (ms; clamped into the histogram range).
    /// Returns `true` when the sample fell outside the range — callers
    /// increment `serve.latency.overflow` so clamping is never silent.
    pub fn record(&self, key: SeriesKey, ms: f64) -> bool {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let s = series.entry(key).or_insert_with(LatencySeries::empty);
        let overflow = s.hist.out_of_range(ms);
        s.hist.add(ms);
        s.sum_ms += ms;
        overflow
    }

    /// Snapshots every series (sorted by key) with p50/p95/p99.
    pub fn snapshot(&self) -> Vec<(SeriesKey, LatencySnapshot)> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series
            .iter()
            .map(|(key, s)| {
                (
                    *key,
                    LatencySnapshot {
                        count: s.hist.total(),
                        sum_ms: s.sum_ms,
                        p50_ms: s.hist.quantile(0.5),
                        p95_ms: s.hist.quantile(0.95),
                        p99_ms: s.hist.quantile(0.99),
                    },
                )
            })
            .collect()
    }
}

/// Maps a dotted metric name onto the Prometheus identifier charset:
/// every character outside `[a-zA-Z0-9]` becomes `_`
/// (`serve.cache.hits` → `serve_cache_hits`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn fmt_opt_ms(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v}"),
        None => "NaN".to_string(),
    }
}

/// Renders the full `serve.*` metric surface in Prometheus text
/// exposition format (version 0.0.4):
///
/// - every counter and gauge becomes its own family (dotted name mapped
///   onto the Prometheus charset), with exactly one `# HELP` and `# TYPE`
///   line each;
/// - a constant `serve_build_info` gauge carries the crate version and
///   the plan/protocol schema versions as labels (the Prometheus
///   build-info idiom: sample value is always 1);
/// - all latency series share the single summary family `serve_latency`,
///   labelled by `kind`, `stage` and (for the plan-exec split) `cache`,
///   with `quantile="0.5" | "0.95" | "0.99"` sample lines plus
///   `serve_latency_sum` / `serve_latency_count`.
pub fn prometheus_exposition(metrics: &MetricsRegistry, latencies: &LatencyStore) -> String {
    let mut out = String::new();
    for (name, v) in metrics.counters().filter(|(n, _)| n.starts_with("serve.")) {
        let fam = prom_name(name);
        let _ = writeln!(out, "# HELP {fam} Counter {name}.");
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {v}");
    }
    for (name, v) in metrics.gauges().filter(|(n, _)| n.starts_with("serve.")) {
        let fam = prom_name(name);
        let _ = writeln!(out, "# HELP {fam} Gauge {name}.");
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {v}");
    }
    let _ = writeln!(
        out,
        "# HELP serve_build_info Build and schema version information."
    );
    let _ = writeln!(out, "# TYPE serve_build_info gauge");
    let _ = writeln!(
        out,
        "serve_build_info{{version=\"{}\",plan_schema=\"{}\",proto=\"{}\"}} 1",
        env!("CARGO_PKG_VERSION"),
        pas_core::PLAN_SCHEMA_VERSION,
        crate::proto::PROTO_VERSION
    );
    let _ = writeln!(out, "# TYPE serve_latency summary");
    for (key, snap) in latencies.snapshot() {
        let labels = match key.cache {
            Some(c) => format!(
                "kind=\"{}\",stage=\"{}\",cache=\"{c}\"",
                key.kind, key.stage
            ),
            None => format!("kind=\"{}\",stage=\"{}\"", key.kind, key.stage),
        };
        for (q, val) in [
            ("0.5", snap.p50_ms),
            ("0.95", snap.p95_ms),
            ("0.99", snap.p99_ms),
        ] {
            let _ = writeln!(
                out,
                "serve_latency{{{labels},quantile=\"{q}\"}} {}",
                fmt_opt_ms(val)
            );
        }
        let _ = writeln!(out, "serve_latency_sum{{{labels}}} {}", snap.sum_ms);
        let _ = writeln!(out, "serve_latency_count{{{labels}}} {}", snap.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn store_pre_seeds_the_stable_surface_at_zero() {
        let store = LatencyStore::new();
        let snaps = store.snapshot();
        // 4 kinds × 3 stages + plan-exec hit/miss.
        assert_eq!(snaps.len(), LATENCY_KINDS.len() * LATENCY_STAGES.len() + 2);
        for (key, snap) in &snaps {
            assert_eq!(snap.count, 0, "{}", key.dotted());
            assert!(snap.p50_ms.is_none(), "{}", key.dotted());
        }
        let dotted: BTreeSet<String> = snaps.iter().map(|(k, _)| k.dotted()).collect();
        assert!(dotted.contains("serve.latency.plan.exec.hit"));
        assert!(dotted.contains("serve.latency.trace.total"));
    }

    #[test]
    fn recorded_latencies_surface_in_quantiles_and_sums() {
        let store = LatencyStore::new();
        let key = SeriesKey::new("plan", "exec");
        for ms in [1.0, 2.0, 3.0, 4.0, 100.0] {
            store.record(key, ms);
        }
        let snaps = store.snapshot();
        let (_, snap) = snaps
            .iter()
            .find(|(k, _)| *k == key)
            .expect("series exists");
        assert_eq!(snap.count, 5);
        assert!((snap.sum_ms - 110.0).abs() < 1e-9);
        let p50 = snap.p50_ms.expect("non-empty");
        let p99 = snap.p99_ms.expect("non-empty");
        assert!(p50 < 10.0, "p50={p50}");
        assert!(p99 >= p50, "p99={p99} p50={p50}");
    }

    #[test]
    fn unknown_series_are_created_on_demand() {
        let store = LatencyStore::new();
        store.record(SeriesKey::new("debug-sleep", "exec"), 7.0);
        let snaps = store.snapshot();
        assert!(snaps
            .iter()
            .any(|(k, s)| k.dotted() == "serve.latency.debug-sleep.exec" && s.count == 1));
    }

    #[test]
    fn exposition_has_one_type_line_per_family() {
        let mut m = MetricsRegistry::new();
        for name in PRE_SEEDED_COUNTERS {
            m.inc(name, 0);
        }
        m.inc("serve.requests", 3);
        m.set_gauge("serve.queue_depth", 2.0);
        let store = LatencyStore::new();
        store.record(SeriesKey::new("run", "total"), 5.0);
        let text = prometheus_exposition(&m, &store);

        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let unique: BTreeSet<&str> = type_lines.iter().copied().collect();
        assert_eq!(type_lines.len(), unique.len(), "duplicate # TYPE family");
        assert!(text.contains("# TYPE serve_requests counter"), "{text}");
        assert!(text.contains("serve_requests 3"), "{text}");
        assert!(text.contains("# TYPE serve_queue_depth gauge"), "{text}");
        assert!(text.contains("# TYPE serve_latency summary"), "{text}");
        assert!(
            text.contains("serve_latency_count{kind=\"run\",stage=\"total\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency{kind=\"plan\",stage=\"queue\",quantile=\"0.5\"} NaN"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_count{kind=\"plan\",stage=\"exec\",cache=\"hit\"} 0"),
            "{text}"
        );
        // Dotted names never leak into sample lines.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap_or("");
            assert!(!name.contains('.'), "unmangled name in: {line}");
        }
    }

    #[test]
    fn pre_seeded_catalog_matches_the_legacy_fifteen_plus_request_ids() {
        assert_eq!(PRE_SEEDED_COUNTERS.len(), 19);
        assert!(PRE_SEEDED_COUNTERS.contains(&"serve.request_ids.generated"));
        assert!(PRE_SEEDED_COUNTERS.contains(&"serve.request_ids.client"));
        assert!(PRE_SEEDED_COUNTERS.contains(&"serve.latency.overflow"));
        assert!(PRE_SEEDED_COUNTERS.contains(&"serve.crash_reports"));
        let unique: BTreeSet<&str> = PRE_SEEDED_COUNTERS.iter().copied().collect();
        assert_eq!(unique.len(), PRE_SEEDED_COUNTERS.len());
    }

    #[test]
    fn record_reports_out_of_range_samples() {
        let store = LatencyStore::new();
        let key = SeriesKey::new("run", "exec");
        assert!(!store.record(key, 5.0));
        assert!(store.record(key, 10_001.0));
        assert!(store.record(key, -1.0));
        // Overflowing samples still land (clamped) in the series.
        let snaps = store.snapshot();
        let (_, snap) = snaps
            .iter()
            .find(|(k, _)| *k == key)
            .expect("series exists");
        assert_eq!(snap.count, 3);
    }

    #[test]
    fn exposition_carries_the_build_info_gauge() {
        let m = MetricsRegistry::new();
        let store = LatencyStore::new();
        let text = prometheus_exposition(&m, &store);
        assert!(text.contains("# TYPE serve_build_info gauge"), "{text}");
        let line = text
            .lines()
            .find(|l| l.starts_with("serve_build_info{"))
            .expect("build info sample");
        assert!(line.contains(concat!("version=\"", env!("CARGO_PKG_VERSION"), "\"")));
        assert!(line.contains("plan_schema=\"1\""), "{line}");
        assert!(line.contains("proto=\"1\""), "{line}");
        assert!(line.ends_with("} 1"), "{line}");
    }
}
