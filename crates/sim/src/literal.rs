//! A *literal* interpreter of the paper's Figure-2 algorithm.
//!
//! [`Simulator`](crate::Simulator) computes the schedule with closed-form
//! max/plus dispatch expressions. This module implements the same
//! semantics the way the paper presents them — processor agents around a
//! shared ready queue:
//!
//! * a global Ready-Q ordered by canonical execution order;
//! * a next-expected-order counter (`NEO`); a processor whose head-of-queue
//!   task is not the next expected one goes to sleep (`wait()`) and is
//!   signalled when the expected task becomes ready;
//! * unfinished-predecessor counters (`UP`) decremented on completion;
//! * dummy AND nodes handled instantly; OR nodes firing at section drain
//!   and enqueueing the selected branch;
//!
//! driven by an explicit event queue. It exists for *differential
//! testing*: `tests/differential.rs` checks that this agent-level
//! simulation and the fast engine produce identical schedules, which
//! validates the engine's algebraic shortcuts against the paper's own
//! formulation. It is O(n log n) with much larger constants — use the fast
//! engine for experiments.

// Same invariant as the fast engine: per-node vectors (`UP` counters,
// ready flags, section populations) are sized to `g.len()` up front and
// indexed by validated `NodeId`s, so indexing cannot go out of bounds.
#![allow(clippy::indexing_slicing)]

use crate::engine::{DispatchOrder, SimConfig};
use crate::error::SimError;
use crate::policy::{DispatchCtx, Policy};
use crate::realization::Realization;
use andor_graph::{AndOrGraph, NodeId, SectionGraph, SectionId};
use dvfs_power::{EnergyMeter, OperatingPoint, ProcessorModel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Outcome of a literal run (subset of the fast engine's result — enough
/// for differential comparison).
#[derive(Debug, Clone)]
pub struct LiteralResult {
    /// Application finish time (ms).
    pub finish_time: f64,
    /// Aggregated energy.
    pub energy: EnergyMeter,
    /// Dispatch log: `(node, proc, start)` in dispatch order.
    pub dispatches: Vec<(NodeId, usize, f64)>,
}

/// Time-ordered event. Ties break deterministically by the discriminant
/// order below, then payload.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A node finished executing.
    Finished(NodeId),
    /// A processor finished its task and returns to the scheduler loop.
    ProcIdle(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Timed {
    time: f64,
    seq: u64,
    event: Event,
}

impl Eq for Timed {}

impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs one realization through the agent-level Figure-2 interpreter.
///
/// # Errors
///
/// Returns a [`SimError`] when the realization leaves a reachable OR
/// unresolved, an OR branch has no section, or the interpreter stalls
/// (dispatch order inconsistent with the graph).
pub fn run_literal(
    g: &AndOrGraph,
    sections: &SectionGraph,
    order: &DispatchOrder,
    model: &ProcessorModel,
    cfg: &SimConfig,
    policy: &mut dyn Policy,
    real: &Realization,
) -> Result<LiteralResult, SimError> {
    let m = cfg.num_procs;
    assert!(m > 0);
    policy.begin_run();

    let mut finish: Vec<Option<f64>> = vec![None; g.len()];
    let mut meters = vec![EnergyMeter::new(); m];
    let mut point: Vec<OperatingPoint> = vec![model.max_point(); m];
    // Idle bookkeeping: processors waiting at the queue, ordered by how
    // long they have been idle (then index) — the paper's `wait()` set.
    let mut idle_since: Vec<Option<f64>> = vec![Some(0.0); m];

    // Per-section dispatch state.
    let mut cur: SectionId = sections.root();
    // Index into the current section's order (the paper's NEO counter).
    let mut neo: usize;
    let mut section_left; // unfinished nodes in the current section
                          // Ready flags: node is ready when all its in-scope preds finished.
    let mut up: Vec<usize> = vec![usize::MAX; g.len()];
    let mut ready_q: VecDeque<NodeId> = VecDeque::new();

    let mut events: BinaryHeap<Reverse<Timed>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0.0_f64;
    let mut dispatches = Vec::new();

    // Activates a section: initializes UP counters for its nodes (counting
    // only predecessors that have not already finished) and enqueues the
    // initially ready ones in canonical order.
    macro_rules! activate_section {
        ($sec:expr) => {{
            let list = &order.per_section[$sec.index()];
            section_left = list.len();
            neo = 0;
            ready_q.clear();
            for &n in list {
                let pending = g
                    .node(n)
                    .preds
                    .iter()
                    .filter(|p| finish[p.index()].is_none())
                    .count();
                up[n.index()] = pending;
            }
            for &n in list {
                if up[n.index()] == 0 {
                    ready_q.push_back(n);
                }
            }
        }};
    }

    activate_section!(cur);

    loop {
        // Dispatch loop: idle processors (longest-idle first) repeatedly
        // examine the queue head, exactly like Figure 2's steps 1–5.
        #[allow(clippy::while_let_loop)] // multiple distinct break reasons below
        loop {
            // Step 1-2: the head must exist and be the next expected task.
            let Some(&head) = ready_q.front() else { break };
            let expected = order.per_section[cur.index()].get(neo).copied();
            if expected != Some(head) {
                // Not the next expected order: processors sleep (step 3).
                break;
            }
            if !g.node(head).kind.is_computation() {
                // Dummy AND node: handled instantly by the scheduler pass
                // (steps 6); costs no processor time.
                ready_q.pop_front();
                neo += 1;
                finish[head.index()] = Some(now);
                section_left -= 1;
                dispatches.push((head, usize::MAX, now));
                push_successors(
                    g,
                    head,
                    &mut up,
                    &finish,
                    &order.per_section[cur.index()],
                    &mut ready_q,
                );
                continue;
            }
            // A computation task needs an idle processor.
            let Some(p) = idle_since
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.map(|t| (t, i)))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, i)| i)
            else {
                break; // everyone busy: wait for a completion event
            };
            // Step 4-5: dequeue, compute the new speed, execute.
            ready_q.pop_front();
            neo += 1;
            idle_since[p] = None;
            let ctx = DispatchCtx {
                now,
                current_point: point[p],
                wcet: g.node(head).kind.wcet(),
            };
            let decision = policy.speed_for(head, &ctx);
            let rho = cfg.static_fraction;
            let mut t = now;
            if decision.ran_pmp {
                let dt = cfg
                    .overheads
                    .compute_time_ms(point[p].speed, model.max_freq_mhz());
                meters[p].add_busy(point[p].power + rho, dt);
                t += dt;
            }
            if (decision.point.speed - point[p].speed).abs() > 1e-12 {
                let dt = cfg.overheads.transition_time_ms;
                meters[p].add_transition(point[p].power.max(decision.point.power) + rho, dt);
                t += dt;
                point[p] = decision.point;
            }
            let exec = real.actual[head.index()] / point[p].speed;
            meters[p].add_busy(point[p].power + rho, exec);
            let end = t + exec;
            dispatches.push((head, p, now));
            seq += 1;
            events.push(Reverse(Timed {
                time: end,
                seq,
                event: Event::Finished(head),
            }));
            seq += 1;
            events.push(Reverse(Timed {
                time: end,
                seq,
                event: Event::ProcIdle(p),
            }));
        }

        // Section drained? Fire the OR and activate the chosen branch.
        if section_left == 0 {
            let Some(or) = sections.section(cur).exit_or else {
                break;
            };
            finish[or.index()] = Some(now);
            if g.node(or).succs.is_empty() {
                break;
            }
            let k = real
                .scenario
                .choice_for(or)
                .ok_or_else(|| SimError::UnresolvedOr {
                    or: g.node(or).name.clone(),
                })?;
            policy.on_or_fired(or, k, now);
            cur = sections
                .branch_section(or, k)
                .ok_or_else(|| SimError::MissingBranchSection {
                    or: g.node(or).name.clone(),
                    branch: k,
                })?;
            activate_section!(cur);
            continue;
        }

        // Advance time to the next event.
        let Some(Reverse(ev)) = events.pop() else {
            return Err(SimError::Stalled);
        };
        now = ev.time;
        match ev.event {
            Event::Finished(n) => {
                finish[n.index()] = Some(now);
                section_left -= 1;
                push_successors(
                    g,
                    n,
                    &mut up,
                    &finish,
                    &order.per_section[cur.index()],
                    &mut ready_q,
                );
            }
            Event::ProcIdle(p) => {
                idle_since[p] = Some(now);
            }
        }
    }

    let finish_time = finish.iter().filter_map(|f| *f).fold(0.0_f64, f64::max);
    let horizon = finish_time.max(cfg.deadline);
    let mut energy = EnergyMeter::new();
    for meter in &mut meters {
        let idle = horizon - meter.busy_time() - meter.transition_time();
        meter.add_idle(cfg.idle_fraction, idle.max(0.0));
        energy.merge(meter);
    }
    Ok(LiteralResult {
        finish_time,
        energy,
        dispatches,
    })
}

/// Decrements `UP` for the in-section successors of `n` and enqueues the
/// newly ready ones in canonical order (the queue stays sorted because the
/// scheduler only ever consumes the next expected order).
fn push_successors(
    g: &AndOrGraph,
    n: NodeId,
    up: &mut [usize],
    finish: &[Option<f64>],
    section_order: &[NodeId],
    ready_q: &mut VecDeque<NodeId>,
) {
    let _ = finish;
    for &s in &g.node(n).succs {
        if g.node(s).kind.is_or() {
            continue; // OR firing is handled at section drain
        }
        if up[s.index()] == usize::MAX {
            continue; // not in an activated section yet
        }
        if up[s.index()] == 0 {
            continue;
        }
        up[s.index()] -= 1;
        if up[s.index()] == 0 {
            // Insert in canonical-order position.
            let pos_of = |x: NodeId| {
                section_order
                    .iter()
                    .position(|&y| y == x)
                    .unwrap_or(usize::MAX)
            };
            let rank = pos_of(s);
            let at = ready_q
                .iter()
                .position(|&q| pos_of(q) > rank)
                .unwrap_or(ready_q.len());
            ready_q.insert(at, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::policy::MaxSpeed;
    use crate::realization::ExecTimeModel;
    use andor_graph::Segment;
    use dvfs_power::Overheads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(m: usize, d: f64) -> SimConfig {
        SimConfig {
            num_procs: m,
            deadline: d,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: false,
        }
    }

    #[test]
    fn literal_matches_engine_on_fixture() {
        let g = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::par([
                Segment::task("B", 6.0, 3.0),
                Segment::task("C", 2.0, 1.0),
                Segment::task("D", 5.0, 2.0),
            ]),
            Segment::branch([
                (0.5, Segment::task("E", 7.0, 4.0)),
                (0.5, Segment::task("F", 3.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let config = cfg(2, 100.0);
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let real = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
            let fast = sim.run(&mut MaxSpeed, &real).expect("engine run succeeds");
            let lit = run_literal(&g, &sg, &order, &model, &config, &mut MaxSpeed, &real)
                .expect("literal run succeeds");
            assert!(
                (fast.finish_time - lit.finish_time).abs() < 1e-9,
                "finish: {} vs {}",
                fast.finish_time,
                lit.finish_time
            );
            assert!(
                (fast.total_energy() - lit.energy.total_energy()).abs() < 1e-9,
                "energy: {} vs {}",
                fast.total_energy(),
                lit.energy.total_energy()
            );
        }
    }
}
