//! Periodic (streaming) execution: back-to-back frame instances.
//!
//! The paper's motivating application processes a *stream* of frames, one
//! application instance per period. Its evaluation simulates instances
//! independently (every run starts at the maximum operating point); this
//! module additionally supports the realistic alternative where DVS state
//! *carries over* — the first task of frame `k+1` starts at whatever
//! voltage/frequency frame `k` ended on, which saves a transition whenever
//! adjacent frames want similar speeds.
//!
//! Each frame is scheduled against its own period/deadline, exactly like a
//! single engine run; the deadline guarantee applies per frame, so the
//! stream never drifts (frame `k` always completes by its release point
//! plus the period).

use crate::engine::Simulator;
use crate::error::SimError;
use crate::policy::Policy;
use crate::realization::Realization;
use dvfs_power::{EnergyMeter, OperatingPoint};
use pas_obs::Observer;
use serde::{Deserialize, Serialize};

/// Aggregate outcome of a frame stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamResult {
    /// Frame-local finish time of each instance (ms within its period).
    pub frame_finish: Vec<f64>,
    /// Number of frames that missed their deadline (must stay 0 for the
    /// guaranteed schemes).
    pub misses: u64,
    /// Energy aggregated over all frames and processors.
    pub energy: EnergyMeter,
}

impl StreamResult {
    /// Total energy over the stream.
    pub fn total_energy(&self) -> f64 {
        self.energy.total_energy()
    }

    /// Voltage/speed changes over the stream.
    pub fn speed_changes(&self) -> u64 {
        self.energy.speed_changes()
    }
}

/// Runs one realization per frame, optionally carrying each processor's
/// operating point into the next frame.
///
/// With `carry_state == false` every frame starts at the maximum operating
/// point — the paper's independent-instances assumption. With `true`, the
/// `final_points` of each run seed the next, modelling hardware whose DVS
/// setting persists across frames.
///
/// # Errors
///
/// Returns the first [`SimError`] any frame's run produces (a dispatch
/// order or realization inconsistent with the graph).
pub fn run_stream(
    sim: &Simulator<'_>,
    policy: &mut dyn Policy,
    frames: &[Realization],
    carry_state: bool,
) -> Result<StreamResult, SimError> {
    run_stream_observed(sim, policy, frames, carry_state, None)
}

/// Like [`run_stream`], additionally streaming every frame's schedule
/// actions to `observer` as typed [`pas_obs::SimEvent`]s.
///
/// This is the incremental consumption path: the observer sees each event
/// the moment the engine emits it, across all frames, so a sink such as
/// `pas_obs::JsonlSink` can export an arbitrarily long stream in O(1)
/// event memory (no per-frame `EventLog` is ever built). Event times are
/// frame-local — each frame restarts its clock at its release point, and
/// the `OrBranchTaken` boundaries keep per-section accounting segmentable
/// across frames.
///
/// # Errors
///
/// Returns the first [`SimError`] any frame's run produces.
pub fn run_stream_observed(
    sim: &Simulator<'_>,
    policy: &mut dyn Policy,
    frames: &[Realization],
    carry_state: bool,
    mut observer: Option<&mut dyn Observer>,
) -> Result<StreamResult, SimError> {
    let mut frame_finish = Vec::with_capacity(frames.len());
    let mut misses = 0u64;
    let mut energy = EnergyMeter::new();
    let mut state: Option<Vec<OperatingPoint>> = None;
    for real in frames {
        // Reborrow rather than move so the observer survives the loop. The
        // explicit cast keeps the reborrow's lifetime local to this
        // iteration (a plain `as_deref_mut()` pins it to the outer `'_`).
        let obs = observer.as_mut().map(|o| &mut **o as &mut dyn Observer);
        let res = sim.run_observed(policy, real, state.as_deref(), None, obs)?;
        frame_finish.push(res.finish_time);
        misses += res.missed_deadline as u64;
        energy.merge(&res.energy);
        state = carry_state.then(|| res.final_points.clone());
    }
    Ok(StreamResult {
        frame_finish,
        misses,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DispatchOrder, SimConfig};
    use crate::policy::{DispatchCtx, MaxSpeed, SpeedDecision};
    use crate::realization::ExecTimeModel;
    use andor_graph::{NodeId, SectionGraph, Segment};
    use dvfs_power::{Overheads, ProcessorModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn app() -> (andor_graph::AndOrGraph, SectionGraph) {
        let g = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 6.0, 3.0)),
                (0.5, Segment::task("C", 2.0, 1.0)),
            ]),
        ])
        .lower()
        .expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        (g, sg)
    }

    /// A constant-speed policy on a discrete table, to make carried state
    /// observable (the second frame needs no transition).
    struct HalfSpeed {
        model: ProcessorModel,
    }

    impl Policy for HalfSpeed {
        fn name(&self) -> &str {
            "half"
        }
        fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
            SpeedDecision {
                point: self.model.quantize_up(0.5),
                ran_pmp: false,
            }
        }
    }

    fn frames(g: &andor_graph::AndOrGraph, sg: &SectionGraph, n: usize) -> Vec<Realization> {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n)
            .map(|_| Realization::sample(g, sg, &ExecTimeModel::paper_defaults(), &mut rng))
            .collect()
    }

    fn cfg(d: f64) -> SimConfig {
        SimConfig {
            num_procs: 1,
            deadline: d,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::new(0.0, 0.1).expect("valid overheads"),
            record_trace: false,
        }
    }

    #[test]
    fn carry_state_saves_transitions() {
        let (g, sg) = app();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(40.0));
        let fs = frames(&g, &sg, 8);
        let mut policy = HalfSpeed {
            model: model.clone(),
        };
        let cold = run_stream(&sim, &mut policy, &fs, false).expect("stream runs");
        let warm = run_stream(&sim, &mut policy, &fs, true).expect("stream runs");
        // Cold: one down-transition per frame. Warm: only the first frame
        // transitions; later frames inherit the 0.6 level.
        assert_eq!(cold.speed_changes(), 8);
        assert_eq!(warm.speed_changes(), 1);
        assert!(warm.total_energy() < cold.total_energy());
        assert_eq!(cold.misses, 0);
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.frame_finish.len(), 8);
    }

    #[test]
    fn npm_stream_is_state_invariant() {
        // NPM never leaves the max point, so carrying state is a no-op.
        let (g, sg) = app();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(40.0));
        let fs = frames(&g, &sg, 5);
        let cold = run_stream(&sim, &mut MaxSpeed, &fs, false).expect("stream runs");
        let warm = run_stream(&sim, &mut MaxSpeed, &fs, true).expect("stream runs");
        assert_eq!(cold.total_energy(), warm.total_energy());
        assert_eq!(cold.speed_changes(), 0);
    }

    #[test]
    fn observed_stream_feeds_every_frame_incrementally() {
        use pas_obs::{JsonlSink, SectionedLedger};

        let (g, sg) = app();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(40.0));
        let fs = frames(&g, &sg, 4);
        // One JSONL sink + sectioned ledger over the whole stream.
        let mut sink = JsonlSink::new(Vec::new());
        let mut ledger = SectionedLedger::new();
        let res = {
            let mut fan = pas_obs::Fanout::new().with(&mut sink).with(&mut ledger);
            run_stream_observed(&sim, &mut MaxSpeed, &fs, false, Some(&mut fan))
                .expect("stream runs")
        };
        // The stream total is exactly the event-attributed total, and the
        // per-section slices still partition it.
        ledger
            .verify(res.total_energy())
            .expect("ledger sums over all frames");
        // The streamed dump equals the concatenation of per-frame buffered
        // dumps (same engine, same realizations).
        let mut buffered = String::new();
        for real in &fs {
            let mut log = pas_obs::EventLog::new();
            sim.run_observed(&mut MaxSpeed, real, None, None, Some(&mut log))
                .expect("run succeeds");
            buffered.push_str(&pas_obs::export::to_jsonl(log.events()));
        }
        let streamed = String::from_utf8(sink.finish().expect("vec sink")).unwrap();
        assert_eq!(streamed, buffered);
        // One OrBranchTaken per frame -> root + 4 branch slices.
        assert_eq!(ledger.slices().len(), 1 + fs.len());
    }

    #[test]
    fn stream_energy_is_sum_of_frames() {
        let (g, sg) = app();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(40.0));
        let fs = frames(&g, &sg, 4);
        let total = run_stream(&sim, &mut MaxSpeed, &fs, false)
            .expect("stream runs")
            .total_energy();
        let manual: f64 = fs
            .iter()
            .map(|r| {
                sim.run(&mut MaxSpeed, r)
                    .expect("run succeeds")
                    .total_energy()
            })
            .sum();
        assert!((total - manual).abs() < 1e-9);
    }
}
