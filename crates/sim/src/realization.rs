//! Run realizations: the random draws one Monte-Carlo iteration is made of.
//!
//! A *realization* fixes everything stochastic about one run of the
//! application — which branch every OR node takes and how long every task
//! actually executes (at maximum speed). The engine is then a deterministic
//! function of `(realization, policy)`, so different schemes can be compared
//! on identical draws, which is the paired design behind each averaged
//! point in the paper's figures.

use andor_graph::{AndOrGraph, Scenario, SectionGraph};
use pas_stats::ClippedNormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a task's actual execution time is drawn from its `(wcet, acet)`
/// pair.
///
/// The paper (§5): "the actual execution time of a task follows a normal
/// distribution around" the average case. We use
/// `N(acet, (sd_over_gap · (wcet − acet))²)` clipped to
/// `[floor_fraction·wcet, wcet]`: the spread scales with the available
/// dynamic slack, so `acet == wcet` (α = 1) degenerates to deterministic
/// worst-case execution, exactly as the paper's α-sweep expects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecTimeModel {
    /// Standard deviation as a fraction of `wcet − acet`.
    pub sd_over_gap: f64,
    /// Lower clip bound as a fraction of `wcet` (must be positive — tasks
    /// cannot take zero time).
    pub floor_fraction: f64,
}

impl ExecTimeModel {
    /// The defaults used throughout the evaluation: σ = (wcet−acet)/3,
    /// floor at 1% of WCET.
    pub const fn paper_defaults() -> Self {
        Self {
            sd_over_gap: 1.0 / 3.0,
            floor_fraction: 0.01,
        }
    }

    /// Deterministic worst-case execution (every task takes its WCET).
    pub const fn always_wcet() -> Self {
        Self {
            sd_over_gap: 0.0,
            floor_fraction: 1.0,
        }
    }

    /// Draws an actual execution time for a task.
    ///
    /// Invariant: for any `wcet > 0` the result is in `(0, wcet]` — a
    /// fault-free realization can never overrun the worst case or take
    /// non-positive time, whatever (possibly degenerate) model parameters
    /// or `(wcet, acet)` pair this is called with. Overruns are injected
    /// explicitly through [`crate::fault::FaultPlan`], never sampled.
    pub fn sample<R: Rng + ?Sized>(&self, wcet: f64, acet: f64, rng: &mut R) -> f64 {
        if !wcet.is_finite() || wcet <= 0.0 {
            // No positive budget to sample within (dummy nodes pass 0.0).
            return wcet.max(0.0);
        }
        if self.floor_fraction >= 1.0 {
            return wcet;
        }
        // Clamp degenerate inputs instead of panicking: a NaN or
        // out-of-range acet collapses to the worst case.
        let acet = if acet.is_finite() {
            acet.clamp(0.0, wcet)
        } else {
            wcet
        };
        let sd = self.sd_over_gap * (wcet - acet).max(0.0);
        // Strictly positive floor even when `floor_fraction * wcet`
        // underflows or acet sits at zero.
        let lo = (self.floor_fraction * wcet)
            .min(acet)
            .max(wcet * 1e-12)
            .min(wcet);
        match ClippedNormal::new(acet, sd, lo, wcet) {
            Some(mut dist) => dist.sample(rng).clamp(lo, wcet),
            // Unreachable after the clamps above (sd could only be
            // non-finite via a non-finite sd_over_gap); degrade to the
            // deterministic mean rather than panicking mid-experiment.
            None => acet.clamp(lo, wcet),
        }
    }
}

impl Default for ExecTimeModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// One fully resolved run: OR choices plus per-node actual execution times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Realization {
    /// The OR decisions of this run.
    pub scenario: Scenario,
    /// Actual execution time (ms at maximum speed) per node, indexed by
    /// [`NodeId::index`](andor_graph::NodeId::index). Synchronization nodes
    /// hold `0.0`; inactive nodes hold their sample anyway (unused).
    pub actual: Vec<f64>,
}

impl Realization {
    /// Draws a realization: samples the scenario from the OR branch
    /// probabilities and an actual execution time for every computation
    /// node.
    pub fn sample<R: Rng + ?Sized>(
        g: &AndOrGraph,
        sections: &SectionGraph,
        model: &ExecTimeModel,
        rng: &mut R,
    ) -> Self {
        let scenario = sections.sample_scenario(g, rng);
        let actual = g
            .nodes()
            .iter()
            .map(|n| {
                if n.kind.is_computation() {
                    model.sample(n.kind.wcet(), n.kind.acet(), rng)
                } else {
                    0.0
                }
            })
            .collect();
        Self { scenario, actual }
    }

    /// Re-draws this realization in place, reusing the `actual` buffer.
    ///
    /// Makes exactly the same RNG calls in exactly the same order as
    /// [`Realization::sample`], so for a given rng state the two produce
    /// bit-identical draws — the batch engine (see [`crate::batch`]) leans
    /// on this to keep per-worker sampling allocation-free without
    /// breaking the determinism contract.
    pub fn sample_into<R: Rng + ?Sized>(
        &mut self,
        g: &AndOrGraph,
        sections: &SectionGraph,
        model: &ExecTimeModel,
        rng: &mut R,
    ) {
        self.scenario = sections.sample_scenario(g, rng);
        self.actual.clear();
        self.actual.extend(g.nodes().iter().map(|n| {
            if n.kind.is_computation() {
                model.sample(n.kind.wcet(), n.kind.acet(), rng)
            } else {
                0.0
            }
        }));
    }

    /// A worst-case realization: a caller-chosen scenario with every task
    /// at its WCET (used by the deadline-guarantee tests).
    pub fn worst_case(g: &AndOrGraph, scenario: Scenario) -> Self {
        let actual = g.nodes().iter().map(|n| n.kind.wcet()).collect();
        Self { scenario, actual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diamond() -> (AndOrGraph, SectionGraph) {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.3).expect("branch is valid");
        b.or_branch(o1, t_c, 0.7).expect("branch is valid");
        let g = b.build().expect("diamond builds");
        let sg = SectionGraph::build(&g).expect("diamond sections");
        (g, sg)
    }

    #[test]
    fn samples_respect_bounds() {
        let m = ExecTimeModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = m.sample(10.0, 4.0, &mut rng);
            assert!(x > 0.0 && x <= 10.0, "x={x}");
        }
    }

    #[test]
    fn alpha_one_is_deterministic_wcet() {
        let m = ExecTimeModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(m.sample(10.0, 10.0, &mut rng), 10.0);
        }
    }

    #[test]
    fn always_wcet_model() {
        let m = ExecTimeModel::always_wcet();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(7.0, 2.0, &mut rng), 7.0);
    }

    #[test]
    fn sample_mean_tracks_acet() {
        let m = ExecTimeModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.sample(10.0, 6.0, &mut rng)).sum::<f64>() / n as f64;
        // Clipping skews slightly; stay within a tolerant band.
        assert!((mean - 6.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn realization_covers_all_nodes() {
        let (g, sg) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let r = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
        assert_eq!(r.actual.len(), g.len());
        assert_eq!(r.actual[1], 0.0, "OR node draws no execution time");
        assert!(r.actual[0] > 0.0 && r.actual[0] <= 8.0);
        assert_eq!(r.scenario.choices.len(), 1);
    }

    proptest::proptest! {
        /// Satellite invariant: for any positive WCET — including
        /// degenerate model parameters and out-of-range acet — a
        /// fault-free sample lies strictly in `(0, wcet]`. Overrunning the
        /// worst case is the fault layer's job, never the sampler's.
        #[test]
        fn sample_stays_in_zero_wcet_interval(
            wcet_tenths in 1u32..10_000,
            acet_pct in 0u32..=110,
            sd_over_gap_pct in 0u32..=300,
            floor_pct in 0u32..=120,
            seed in 0u64..1_000,
        ) {
            let wcet = wcet_tenths as f64 / 10.0;
            let acet = wcet * acet_pct as f64 / 100.0;
            let m = ExecTimeModel {
                sd_over_gap: sd_over_gap_pct as f64 / 100.0,
                floor_fraction: floor_pct as f64 / 100.0,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                let x = m.sample(wcet, acet, &mut rng);
                proptest::prop_assert!(
                    x > 0.0 && x <= wcet,
                    "x={x} wcet={wcet} acet={acet} model={m:?}"
                );
            }
        }
    }

    #[test]
    fn worst_case_uses_wcet_everywhere() {
        let (g, sg) = diamond();
        let mut rng = StdRng::seed_from_u64(5);
        let scen = sg.sample_scenario(&g, &mut rng);
        let r = Realization::worst_case(&g, scen);
        assert_eq!(r.actual[0], 8.0);
        assert_eq!(r.actual[2], 5.0);
    }
}
