//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *how often* things go wrong; realizing it
//! against a graph yields a [`FaultSet`] that pins *which* nodes go wrong
//! in one run. Faults are drawn per node — never per dispatch event — so
//! the set is identical regardless of the order in which the engine
//! happens to visit nodes, and two schemes fed the same `FaultSet` face
//! exactly the same adversity (the paired Monte-Carlo design extends to
//! faults).
//!
//! Three fault classes are modeled:
//!
//! * **Execution-time overrun** — the task's actual execution time
//!   exceeds its WCET by a configurable factor (a broken WCET bound, the
//!   case the paper's schemes explicitly do *not* budget for).
//! * **Speed-change failure** — a commanded DVS transition silently
//!   clamps to the old operating point: the transition delay and energy
//!   are still paid, but the processor keeps running at its previous
//!   speed.
//! * **Transient stall** — the processor hangs for a fixed duration
//!   before starting the task (e.g. an SEU-triggered pipeline flush and
//!   replay), drawing idle power.

use crate::error::SimError;
use andor_graph::AndOrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stochastic fault model: per-node probabilities plus a seed.
///
/// All probabilities are independent per computation node; synchronization
/// (dummy) nodes never fault. The plan is pure data — serialize it next to
/// the experiment config to make a faulty run reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a computation node overruns its WCET.
    pub overrun_prob: f64,
    /// Multiplier applied to the WCET when a node overruns (`>= 1`).
    /// The node's actual execution time becomes `wcet * overrun_factor`.
    pub overrun_factor: f64,
    /// Probability that a speed change commanded at a node's dispatch
    /// silently fails (operating point stays at the old level).
    pub speed_fail_prob: f64,
    /// Probability that the processor stalls before executing a node.
    pub stall_prob: f64,
    /// Duration of one transient stall, in milliseconds.
    pub stall_ms: f64,
    /// Base seed; mixed with the run index in [`FaultPlan::realize`].
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a CLI/config default).
    pub fn none() -> Self {
        FaultPlan {
            overrun_prob: 0.0,
            overrun_factor: 1.0,
            speed_fail_prob: 0.0,
            stall_prob: 0.0,
            stall_ms: 0.0,
            seed: 0,
        }
    }

    /// Overruns only — the sweep axis of experiment E5.
    pub fn overruns(prob: f64, factor: f64, seed: u64) -> Self {
        FaultPlan {
            overrun_prob: prob,
            overrun_factor: factor,
            ..FaultPlan::none()
        }
        .with_seed(seed)
    }

    /// Returns the plan with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when no fault class has positive probability.
    pub fn is_none(&self) -> bool {
        self.overrun_prob <= 0.0 && self.speed_fail_prob <= 0.0 && self.stall_prob <= 0.0
    }

    /// Checks ranges: probabilities in `[0, 1]`, `overrun_factor >= 1`,
    /// `stall_ms >= 0`, and everything finite.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| Err(SimError::BadFaultPlan { detail });
        for (name, p) in [
            ("overrun_prob", self.overrun_prob),
            ("speed_fail_prob", self.speed_fail_prob),
            ("stall_prob", self.stall_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return bad(format!("{name} = {p} is not a probability in [0, 1]"));
            }
        }
        if !self.overrun_factor.is_finite() || self.overrun_factor < 1.0 {
            return bad(format!(
                "overrun_factor = {} must be finite and >= 1",
                self.overrun_factor
            ));
        }
        if !self.stall_ms.is_finite() || self.stall_ms < 0.0 {
            return bad(format!(
                "stall_ms = {} must be finite and >= 0",
                self.stall_ms
            ));
        }
        Ok(())
    }

    /// Draws the concrete faults for one run.
    ///
    /// Deterministic in `(plan, graph size, run_index)`: the RNG is seeded
    /// from `seed` mixed with `run_index`, and one fixed-size block of
    /// draws is consumed per node in index order, so the outcome does not
    /// depend on dispatch order or on which other fault classes are
    /// enabled.
    pub fn realize(&self, g: &AndOrGraph, run_index: u64) -> FaultSet {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ run_index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(1),
        );
        let n = g.len();
        let mut set = FaultSet {
            overrun: Vec::with_capacity(n),
            speed_fail: Vec::with_capacity(n),
            stall: Vec::with_capacity(n),
        };
        for node in g.nodes() {
            // Always consume three uniform draws per node, so toggling one
            // fault class never reshuffles the others.
            let u_over: f64 = rng.gen_range(0.0..1.0);
            let u_speed: f64 = rng.gen_range(0.0..1.0);
            let u_stall: f64 = rng.gen_range(0.0..1.0);
            let comp = node.kind.is_computation();
            set.overrun
                .push((comp && u_over < self.overrun_prob).then_some(self.overrun_factor));
            set.speed_fail.push(comp && u_speed < self.speed_fail_prob);
            set.stall.push(
                (comp && u_stall < self.stall_prob && self.stall_ms > 0.0).then_some(self.stall_ms),
            );
        }
        set
    }
}

/// One run's concrete faults, indexed by node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSet {
    /// `Some(factor)` if the node overruns: actual time becomes
    /// `wcet * factor`.
    overrun: Vec<Option<f64>>,
    /// True if the speed change commanded at this node's dispatch fails.
    speed_fail: Vec<bool>,
    /// `Some(duration_ms)` if the processor stalls before this node.
    stall: Vec<Option<f64>>,
}

impl FaultSet {
    /// A set with no faults, sized for a graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        FaultSet {
            overrun: vec![None; n],
            speed_fail: vec![false; n],
            stall: vec![None; n],
        }
    }

    /// Overrun factor for `node`, if it overruns.
    pub fn overrun(&self, node: usize) -> Option<f64> {
        self.overrun.get(node).copied().flatten()
    }

    /// Whether the speed change at `node`'s dispatch fails.
    pub fn speed_fail(&self, node: usize) -> bool {
        self.speed_fail.get(node).copied().unwrap_or(false)
    }

    /// Stall duration before `node`, if the processor stalls.
    pub fn stall(&self, node: usize) -> Option<f64> {
        self.stall.get(node).copied().flatten()
    }

    /// True when the set injects nothing.
    pub fn is_empty(&self) -> bool {
        self.overrun.iter().all(Option::is_none)
            && self.speed_fail.iter().all(|&b| !b)
            && self.stall.iter().all(Option::is_none)
    }

    /// Number of nodes that fault in any class.
    pub fn injected(&self) -> usize {
        (0..self.overrun.len())
            .filter(|&i| self.overrun(i).is_some() || self.speed_fail(i) || self.stall(i).is_some())
            .count()
    }
}

/// What the engine observed and did about faults in one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// WCET overruns injected on dispatched nodes.
    pub overruns_injected: u64,
    /// Speed-change failures injected (only counted when a change was
    /// actually commanded and clamped).
    pub speed_failures_injected: u64,
    /// Transient stalls injected on dispatched nodes.
    pub stalls_injected: u64,
    /// Budget overruns the engine detected at task completion (covers
    /// injected overruns and speed failures slow enough to breach the
    /// policy's reservation).
    pub overruns_detected: u64,
    /// Recovery escalations performed (processor forced to `f_max`).
    pub recoveries: u64,
    /// Extra energy (mJ) attributable to recovery: escalation
    /// transitions plus the premium of running contained tasks at
    /// `f_max` instead of the policy's requested point.
    pub recovery_energy: f64,
}

impl FaultReport {
    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.overruns_injected + self.speed_failures_injected + self.stalls_injected
    }

    /// True when nothing was injected and nothing was detected.
    pub fn is_clean(&self) -> bool {
        self.total_injected() == 0 && self.overruns_detected == 0 && self.recoveries == 0
    }

    /// Accumulates another report (for aggregating across replications).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.overruns_injected += other.overruns_injected;
        self.speed_failures_injected += other.speed_failures_injected;
        self.stalls_injected += other.stalls_injected;
        self.overruns_detected += other.overruns_detected;
        self.recoveries += other.recoveries;
        self.recovery_energy += other.recovery_energy;
    }
}

/// Whether a run met its deadline, and by how much.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeadlineStatus {
    /// Finished at or before the deadline with this much slack (ms).
    Met {
        /// `deadline - finish_time`, non-negative.
        slack: f64,
    },
    /// Finished late by this much (ms).
    Missed {
        /// `finish_time - deadline`, positive.
        by: f64,
    },
}

impl DeadlineStatus {
    /// Classifies a finish time against a deadline. Uses the same
    /// tolerance as the engine's historical `missed_deadline` flag so the
    /// two never disagree.
    pub fn classify(finish_time: f64, deadline: f64) -> Self {
        if finish_time > deadline * (1.0 + 1e-9) + 1e-9 {
            DeadlineStatus::Missed {
                by: finish_time - deadline,
            }
        } else {
            DeadlineStatus::Met {
                slack: (deadline - finish_time).max(0.0),
            }
        }
    }

    /// True when the deadline was met.
    pub fn met(&self) -> bool {
        matches!(self, DeadlineStatus::Met { .. })
    }

    /// Milliseconds late; zero when the deadline was met.
    pub fn missed_by(&self) -> f64 {
        match self {
            DeadlineStatus::Met { .. } => 0.0,
            DeadlineStatus::Missed { by } => *by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::GraphBuilder;

    fn chain(n: usize) -> AndOrGraph {
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for i in 0..n {
            let t = b.task(format!("t{i}"), 10.0, 6.0);
            if let Some(p) = prev {
                b.edge(p, t).expect("chain edge is valid");
            }
            prev = Some(t);
        }
        b.build().expect("chain builds")
    }

    #[test]
    fn realize_is_deterministic_and_order_free() {
        let g = chain(64);
        let plan = FaultPlan {
            overrun_prob: 0.3,
            overrun_factor: 1.5,
            speed_fail_prob: 0.2,
            stall_prob: 0.1,
            stall_ms: 2.0,
            seed: 42,
        };
        let a = plan.realize(&g, 7);
        let b = plan.realize(&g, 7);
        assert_eq!(a, b);
        let c = plan.realize(&g, 8);
        assert_ne!(a, c, "different run index must draw different faults");
    }

    #[test]
    fn disabling_one_class_leaves_others_unchanged() {
        let g = chain(128);
        let full = FaultPlan {
            overrun_prob: 0.4,
            overrun_factor: 2.0,
            speed_fail_prob: 0.4,
            stall_prob: 0.4,
            stall_ms: 1.0,
            seed: 9,
        };
        let only_overruns = FaultPlan {
            speed_fail_prob: 0.0,
            stall_prob: 0.0,
            ..full.clone()
        };
        let a = full.realize(&g, 0);
        let b = only_overruns.realize(&g, 0);
        for i in 0..g.len() {
            assert_eq!(a.overrun(i), b.overrun(i), "node {i}");
        }
        assert!(b.speed_fail == vec![false; g.len()]);
    }

    #[test]
    fn zero_probability_plan_is_empty() {
        let g = chain(32);
        let set = FaultPlan::none().realize(&g, 3);
        assert!(set.is_empty());
        assert_eq!(set.injected(), 0);
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn probability_one_faults_every_computation_node() {
        let g = chain(16);
        let plan = FaultPlan {
            overrun_prob: 1.0,
            overrun_factor: 1.25,
            speed_fail_prob: 1.0,
            stall_prob: 1.0,
            stall_ms: 0.5,
            seed: 1,
        };
        let set = plan.realize(&g, 0);
        for i in 0..g.len() {
            assert_eq!(set.overrun(i), Some(1.25));
            assert!(set.speed_fail(i));
            assert_eq!(set.stall(i), Some(0.5));
        }
        assert_eq!(set.injected(), g.len());
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        let mut p = FaultPlan::none();
        p.overrun_prob = 1.5;
        assert!(matches!(p.validate(), Err(SimError::BadFaultPlan { .. })));
        let mut p = FaultPlan::none();
        p.overrun_factor = 0.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.stall_ms = -1.0;
        assert!(p.validate().is_err());
        assert!(FaultPlan::overruns(0.1, 2.0, 5).validate().is_ok());
    }

    #[test]
    fn deadline_status_roundtrip() {
        let met = DeadlineStatus::classify(90.0, 100.0);
        assert!(met.met());
        assert_eq!(met.missed_by(), 0.0);
        assert_eq!(met, DeadlineStatus::Met { slack: 10.0 });

        let missed = DeadlineStatus::classify(104.0, 100.0);
        assert!(!missed.met());
        assert!((missed.missed_by() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut a = FaultReport {
            overruns_injected: 1,
            recovery_energy: 2.0,
            ..FaultReport::default()
        };
        let b = FaultReport {
            overruns_injected: 2,
            recoveries: 1,
            recovery_energy: 0.5,
            ..FaultReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.overruns_injected, 3);
        assert_eq!(a.recoveries, 1);
        assert!((a.recovery_energy - 2.5).abs() < 1e-12);
        assert!(!a.is_clean());
        assert!(FaultReport::default().is_clean());
    }
}
