//! The execution engine: dispatches one realization of an AND/OR
//! application on `m` DVS processors under a speed policy.

use crate::policy::{DispatchCtx, Policy};
use crate::realization::Realization;
use andor_graph::{AndOrGraph, NodeId, SectionGraph, SectionId};
use dvfs_power::{EnergyMeter, OperatingPoint, Overheads, ProcessorModel};
use serde::{Deserialize, Serialize};

/// The canonical dispatch order: for every program section, its computation
/// and AND nodes in the order the off-line phase fixed (list scheduling
/// with a heuristic such as longest-task-first). The on-line phase must
/// dispatch in exactly this order to preserve the deadline guarantee
/// (paper §3.2: "we will maintain the same execution order of tasks in the
/// on-line phase to meet the timing constraints").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispatchOrder {
    /// `per_section[s.index()]` lists section `s`'s nodes in execution
    /// order.
    pub per_section: Vec<Vec<NodeId>>,
}

impl DispatchOrder {
    /// A dependency-respecting default order (deterministic topological
    /// order within each section). The real schedulers in `pas-core`
    /// compute an LTF list-scheduling order instead; this helper keeps the
    /// engine testable standalone and is adequate for the NPM baseline.
    pub fn topological(_g: &AndOrGraph, sections: &SectionGraph) -> Self {
        // Sections already store their nodes in deterministic topological
        // order (see `SectionGraph::build`).
        Self {
            per_section: sections
                .sections()
                .iter()
                .map(|s| s.nodes.clone())
                .collect(),
        }
    }
}

/// Engine configuration for one experiment setting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of identical processors.
    pub num_procs: usize,
    /// Application deadline `D` (ms).
    pub deadline: f64,
    /// Idle power as a fraction of maximum power.
    pub idle_fraction: f64,
    /// Static (leakage) power drawn *while active* (busy or in a voltage
    /// transition), as a fraction of maximum power. The paper's model is
    /// pure dynamic power (`0.0`, the default); see `dvfs_power::leakage`
    /// for the extension.
    pub static_fraction: f64,
    /// Speed-management overheads.
    pub overheads: Overheads,
    /// Record a full schedule trace (slower; for tests and debugging).
    pub record_trace: bool,
}

impl SimConfig {
    /// A convenience constructor with the paper's idle fraction and
    /// overhead defaults.
    pub fn new(num_procs: usize, deadline: f64) -> Self {
        Self {
            num_procs,
            deadline,
            idle_fraction: dvfs_power::DEFAULT_IDLE_FRACTION,
            static_fraction: 0.0,
            overheads: Overheads::paper_defaults(),
            record_trace: false,
        }
    }
}

/// One executed task in the schedule trace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The task.
    pub node: NodeId,
    /// Processor index it ran on.
    pub proc: usize,
    /// Dispatch time (ms) — includes subsequent overhead windows.
    pub start: f64,
    /// Completion time (ms).
    pub end: f64,
    /// Normalized speed it executed at.
    pub speed: f64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Time the application finished (ms).
    pub finish_time: f64,
    /// The deadline the run was scheduled against (ms).
    pub deadline: f64,
    /// True if the application finished after its deadline.
    pub missed_deadline: bool,
    /// Energy aggregated over all processors.
    pub energy: EnergyMeter,
    /// Per-processor energy accounting.
    pub per_proc: Vec<EnergyMeter>,
    /// Schedule trace, if [`SimConfig::record_trace`] was set.
    pub trace: Option<Vec<TraceEntry>>,
    /// The operating point each processor ended the run at — feed into
    /// [`Simulator::run_with_initial`] to chain back-to-back frame
    /// instances without resetting DVS state (see [`crate::stream`]).
    pub final_points: Vec<OperatingPoint>,
}

impl RunResult {
    /// Total normalized energy of the run (the figures' y-axis numerator
    /// before NPM normalization).
    pub fn total_energy(&self) -> f64 {
        self.energy.total_energy()
    }
}

/// The multi-processor execution engine.
///
/// Holds everything invariant across Monte-Carlo iterations; call
/// [`Simulator::run`] once per `(policy, realization)` pair.
pub struct Simulator<'a> {
    g: &'a AndOrGraph,
    sections: &'a SectionGraph,
    order: &'a DispatchOrder,
    model: &'a ProcessorModel,
    cfg: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates an engine over one application/platform configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_procs == 0` or the dispatch order does not cover
    /// every section.
    pub fn new(
        g: &'a AndOrGraph,
        sections: &'a SectionGraph,
        order: &'a DispatchOrder,
        model: &'a ProcessorModel,
        cfg: SimConfig,
    ) -> Self {
        assert!(cfg.num_procs > 0, "at least one processor required");
        assert_eq!(
            order.per_section.len(),
            sections.len(),
            "dispatch order must cover every section"
        );
        Self {
            g,
            sections,
            order,
            model,
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Executes one realization under `policy`, with every processor
    /// starting at the maximum operating point.
    pub fn run(&self, policy: &mut dyn Policy, real: &Realization) -> RunResult {
        self.run_with_initial(policy, real, None)
    }

    /// Executes one realization under `policy`, optionally starting each
    /// processor at a given operating point (DVS state carried over from a
    /// previous frame instance).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is provided with the wrong length.
    pub fn run_with_initial(
        &self,
        policy: &mut dyn Policy,
        real: &Realization,
        initial: Option<&[OperatingPoint]>,
    ) -> RunResult {
        let m = self.cfg.num_procs;
        let mut finish: Vec<Option<f64>> = vec![None; self.g.len()];
        let mut meters = vec![EnergyMeter::new(); m];
        let mut avail = vec![0.0_f64; m];
        let mut point: Vec<OperatingPoint> = match initial {
            Some(points) => {
                assert_eq!(points.len(), m, "one initial point per processor");
                points.to_vec()
            }
            None => vec![self.model.max_point(); m],
        };
        let mut trace = self.cfg.record_trace.then(Vec::new);
        let mut last_dispatch = 0.0_f64;

        policy.begin_run();

        let mut cur: SectionId = self.sections.root();
        loop {
            for &node in &self.order.per_section[cur.index()] {
                let ready = self.ready_time(node, &finish);
                if !self.g.node(node).kind.is_computation() {
                    // AND synchronization node: dummy, zero time, handled by
                    // whichever processor is cycling through the scheduler.
                    let t = ready.max(last_dispatch);
                    last_dispatch = t;
                    finish[node.index()] = Some(t);
                    continue;
                }
                // Earliest-available processor takes the next expected task.
                let (p, &p_avail) = avail
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
                    .expect("num_procs > 0");
                let start = ready.max(last_dispatch).max(p_avail);
                last_dispatch = start;

                let ctx = DispatchCtx {
                    now: start,
                    current_point: point[p],
                    wcet: self.g.node(node).kind.wcet(),
                };
                let decision = policy.speed_for(node, &ctx);
                let rho = self.cfg.static_fraction;
                let mut t = start;
                if decision.ran_pmp {
                    let dt = self
                        .cfg
                        .overheads
                        .compute_time_ms(point[p].speed, self.model.max_freq_mhz());
                    meters[p].add_busy(point[p].power + rho, dt);
                    t += dt;
                }
                if (decision.point.speed - point[p].speed).abs() > 1e-12 {
                    let dt = self.cfg.overheads.transition_time_ms;
                    meters[p].add_transition(
                        point[p].power.max(decision.point.power) + rho,
                        dt,
                    );
                    t += dt;
                    point[p] = decision.point;
                }
                let exec = real.actual[node.index()] / point[p].speed;
                meters[p].add_busy(point[p].power + rho, exec);
                let end = t + exec;
                avail[p] = end;
                finish[node.index()] = Some(end);
                if let Some(tr) = trace.as_mut() {
                    tr.push(TraceEntry {
                        node,
                        proc: p,
                        start,
                        end,
                        speed: point[p].speed,
                    });
                }
            }

            // Section drained: fire its exit OR (all processors synchronize
            // here), then continue with the selected branch's section.
            let Some(or) = self.sections.section(cur).exit_or else {
                break;
            };
            let drain = self.order.per_section[cur.index()]
                .iter()
                .filter_map(|n| finish[n.index()])
                .fold(0.0_f64, f64::max);
            let preds_done = self
                .g
                .node(or)
                .preds
                .iter()
                .filter_map(|p| finish[p.index()])
                .fold(0.0_f64, f64::max);
            let fire = drain.max(preds_done);
            finish[or.index()] = Some(fire);

            if self.g.node(or).succs.is_empty() {
                break; // terminal OR: application ends at the sync point
            }
            let k = real
                .scenario
                .choice_for(or)
                .expect("realization resolves every reachable OR");
            policy.on_or_fired(or, k, fire);
            cur = self
                .sections
                .branch_section(or, k)
                .expect("every OR branch has a section");
        }

        let finish_time = finish
            .iter()
            .filter_map(|f| *f)
            .fold(0.0_f64, f64::max);
        // Idle energy accrues until the deadline (the system stays powered
        // for the whole frame), or until the actual finish on an overrun.
        let horizon = finish_time.max(self.cfg.deadline);
        let mut energy = EnergyMeter::new();
        for meter in &mut meters {
            let idle = horizon - meter.busy_time() - meter.transition_time();
            meter.add_idle(self.cfg.idle_fraction, idle.max(0.0));
            energy.merge(meter);
        }
        RunResult {
            finish_time,
            deadline: self.cfg.deadline,
            missed_deadline: finish_time > self.cfg.deadline * (1.0 + 1e-9) + 1e-9,
            energy,
            per_proc: meters,
            trace,
            final_points: point,
        }
    }

    fn ready_time(&self, node: NodeId, finish: &[Option<f64>]) -> f64 {
        let mut t = 0.0_f64;
        for &p in &self.g.node(node).preds {
            let f = finish[p.index()].unwrap_or_else(|| {
                panic!(
                    "dispatch order violates dependencies: '{}' dispatched before '{}'",
                    self.g.node(node).name,
                    self.g.node(p).name
                )
            });
            t = t.max(f);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MaxSpeed, SpeedDecision};
    use andor_graph::{GraphBuilder, Scenario, Segment};

    /// Fixed-speed test policy on the continuous model.
    struct Fixed {
        speed: f64,
    }

    impl Policy for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
            SpeedDecision {
                point: OperatingPoint {
                    speed: self.speed,
                    power: self.speed.powi(3),
                },
                ran_pmp: true,
            }
        }
    }

    fn single_task() -> (AndOrGraph, SectionGraph) {
        let mut b = GraphBuilder::new();
        b.task("T", 10.0, 10.0);
        let g = b.build().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        (g, sg)
    }

    fn cfg(m: usize, d: f64) -> SimConfig {
        SimConfig {
            num_procs: m,
            deadline: d,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: true,
        }
    }

    fn wcet_real(g: &AndOrGraph) -> Realization {
        Realization::worst_case(g, Scenario { choices: vec![] })
    }

    #[test]
    fn single_task_at_full_speed() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        assert!((res.finish_time - 10.0).abs() < 1e-12);
        assert!(!res.missed_deadline);
        // busy 10 at power 1, idle (20-10) at 0.05.
        assert!((res.energy.busy_energy() - 10.0).abs() < 1e-12);
        assert!((res.energy.idle_energy() - 0.5).abs() < 1e-12);
        let tr = res.trace.unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].proc, 0);
    }

    #[test]
    fn half_speed_quarters_busy_energy() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim.run(&mut Fixed { speed: 0.5 }, &wcet_real(&g));
        assert!((res.finish_time - 20.0).abs() < 1e-12);
        assert!(!res.missed_deadline);
        // 20 ms at power 0.125 = 2.5 = a quarter of the 10.0 at full speed.
        assert!((res.energy.busy_energy() - 2.5).abs() < 1e-12);
        assert_eq!(res.energy.speed_changes(), 1);
    }

    #[test]
    fn deadline_miss_detected() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 5.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        assert!(res.missed_deadline);
        assert!((res.finish_time - 10.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_use_both_processors() {
        let app = Segment::par([
            Segment::task("X", 6.0, 6.0),
            Segment::task("Y", 4.0, 4.0),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 10.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        assert!((res.finish_time - 6.0).abs() < 1e-12);
        let tr = res.trace.unwrap();
        let procs: std::collections::HashSet<usize> = tr.iter().map(|e| e.proc).collect();
        assert_eq!(procs.len(), 2, "both processors used");
    }

    #[test]
    fn dispatch_order_serializes_starts() {
        // Three independent tasks, one processor: starts must be ordered.
        let app = Segment::par([
            Segment::task("A", 3.0, 3.0),
            Segment::task("B", 2.0, 2.0),
            Segment::task("C", 1.0, 1.0),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        let tr = res.trace.unwrap();
        for w in tr.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!((res.finish_time - 6.0).abs() < 1e-12);
    }

    #[test]
    fn or_branch_selection_follows_realization() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 5.0, 5.0)),
                (0.5, Segment::task("C", 3.0, 3.0)),
            ]),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let or_node = g
            .iter()
            .find(|(_, n)| n.kind.is_or() && n.succs.len() == 2)
            .unwrap()
            .0;
        for (k, expect) in [(0usize, 7.0), (1usize, 5.0)] {
            let real = Realization::worst_case(
                &g,
                Scenario {
                    choices: vec![(or_node, k)],
                },
            );
            let res = sim.run(&mut MaxSpeed, &real);
            assert!(
                (res.finish_time - expect).abs() < 1e-12,
                "branch {k}: finish={}",
                res.finish_time
            );
        }
    }

    #[test]
    fn speed_change_overhead_charged() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let mut config = cfg(1, 40.0);
        config.overheads = Overheads::new(700.0, 0.5).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let res = sim.run(&mut Fixed { speed: 0.5 }, &wcet_real(&g));
        // compute overhead at current (full) speed: 700 cycles / 1 GHz =
        // 0.0007 ms; transition 0.5 ms; execution 20 ms.
        let expect = 0.0007 + 0.5 + 20.0;
        assert!(
            (res.finish_time - expect).abs() < 1e-9,
            "finish={}",
            res.finish_time
        );
        assert_eq!(res.energy.speed_changes(), 1);
        assert!((res.energy.transition_time() - 0.5).abs() < 1e-12);
        // Transition charged at the higher of the two endpoint powers
        // (leaving full power: 1.0).
        assert!((res.energy.transition_energy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_transition_when_speed_unchanged() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let mut config = cfg(1, 40.0);
        config.overheads = Overheads::new(300.0, 0.5).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let res = sim.run(&mut Fixed { speed: 1.0 }, &wcet_real(&g));
        assert_eq!(res.energy.speed_changes(), 0);
        assert!((res.energy.transition_time()).abs() < 1e-12);
    }

    #[test]
    fn idle_horizon_is_deadline_when_early() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 50.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        // proc 0: 40 idle; proc 1: 50 idle. Both at 0.05.
        assert!((res.energy.idle_energy() - 0.05 * (40.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn terminal_or_ends_application() {
        // A -> OR (terminal, no successors).
        let mut b = GraphBuilder::new();
        let a = b.task("A", 3.0, 3.0);
        let o = b.or("end");
        b.edge(a, o).unwrap();
        let g = b.build().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 10.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        assert!((res.finish_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn and_nodes_cost_nothing() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 2.0),
            Segment::par([
                Segment::task("X", 3.0, 3.0),
                Segment::task("Y", 3.0, 3.0),
            ]),
            Segment::task("Z", 1.0, 1.0),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).unwrap();
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 20.0));
        let res = sim.run(&mut MaxSpeed, &wcet_real(&g));
        // 2 (A) + 3 (X||Y) + 1 (Z): AND forks/joins add zero time.
        assert!((res.finish_time - 6.0).abs() < 1e-12);
        assert!((res.energy.busy_time() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dispatch order must cover every section")]
    fn mismatched_order_panics() {
        let (g, sg) = single_task();
        let order = DispatchOrder {
            per_section: vec![],
        };
        let model = ProcessorModel::continuous(0.1).unwrap();
        let _ = Simulator::new(&g, &sg, &order, &model, cfg(1, 10.0));
    }
}
