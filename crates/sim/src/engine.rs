//! The execution engine: dispatches one realization of an AND/OR
//! application on `m` DVS processors under a speed policy.

// Per-node state vectors are allocated to `g.len()` at construction and
// indexed by `NodeId`s the validated graph itself hands out, so indexing
// cannot go out of bounds here; `.get()` chains would only obscure the
// dispatch algebra.
#![allow(clippy::indexing_slicing)]

use crate::error::SimError;
use crate::fault::{DeadlineStatus, FaultReport, FaultSet};
use crate::policy::{DispatchCtx, Policy};
use crate::realization::Realization;
use crate::trace::trace_from_events;
use andor_graph::{AndOrGraph, NodeId, SectionGraph, SectionId};
use dvfs_power::{EnergyMeter, OperatingPoint, Overheads, ProcessorModel};
use pas_obs::{FaultKind, Observer, SimEvent};
use serde::{Deserialize, Serialize};

/// The engine's internal event tap: fans each [`SimEvent`] out to the
/// caller's observer (if any), the trace-recording log (if
/// [`SimConfig::record_trace`]) and — in debug builds — a
/// [`pas_obs::SectionedLedger`] that cross-checks the meters at run end,
/// both globally and per program section.
///
/// Zero overhead when disabled: in release builds with no observer and
/// no trace recording, [`Emitter::active`] is `false` and the engine
/// never constructs an event.
struct Emitter<'o> {
    obs: Option<&'o mut dyn Observer>,
    log: Option<Vec<SimEvent>>,
    #[cfg(debug_assertions)]
    ledger: pas_obs::SectionedLedger,
}

impl<'o> Emitter<'o> {
    fn new(obs: Option<&'o mut dyn Observer>, record: bool) -> Self {
        Self {
            obs,
            log: record.then(Vec::new),
            #[cfg(debug_assertions)]
            ledger: pas_obs::SectionedLedger::new(),
        }
    }

    #[inline]
    fn active(&self) -> bool {
        cfg!(debug_assertions) || self.obs.is_some() || self.log.is_some()
    }

    fn emit(&mut self, ev: SimEvent) {
        #[cfg(debug_assertions)]
        self.ledger.on_event(&ev);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_event(&ev);
        }
        if let Some(log) = self.log.as_mut() {
            log.push(ev);
        }
    }
}

/// The canonical dispatch order: for every program section, its computation
/// and AND nodes in the order the off-line phase fixed (list scheduling
/// with a heuristic such as longest-task-first). The on-line phase must
/// dispatch in exactly this order to preserve the deadline guarantee
/// (paper §3.2: "we will maintain the same execution order of tasks in the
/// on-line phase to meet the timing constraints").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispatchOrder {
    /// `per_section[s.index()]` lists section `s`'s nodes in execution
    /// order.
    pub per_section: Vec<Vec<NodeId>>,
}

impl DispatchOrder {
    /// A dependency-respecting default order (deterministic topological
    /// order within each section). The real schedulers in `pas-core`
    /// compute an LTF list-scheduling order instead; this helper keeps the
    /// engine testable standalone and is adequate for the NPM baseline.
    pub fn topological(_g: &AndOrGraph, sections: &SectionGraph) -> Self {
        // Sections already store their nodes in deterministic topological
        // order (see `SectionGraph::build`).
        Self {
            per_section: sections
                .sections()
                .iter()
                .map(|s| s.nodes.clone())
                .collect(),
        }
    }
}

/// Engine configuration for one experiment setting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of identical processors.
    pub num_procs: usize,
    /// Application deadline `D` (ms).
    pub deadline: f64,
    /// Idle power as a fraction of maximum power.
    pub idle_fraction: f64,
    /// Static (leakage) power drawn *while active* (busy or in a voltage
    /// transition), as a fraction of maximum power. The paper's model is
    /// pure dynamic power (`0.0`, the default); see `dvfs_power::leakage`
    /// for the extension.
    pub static_fraction: f64,
    /// Speed-management overheads.
    pub overheads: Overheads,
    /// Record a full schedule trace (slower; for tests and debugging).
    pub record_trace: bool,
}

impl SimConfig {
    /// A convenience constructor with the paper's idle fraction and
    /// overhead defaults.
    pub fn new(num_procs: usize, deadline: f64) -> Self {
        Self {
            num_procs,
            deadline,
            idle_fraction: dvfs_power::DEFAULT_IDLE_FRACTION,
            static_fraction: 0.0,
            overheads: Overheads::paper_defaults(),
            record_trace: false,
        }
    }
}

/// One executed task in the schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The task.
    pub node: NodeId,
    /// Processor index it ran on.
    pub proc: usize,
    /// Dispatch time (ms) — includes subsequent overhead windows.
    pub start: f64,
    /// Completion time (ms).
    pub end: f64,
    /// Normalized speed it executed at.
    pub speed: f64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Time the application finished (ms).
    pub finish_time: f64,
    /// The deadline the run was scheduled against (ms).
    pub deadline: f64,
    /// True if the application finished after its deadline. Kept for
    /// compatibility; [`RunResult::status`] carries the margin as well.
    pub missed_deadline: bool,
    /// Whether the deadline was met, and by how much.
    pub status: DeadlineStatus,
    /// Faults injected, detected and recovered during the run. All-zero
    /// for fault-free runs.
    pub faults: FaultReport,
    /// Energy aggregated over all processors.
    pub energy: EnergyMeter,
    /// Per-processor energy accounting.
    pub per_proc: Vec<EnergyMeter>,
    /// Schedule trace, if [`SimConfig::record_trace`] was set.
    pub trace: Option<Vec<TraceEntry>>,
    /// The operating point each processor ended the run at — feed into
    /// [`Simulator::run_with_initial`] to chain back-to-back frame
    /// instances without resetting DVS state (see [`crate::stream`]).
    pub final_points: Vec<OperatingPoint>,
}

impl RunResult {
    /// Total normalized energy of the run (the figures' y-axis numerator
    /// before NPM normalization).
    pub fn total_energy(&self) -> f64 {
        self.energy.total_energy()
    }
}

/// Reusable per-run mutable state: everything [`Simulator::run_into`]
/// writes during one realization, allocated once and reset on every run.
///
/// `run_observed` allocates a fresh scratch per call (the historical
/// behaviour); the batch engine ([`crate::batch`]) keeps one scratch per
/// worker and reuses it across thousands of realizations, which removes
/// every per-run allocation from the hot loop. The contents after a run
/// are exactly the state `run_observed` moves into [`RunResult`]
/// (per-processor meters and final operating points), plus the
/// per-program-section energy accumulators the batch distribution
/// summaries are built from.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Completion time per node (`None` until the node finishes).
    finish: Vec<Option<f64>>,
    /// Per-processor energy accounting.
    meters: Vec<EnergyMeter>,
    /// Per-processor clocks: the time each processor becomes available.
    avail: Vec<f64>,
    /// Per-processor operating points.
    point: Vec<OperatingPoint>,
    /// Energy charged while executing inside each program section,
    /// indexed by [`SectionId::index`]. The final idle fill out to the
    /// horizon is attributed to the section that was current when the
    /// application ended (mirroring the sectioned ledger's
    /// "energy belongs to the slice entered first" convention).
    section_energy: Vec<f64>,
}

impl RunScratch {
    /// An empty scratch; sized lazily by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-processor energy meters of the last run.
    pub fn meters(&self) -> &[EnergyMeter] {
        &self.meters
    }

    /// Operating point each processor ended the last run at.
    pub fn final_points(&self) -> &[OperatingPoint] {
        &self.point
    }

    /// Energy charged per program section during the last run (busy,
    /// overheads, stalls and the trailing idle fill; see the determinism
    /// contract in `docs/simulator.md`).
    pub fn section_energy(&self) -> &[f64] {
        &self.section_energy
    }

    /// Sizes and clears every vector for a new run.
    fn prepare(
        &mut self,
        g_len: usize,
        m: usize,
        n_sections: usize,
        initial: Option<&[OperatingPoint]>,
        max_point: OperatingPoint,
    ) -> Result<(), SimError> {
        if let Some(points) = initial {
            if points.len() != m {
                return Err(SimError::InitialPointCount {
                    expected: m,
                    got: points.len(),
                });
            }
        }
        self.finish.clear();
        self.finish.resize(g_len, None);
        self.meters.clear();
        self.meters.resize(m, EnergyMeter::new());
        self.avail.clear();
        self.avail.resize(m, 0.0);
        self.point.clear();
        match initial {
            Some(points) => self.point.extend_from_slice(points),
            None => self.point.resize(m, max_point),
        }
        self.section_energy.clear();
        self.section_energy.resize(n_sections, 0.0);
        Ok(())
    }
}

/// The scalar outcome of one run executed through
/// [`Simulator::run_into`]. Per-processor state (meters, final operating
/// points) stays in the [`RunScratch`]; this struct carries everything
/// else [`RunResult`] is assembled from.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Time the application finished (ms).
    pub finish_time: f64,
    /// True if the application finished after its deadline.
    pub missed_deadline: bool,
    /// Whether the deadline was met, and by how much.
    pub status: DeadlineStatus,
    /// Faults injected, detected and recovered during the run.
    pub faults: FaultReport,
    /// Energy aggregated over all processors.
    pub energy: EnergyMeter,
    /// Schedule trace, if [`SimConfig::record_trace`] was set.
    pub trace: Option<Vec<TraceEntry>>,
}

/// The multi-processor execution engine.
///
/// Holds everything invariant across Monte-Carlo iterations; call
/// [`Simulator::run`] once per `(policy, realization)` pair.
pub struct Simulator<'a> {
    g: &'a AndOrGraph,
    sections: &'a SectionGraph,
    order: &'a DispatchOrder,
    model: &'a ProcessorModel,
    cfg: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates an engine over one application/platform configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_procs == 0` or the dispatch order does not cover
    /// every section. These are construction-time programming errors, not
    /// data-dependent run failures, so they stay asserts; everything that
    /// depends on the realization or dispatch order contents surfaces as
    /// [`SimError`] from the `run*` methods instead.
    pub fn new(
        g: &'a AndOrGraph,
        sections: &'a SectionGraph,
        order: &'a DispatchOrder,
        model: &'a ProcessorModel,
        cfg: SimConfig,
    ) -> Self {
        assert!(cfg.num_procs > 0, "at least one processor required");
        assert_eq!(
            order.per_section.len(),
            sections.len(),
            "dispatch order must cover every section"
        );
        Self {
            g,
            sections,
            order,
            model,
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The application graph the engine executes.
    pub fn graph(&self) -> &'a AndOrGraph {
        self.g
    }

    /// The program-section decomposition of the graph.
    pub fn sections(&self) -> &'a SectionGraph {
        self.sections
    }

    /// Executes one realization under `policy`, with every processor
    /// starting at the maximum operating point.
    pub fn run(&self, policy: &mut dyn Policy, real: &Realization) -> Result<RunResult, SimError> {
        self.run_full(policy, real, None, None)
    }

    /// Executes one realization under `policy`, optionally starting each
    /// processor at a given operating point (DVS state carried over from a
    /// previous frame instance).
    pub fn run_with_initial(
        &self,
        policy: &mut dyn Policy,
        real: &Realization,
        initial: Option<&[OperatingPoint]>,
    ) -> Result<RunResult, SimError> {
        self.run_full(policy, real, initial, None)
    }

    /// Executes one realization under `policy` while injecting the given
    /// fault set (see [`crate::fault`]).
    ///
    /// Detection and containment: when a task's measured execution time
    /// exceeds the worst-case budget at the speed the policy reserved
    /// (`wcet / speed`), the engine counts a detected overrun, escalates
    /// the affected processor to the maximum operating point, and
    /// suspends the policy's slack-claiming — every subsequent dispatch
    /// runs at `f_max` — until the current program section's exit OR
    /// fires. The energy premium of recovery (escalation transitions plus
    /// running contained tasks above the requested point) is tallied in
    /// [`RunResult::faults`].
    pub fn run_with_faults(
        &self,
        policy: &mut dyn Policy,
        real: &Realization,
        faults: &FaultSet,
    ) -> Result<RunResult, SimError> {
        self.run_full(policy, real, None, Some(faults))
    }

    /// The full-control entry point behind [`Simulator::run`],
    /// [`Simulator::run_with_initial`] and [`Simulator::run_with_faults`].
    pub fn run_full(
        &self,
        policy: &mut dyn Policy,
        real: &Realization,
        initial: Option<&[OperatingPoint]>,
        faults: Option<&FaultSet>,
    ) -> Result<RunResult, SimError> {
        self.run_observed(policy, real, initial, faults, None)
    }

    /// Like [`Simulator::run_full`], additionally streaming every
    /// schedule action to `observer` as typed [`SimEvent`]s (see
    /// `pas-obs`). Event emission is purely additive: the schedule and
    /// energy numbers are bit-identical with and without an observer.
    pub fn run_observed(
        &self,
        policy: &mut dyn Policy,
        real: &Realization,
        initial: Option<&[OperatingPoint]>,
        faults: Option<&FaultSet>,
        observer: Option<&mut dyn Observer>,
    ) -> Result<RunResult, SimError> {
        let mut scratch = RunScratch::new();
        let out = self.run_into(&mut scratch, policy, real, initial, faults, observer)?;
        Ok(RunResult {
            finish_time: out.finish_time,
            deadline: self.cfg.deadline,
            missed_deadline: out.missed_deadline,
            status: out.status,
            faults: out.faults,
            energy: out.energy,
            per_proc: std::mem::take(&mut scratch.meters),
            trace: out.trace,
            final_points: std::mem::take(&mut scratch.point),
        })
    }

    /// Like [`Simulator::run_observed`], but executing into a
    /// caller-provided [`RunScratch`] instead of allocating per-run state.
    ///
    /// This is the batched-engine entry point: the arithmetic, dispatch
    /// order and event emission are *identical* to `run_observed` (which
    /// delegates here with a fresh scratch), so per-seed results are
    /// bit-identical whichever entry point ran them — the determinism
    /// contract written down in `docs/simulator.md`. After the call the
    /// scratch holds the per-processor meters, final operating points and
    /// per-section energy accumulators of the run.
    pub fn run_into(
        &self,
        scratch: &mut RunScratch,
        policy: &mut dyn Policy,
        real: &Realization,
        initial: Option<&[OperatingPoint]>,
        faults: Option<&FaultSet>,
        observer: Option<&mut dyn Observer>,
    ) -> Result<RunOutcome, SimError> {
        let m = self.cfg.num_procs;
        scratch.prepare(
            self.g.len(),
            m,
            self.sections.len(),
            initial,
            self.model.max_point(),
        )?;
        let RunScratch {
            finish,
            meters,
            avail,
            point,
            section_energy,
        } = scratch;
        let mut em = Emitter::new(observer, self.cfg.record_trace);
        let mut last_dispatch = 0.0_f64;
        let mut report = FaultReport::default();
        // Containment: set on overrun detection, cleared when the current
        // section's exit OR fires. While set, every dispatch is forced to
        // the maximum operating point regardless of the policy's decision.
        let mut contained = false;
        let max_point = self.model.max_point();

        policy.begin_run();
        if em.active() {
            if let Some(spec) = policy.speculation() {
                em.emit(SimEvent::SpeculationUpdate {
                    t: 0.0,
                    spec_speed: spec,
                });
            }
        }

        let mut cur: SectionId = self.sections.root();
        loop {
            for &node in &self.order.per_section[cur.index()] {
                let ready = self.ready_time(node, finish)?;
                if !self.g.node(node).kind.is_computation() {
                    // AND synchronization node: dummy, zero time, handled by
                    // whichever processor is cycling through the scheduler.
                    let t = ready.max(last_dispatch);
                    last_dispatch = t;
                    finish[node.index()] = Some(t);
                    continue;
                }
                // Earliest-available processor takes the next expected task.
                let (p, &p_avail) = avail
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("num_procs > 0 is asserted at construction");
                let start = ready.max(last_dispatch).max(p_avail);
                last_dispatch = start;

                let ctx = DispatchCtx {
                    now: start,
                    current_point: point[p],
                    wcet: self.g.node(node).kind.wcet(),
                };
                let decision = policy.speed_for(node, &ctx);
                let rho = self.cfg.static_fraction;
                let pre_point = point[p];
                let mut t = start;
                // Transient stall: the processor hangs (pipeline drained,
                // drawing idle power) before it begins dispatching the task.
                let stall = faults.and_then(|f| f.stall(node.index()));
                if let Some(stall) = stall {
                    meters[p].add_idle(self.cfg.idle_fraction, stall);
                    section_energy[cur.index()] += self.cfg.idle_fraction * stall;
                    t += stall;
                    report.stalls_injected += 1;
                }
                let mut pmp_ms = 0.0;
                if decision.ran_pmp {
                    let dt = self
                        .cfg
                        .overheads
                        .compute_time_ms(point[p].speed, self.model.max_freq_mhz());
                    meters[p].add_busy(point[p].power + rho, dt);
                    section_energy[cur.index()] += (point[p].power + rho) * dt;
                    t += dt;
                    pmp_ms = dt;
                }
                // While contained, the policy's slack-claiming is suspended:
                // the engine overrides its decision with the maximum point.
                let requested = decision.point;
                let target = if contained { max_point } else { requested };
                // (begin time, latency, dynamic energy, failed) of a
                // commanded transition, for event emission below.
                let mut transition: Option<(f64, f64, f64, bool)> = None;
                if (target.speed - point[p].speed).abs() > 1e-12 {
                    let dt = self.cfg.overheads.transition_time_ms;
                    meters[p].add_transition(point[p].power.max(target.power) + rho, dt);
                    section_energy[cur.index()] += (point[p].power.max(target.power) + rho) * dt;
                    let failed = faults.is_some_and(|f| f.speed_fail(node.index()));
                    transition = Some((t, dt, point[p].power.max(target.power) * dt, failed));
                    t += dt;
                    if failed {
                        // Speed-change failure: the transition's time and
                        // energy are paid, but the operating point silently
                        // clamps to the old level.
                        report.speed_failures_injected += 1;
                    } else {
                        point[p] = target;
                    }
                }
                let mut actual = real.actual[node.index()];
                let overrun = faults.and_then(|f| f.overrun(node.index()));
                if let Some(factor) = overrun {
                    actual = ctx.wcet * factor;
                    report.overruns_injected += 1;
                }
                let exec_point = point[p];
                let exec = actual / exec_point.speed;
                meters[p].add_busy(exec_point.power + rho, exec);
                section_energy[cur.index()] += (exec_point.power + rho) * exec;
                // Premium of running above the point the policy asked for,
                // attributed to recovery. The report keeps its historical
                // target-based formula; the event carries the premium
                // actually charged (they differ only when an injected
                // speed failure also clamped the containment escalation).
                let mut premium = 0.0;
                if contained && (target.speed - requested.speed).abs() > 1e-12 {
                    report.recovery_energy += (target.power - requested.power).max(0.0) * exec;
                    premium = (exec_point.power - requested.power).max(0.0) * exec;
                }
                let end = t + exec;
                avail[p] = end;
                finish[node.index()] = Some(end);
                // Overrun detection at task completion: the task ran past
                // the worst-case budget the policy reserved at the speed it
                // believed the processor was running. Covers injected WCET
                // overruns and speed failures slow enough to breach the
                // reservation. Only armed when a fault set is supplied —
                // fault-free runs are bit-for-bit identical to the
                // pre-fault-layer engine.
                let mut detected = false;
                // (dynamic power, latency) of a recovery escalation.
                let mut escalation: Option<(f64, f64)> = None;
                if faults.is_some() && exec > ctx.wcet / target.speed + 1e-9 {
                    report.overruns_detected += 1;
                    detected = true;
                    contained = true;
                    if (max_point.speed - point[p].speed).abs() > 1e-12 {
                        // Escalate the affected processor to f_max; the
                        // transition happens after the task completes and
                        // delays the processor's next availability.
                        let dt = self.cfg.overheads.transition_time_ms;
                        let power = point[p].power.max(max_point.power) + rho;
                        meters[p].add_transition(power, dt);
                        section_energy[cur.index()] += power * dt;
                        report.recovery_energy += power * dt;
                        avail[p] = end + dt;
                        escalation = Some((point[p].power.max(max_point.power), dt));
                        point[p] = max_point;
                        report.recoveries += 1;
                    }
                }
                if em.active() {
                    em.emit(SimEvent::TaskDispatch {
                        t: start,
                        node,
                        proc: p,
                        wcet: ctx.wcet,
                        speed: pre_point.speed,
                        pmp_ms,
                        pmp_energy: pre_point.power * pmp_ms,
                        pmp_leakage: rho * pmp_ms,
                    });
                    if let Some(ms) = stall {
                        em.emit(SimEvent::FaultInjected {
                            t: start,
                            node,
                            proc: p,
                            kind: FaultKind::Stall { ms },
                        });
                        em.emit(SimEvent::IdleStart { t: start, proc: p });
                        em.emit(SimEvent::IdleEnd {
                            t: start + ms,
                            proc: p,
                            duration_ms: ms,
                            energy: self.cfg.idle_fraction * ms,
                        });
                    }
                    if let Some((begin, dt, dyn_energy, failed)) = transition {
                        if failed {
                            em.emit(SimEvent::FaultInjected {
                                t: begin,
                                node,
                                proc: p,
                                kind: FaultKind::SpeedFailure,
                            });
                        }
                        em.emit(SimEvent::SpeedChange {
                            t: begin,
                            proc: p,
                            from_speed: pre_point.speed,
                            to_speed: target.speed,
                            duration_ms: dt,
                            energy: dyn_energy,
                            leakage: rho * dt,
                            failed,
                        });
                    }
                    if let Some(factor) = overrun {
                        em.emit(SimEvent::FaultInjected {
                            t: start,
                            node,
                            proc: p,
                            kind: FaultKind::Overrun { factor },
                        });
                    }
                    if exec_point.speed < 1.0 - 1e-12 {
                        em.emit(SimEvent::SlackReclaimed {
                            t: start,
                            node,
                            proc: p,
                            reclaimed_ms: ctx.wcet / exec_point.speed - ctx.wcet,
                        });
                    }
                    em.emit(SimEvent::TaskComplete {
                        t: end,
                        node,
                        proc: p,
                        start,
                        exec_ms: exec,
                        speed: exec_point.speed,
                        energy: exec_point.power * exec,
                        leakage: rho * exec,
                        recovery_premium: premium,
                    });
                    if detected {
                        em.emit(SimEvent::FaultDetected {
                            t: end,
                            node,
                            proc: p,
                        });
                    }
                    if let Some((dyn_power, dt)) = escalation {
                        em.emit(SimEvent::FaultRecovered {
                            t: end,
                            proc: p,
                            energy: dyn_power * dt,
                            leakage: rho * dt,
                        });
                    }
                }
            }

            // Section drained: fire its exit OR (all processors synchronize
            // here), then continue with the selected branch's section.
            let Some(or) = self.sections.section(cur).exit_or else {
                break;
            };
            let drain = self.order.per_section[cur.index()]
                .iter()
                .filter_map(|n| finish[n.index()])
                .fold(0.0_f64, f64::max);
            let preds_done = self
                .g
                .node(or)
                .preds
                .iter()
                .filter_map(|p| finish[p.index()])
                .fold(0.0_f64, f64::max);
            let fire = drain.max(preds_done);
            finish[or.index()] = Some(fire);
            // The section boundary re-synchronizes the schedule; containment
            // (if any) ends here and the policy resumes slack-claiming.
            contained = false;

            if self.g.node(or).succs.is_empty() {
                break; // terminal OR: application ends at the sync point
            }
            let k = real
                .scenario
                .choice_for(or)
                .ok_or_else(|| SimError::UnresolvedOr {
                    or: self.g.node(or).name.clone(),
                })?;
            policy.on_or_fired(or, k, fire);
            if em.active() {
                em.emit(SimEvent::OrBranchTaken {
                    t: fire,
                    or,
                    branch: k,
                });
                if let Some(spec) = policy.speculation() {
                    em.emit(SimEvent::SpeculationUpdate {
                        t: fire,
                        spec_speed: spec,
                    });
                }
            }
            cur = self.sections.branch_section(or, k).ok_or_else(|| {
                SimError::MissingBranchSection {
                    or: self.g.node(or).name.clone(),
                    branch: k,
                }
            })?;
        }

        let finish_time = finish.iter().filter_map(|f| *f).fold(0.0_f64, f64::max);
        // Idle energy accrues until the deadline (the system stays powered
        // for the whole frame), or until the actual finish on an overrun.
        // Idle time already metered (transient stalls) is not re-charged.
        let horizon = finish_time.max(self.cfg.deadline);
        let mut energy = EnergyMeter::new();
        for (p, meter) in meters.iter_mut().enumerate() {
            let idle = horizon - meter.busy_time() - meter.transition_time() - meter.idle_time();
            meter.add_idle(self.cfg.idle_fraction, idle.max(0.0));
            section_energy[cur.index()] += self.cfg.idle_fraction * idle.max(0.0);
            // One aggregate idle window per processor, mirroring the
            // meter's lump (dispatch gaps + the tail out to the horizon).
            // Stall windows were evented when metered.
            if em.active() && idle > 0.0 {
                em.emit(SimEvent::IdleStart {
                    t: horizon - idle,
                    proc: p,
                });
                em.emit(SimEvent::IdleEnd {
                    t: horizon,
                    proc: p,
                    duration_ms: idle,
                    energy: self.cfg.idle_fraction * idle,
                });
            }
            energy.merge(meter);
        }
        // The ledger invariants: every debug-build run cross-checks the
        // event-attributed energy against the meters, and the per-section
        // slices against the global totals.
        #[cfg(debug_assertions)]
        {
            if let Err(mismatch) = em.ledger.verify(energy.total_energy()) {
                panic!(
                    "energy-ledger invariant violated under policy {}: {mismatch}",
                    policy.name()
                );
            }
        }
        let trace = em.log.map(|events| trace_from_events(&events));
        Ok(RunOutcome {
            finish_time,
            missed_deadline: finish_time > self.cfg.deadline * (1.0 + 1e-9) + 1e-9,
            status: DeadlineStatus::classify(finish_time, self.cfg.deadline),
            faults: report,
            energy,
            trace,
        })
    }

    fn ready_time(&self, node: NodeId, finish: &[Option<f64>]) -> Result<f64, SimError> {
        let mut t = 0.0_f64;
        for &p in &self.g.node(node).preds {
            let f = finish[p.index()].ok_or_else(|| SimError::DependencyViolation {
                node: self.g.node(node).name.clone(),
                pred: self.g.node(p).name.clone(),
            })?;
            t = t.max(f);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::policy::{MaxSpeed, SpeedDecision};
    use andor_graph::{GraphBuilder, Scenario, Segment};

    /// Fixed-speed test policy on the continuous model.
    struct Fixed {
        speed: f64,
    }

    impl Policy for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
            SpeedDecision {
                point: OperatingPoint {
                    speed: self.speed,
                    power: self.speed.powi(3),
                },
                ran_pmp: true,
            }
        }
    }

    fn single_task() -> (AndOrGraph, SectionGraph) {
        let mut b = GraphBuilder::new();
        b.task("T", 10.0, 10.0);
        let g = b.build().expect("single task builds");
        let sg = SectionGraph::build(&g).expect("single task sections");
        (g, sg)
    }

    fn cfg(m: usize, d: f64) -> SimConfig {
        SimConfig {
            num_procs: m,
            deadline: d,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: true,
        }
    }

    fn wcet_real(g: &AndOrGraph) -> Realization {
        Realization::worst_case(g, Scenario { choices: vec![] })
    }

    #[test]
    fn single_task_at_full_speed() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        assert!((res.finish_time - 10.0).abs() < 1e-12);
        assert!(!res.missed_deadline);
        assert_eq!(res.status, DeadlineStatus::Met { slack: 10.0 });
        assert!(res.faults.is_clean());
        // busy 10 at power 1, idle (20-10) at 0.05.
        assert!((res.energy.busy_energy() - 10.0).abs() < 1e-12);
        assert!((res.energy.idle_energy() - 0.5).abs() < 1e-12);
        let tr = res.trace.expect("trace recorded");
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].proc, 0);
    }

    #[test]
    fn half_speed_quarters_busy_energy() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim
            .run(&mut Fixed { speed: 0.5 }, &wcet_real(&g))
            .expect("run succeeds");
        assert!((res.finish_time - 20.0).abs() < 1e-12);
        assert!(!res.missed_deadline);
        // 20 ms at power 0.125 = 2.5 = a quarter of the 10.0 at full speed.
        assert!((res.energy.busy_energy() - 2.5).abs() < 1e-12);
        assert_eq!(res.energy.speed_changes(), 1);
    }

    #[test]
    fn deadline_miss_detected() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 5.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        assert!(res.missed_deadline);
        assert!(!res.status.met());
        assert!((res.status.missed_by() - 5.0).abs() < 1e-12);
        assert!((res.finish_time - 10.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_use_both_processors() {
        let app = Segment::par([Segment::task("X", 6.0, 6.0), Segment::task("Y", 4.0, 4.0)]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 10.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        assert!((res.finish_time - 6.0).abs() < 1e-12);
        let tr = res.trace.expect("trace recorded");
        let procs: std::collections::HashSet<usize> = tr.iter().map(|e| e.proc).collect();
        assert_eq!(procs.len(), 2, "both processors used");
    }

    #[test]
    fn dispatch_order_serializes_starts() {
        // Three independent tasks, one processor: starts must be ordered.
        let app = Segment::par([
            Segment::task("A", 3.0, 3.0),
            Segment::task("B", 2.0, 2.0),
            Segment::task("C", 1.0, 1.0),
        ]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        let tr = res.trace.expect("trace recorded");
        for w in tr.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!((res.finish_time - 6.0).abs() < 1e-12);
    }

    #[test]
    fn or_branch_selection_follows_realization() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 5.0, 5.0)),
                (0.5, Segment::task("C", 3.0, 3.0)),
            ]),
        ]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let or_node = g
            .iter()
            .find(|(_, n)| n.kind.is_or() && n.succs.len() == 2)
            .expect("fixture has a two-way OR")
            .0;
        for (k, expect) in [(0usize, 7.0), (1usize, 5.0)] {
            let real = Realization::worst_case(
                &g,
                Scenario {
                    choices: vec![(or_node, k)],
                },
            );
            let res = sim.run(&mut MaxSpeed, &real).expect("run succeeds");
            assert!(
                (res.finish_time - expect).abs() < 1e-12,
                "branch {k}: finish={}",
                res.finish_time
            );
        }
    }

    #[test]
    fn unresolved_or_is_a_typed_error() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 5.0, 5.0)),
                (0.5, Segment::task("C", 3.0, 3.0)),
            ]),
        ]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        // Worst-case realization with *no* OR choices recorded.
        let real = Realization::worst_case(&g, Scenario { choices: vec![] });
        let err = sim.run(&mut MaxSpeed, &real).expect_err("must fail");
        assert!(matches!(err, SimError::UnresolvedOr { .. }), "{err}");
    }

    #[test]
    fn wrong_initial_point_count_is_a_typed_error() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 20.0));
        let err = sim
            .run_with_initial(&mut MaxSpeed, &wcet_real(&g), Some(&[model.max_point()]))
            .expect_err("must fail");
        assert_eq!(
            err,
            SimError::InitialPointCount {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn dependency_violation_is_a_typed_error() {
        // Two chained tasks dispatched in the wrong order.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 2.0, 2.0);
        let c = b.task("B", 2.0, 2.0);
        b.edge(a, c).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder {
            per_section: vec![vec![c, a]],
        };
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let err = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect_err("must fail");
        assert!(matches!(err, SimError::DependencyViolation { .. }), "{err}");
        assert!(err.to_string().contains("'B'"), "{err}");
    }

    #[test]
    fn speed_change_overhead_charged() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let mut config = cfg(1, 40.0);
        config.overheads = Overheads::new(700.0, 0.5).expect("valid overheads");
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let res = sim
            .run(&mut Fixed { speed: 0.5 }, &wcet_real(&g))
            .expect("run succeeds");
        // compute overhead at current (full) speed: 700 cycles / 1 GHz =
        // 0.0007 ms; transition 0.5 ms; execution 20 ms.
        let expect = 0.0007 + 0.5 + 20.0;
        assert!(
            (res.finish_time - expect).abs() < 1e-9,
            "finish={}",
            res.finish_time
        );
        assert_eq!(res.energy.speed_changes(), 1);
        assert!((res.energy.transition_time() - 0.5).abs() < 1e-12);
        // Transition charged at the higher of the two endpoint powers
        // (leaving full power: 1.0).
        assert!((res.energy.transition_energy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_transition_when_speed_unchanged() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let mut config = cfg(1, 40.0);
        config.overheads = Overheads::new(300.0, 0.5).expect("valid overheads");
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let res = sim
            .run(&mut Fixed { speed: 1.0 }, &wcet_real(&g))
            .expect("run succeeds");
        assert_eq!(res.energy.speed_changes(), 0);
        assert!((res.energy.transition_time()).abs() < 1e-12);
    }

    #[test]
    fn idle_horizon_is_deadline_when_early() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 50.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        // proc 0: 40 idle; proc 1: 50 idle. Both at 0.05.
        assert!((res.energy.idle_energy() - 0.05 * (40.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn terminal_or_ends_application() {
        // A -> OR (terminal, no successors).
        let mut b = GraphBuilder::new();
        let a = b.task("A", 3.0, 3.0);
        let o = b.or("end");
        b.edge(a, o).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 10.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        assert!((res.finish_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn and_nodes_cost_nothing() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 2.0),
            Segment::par([Segment::task("X", 3.0, 3.0), Segment::task("Y", 3.0, 3.0)]),
            Segment::task("Z", 1.0, 1.0),
        ]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(2, 20.0));
        let res = sim
            .run(&mut MaxSpeed, &wcet_real(&g))
            .expect("run succeeds");
        // 2 (A) + 3 (X||Y) + 1 (Z): AND forks/joins add zero time.
        assert!((res.finish_time - 6.0).abs() < 1e-12);
        assert!((res.energy.busy_time() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dispatch order must cover every section")]
    fn mismatched_order_panics() {
        let (g, sg) = single_task();
        let order = DispatchOrder {
            per_section: vec![],
        };
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let _ = Simulator::new(&g, &sg, &order, &model, cfg(1, 10.0));
    }

    // ---- fault injection -------------------------------------------------

    #[test]
    fn empty_fault_set_matches_fault_free_run() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let real = wcet_real(&g);
        let base = sim.run(&mut MaxSpeed, &real).expect("run succeeds");
        let faulted = sim
            .run_with_faults(&mut MaxSpeed, &real, &FaultSet::empty(g.len()))
            .expect("run succeeds");
        assert_eq!(base.finish_time, faulted.finish_time);
        assert_eq!(base.total_energy(), faulted.total_energy());
        assert!(faulted.faults.is_clean());
    }

    #[test]
    fn injected_overrun_stretches_execution_and_is_detected() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let plan = FaultPlan::overruns(1.0, 1.5, 7);
        let faults = plan.realize(&g, 0);
        let res = sim
            .run_with_faults(&mut MaxSpeed, &wcet_real(&g), &faults)
            .expect("run succeeds");
        // WCET 10 * factor 1.5 at full speed = 15 ms.
        assert!(
            (res.finish_time - 15.0).abs() < 1e-12,
            "{}",
            res.finish_time
        );
        assert_eq!(res.faults.overruns_injected, 1);
        assert_eq!(res.faults.overruns_detected, 1);
        // Already at f_max: containment engages but no escalation needed.
        assert_eq!(res.faults.recoveries, 0);
        assert!(res.status.met());
    }

    #[test]
    fn overrun_on_slow_processor_escalates_to_max() {
        // Two chained tasks at half speed; the first overruns, so the
        // second must be forced to full speed by containment.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 4.0, 4.0);
        let c = b.task("B", 4.0, 4.0);
        b.edge(a, c).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 30.0));
        let plan = FaultPlan {
            overrun_prob: 1.0,
            overrun_factor: 2.0,
            ..FaultPlan::none()
        };
        let faults = plan.realize(&g, 0);
        let res = sim
            .run_with_faults(&mut Fixed { speed: 0.5 }, &wcet_real(&g), &faults)
            .expect("run succeeds");
        assert_eq!(res.faults.overruns_injected, 2);
        assert!(res.faults.overruns_detected >= 1);
        assert_eq!(res.faults.recoveries, 1, "escalated away from half speed");
        assert!(res.faults.recovery_energy > 0.0);
        // After escalation the second task runs at f_max: 8 ms (A at half
        // speed, overrun: 4*2/0.5 = 16) + 8 (B overrun at full speed).
        assert!((res.finish_time - 24.0).abs() < 1e-9, "{}", res.finish_time);
        let tr = res.trace.expect("trace recorded");
        assert!((tr[1].speed - 1.0).abs() < 1e-12, "contained task at f_max");
    }

    #[test]
    fn containment_resets_at_section_boundary() {
        // Section 1 overruns; after the OR fires, the policy's requested
        // speed applies again in the branch section.
        let app = Segment::seq([
            Segment::task("A", 4.0, 4.0),
            Segment::branch([(1.0, Segment::task("B", 4.0, 4.0))]),
        ]);
        let g = app.lower().expect("app lowers");
        let sg = SectionGraph::build(&g).expect("sections build");
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 60.0));
        let a = g
            .iter()
            .find(|(_, n)| n.name == "A")
            .expect("fixture has task A")
            .0;
        let or_node = g
            .iter()
            .find(|(_, n)| n.kind.is_or() && !n.succs.is_empty())
            .expect("fixture has a branching OR")
            .0;
        let real = Realization::worst_case(
            &g,
            Scenario {
                choices: vec![(or_node, 0)],
            },
        );
        // Every computation node overruns. A's overrun is detected in
        // section 1 and engages containment; the OR boundary must clear it,
        // so B is *dispatched* at the policy's requested half speed again
        // (B's own overrun is then detected after it completes).
        let faults = FaultPlan::overruns(1.0, 2.0, 1).realize(&g, 0);
        let res = sim
            .run_with_faults(&mut Fixed { speed: 0.5 }, &real, &faults)
            .expect("run succeeds");
        let tr = res.trace.as_ref().expect("trace recorded");
        let b_entry = tr.iter().find(|e| e.node != a).expect("B executed");
        assert!(
            (b_entry.speed - 0.5).abs() < 1e-12,
            "containment cleared at section boundary; B ran at requested speed, got {}",
            b_entry.speed
        );
    }

    #[test]
    fn speed_failure_clamps_to_old_point_but_charges_transition() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let mut config = cfg(1, 40.0);
        config.overheads = Overheads::new(0.0, 0.5).expect("valid overheads");
        let sim = Simulator::new(&g, &sg, &order, &model, config);
        let plan = FaultPlan {
            speed_fail_prob: 1.0,
            ..FaultPlan::none()
        };
        let faults = plan.realize(&g, 0);
        let res = sim
            .run_with_faults(&mut Fixed { speed: 0.5 }, &wcet_real(&g), &faults)
            .expect("run succeeds");
        assert_eq!(res.faults.speed_failures_injected, 1);
        // The point clamped to full speed, so execution took 10 ms (not
        // 20), plus the 0.5 ms transition that was still paid.
        assert!((res.finish_time - 10.5).abs() < 1e-9, "{}", res.finish_time);
        assert!((res.energy.transition_time() - 0.5).abs() < 1e-12);
        assert!((res.final_points[0].speed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stall_delays_start_and_draws_idle_power() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 20.0));
        let plan = FaultPlan {
            stall_prob: 1.0,
            stall_ms: 3.0,
            ..FaultPlan::none()
        };
        let faults = plan.realize(&g, 0);
        let res = sim
            .run_with_faults(&mut MaxSpeed, &wcet_real(&g), &faults)
            .expect("run succeeds");
        assert_eq!(res.faults.stalls_injected, 1);
        assert!(
            (res.finish_time - 13.0).abs() < 1e-12,
            "{}",
            res.finish_time
        );
        // Idle: 3 ms stall + 7 ms tail to the deadline, at 0.05.
        assert!((res.energy.idle_energy() - 0.05 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn missed_deadline_reports_margin_instead_of_panicking() {
        let (g, sg) = single_task();
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.1).expect("continuous model");
        let sim = Simulator::new(&g, &sg, &order, &model, cfg(1, 12.0));
        let plan = FaultPlan::overruns(1.0, 2.0, 3);
        let faults = plan.realize(&g, 0);
        let res = sim
            .run_with_faults(&mut MaxSpeed, &wcet_real(&g), &faults)
            .expect("faulted run completes without panicking");
        assert!(res.missed_deadline);
        assert_eq!(res.status, DeadlineStatus::Missed { by: 8.0 });
        // Idle horizon extends to the late finish, never negative idle.
        assert!(res.energy.idle_energy().abs() < 1e-12);
    }
}
