//! Schedule-trace analysis and rendering.
//!
//! A [`RunResult`](crate::RunResult) with tracing enabled carries the full
//! schedule. This module turns it into things humans and tests consume:
//! per-processor utilization statistics, speed histograms, and an ASCII
//! Gantt chart for terminal inspection (the `pas-cli` tool and the
//! examples use it to *show* slack reclamation happening).

use crate::engine::TraceEntry;
use crate::error::SimError;
use andor_graph::AndOrGraph;
use pas_obs::SimEvent;
use std::fmt::Write as _;

/// Projects a recorded event stream down to the classic schedule trace:
/// one [`TraceEntry`] per `TaskComplete`, in emission (= dispatch)
/// order. This is the *only* way the engine builds
/// [`RunResult::trace`](crate::RunResult) — the event stream is the
/// single source of truth for schedules.
pub fn trace_from_events(events: &[SimEvent]) -> Vec<TraceEntry> {
    events
        .iter()
        .filter_map(|ev| match ev {
            SimEvent::TaskComplete {
                t,
                node,
                proc,
                start,
                speed,
                ..
            } => Some(TraceEntry {
                node: *node,
                proc: *proc,
                start: *start,
                end: *t,
                speed: *speed,
            }),
            _ => None,
        })
        .collect()
}

/// Aggregate statistics of one processor's lane in a schedule trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// Processor index.
    pub proc: usize,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Total busy time (ms), including per-dispatch overhead windows.
    pub busy: f64,
    /// Busy time divided by the horizon.
    pub utilization: f64,
    /// Time-weighted mean normalized speed while busy (0 if never busy).
    pub mean_speed: f64,
}

/// Computes per-processor statistics over `horizon` ms.
///
/// # Errors
///
/// Returns [`SimError::BadTraceQuery`] if `num_procs` is zero or
/// `horizon` is not positive — both reachable from user-supplied CLI
/// arguments, so they are typed errors, not panics.
pub fn lane_stats(
    trace: &[TraceEntry],
    num_procs: usize,
    horizon: f64,
) -> Result<Vec<LaneStats>, SimError> {
    if num_procs == 0 {
        return Err(SimError::BadTraceQuery {
            detail: "lane_stats needs at least one processor".into(),
        });
    }
    if horizon <= 0.0 || horizon.is_nan() {
        return Err(SimError::BadTraceQuery {
            detail: format!("lane_stats horizon must be positive, got {horizon}"),
        });
    }
    Ok((0..num_procs)
        .map(|p| {
            let mut busy = 0.0;
            let mut weighted_speed = 0.0;
            let mut tasks = 0;
            for e in trace.iter().filter(|e| e.proc == p) {
                let dt = e.end - e.start;
                busy += dt;
                weighted_speed += e.speed * dt;
                tasks += 1;
            }
            LaneStats {
                proc: p,
                tasks,
                busy,
                utilization: busy / horizon,
                mean_speed: if busy > 0.0 {
                    weighted_speed / busy
                } else {
                    0.0
                },
            }
        })
        .collect())
}

/// Histogram of time spent at each distinct speed, sorted by speed.
pub fn speed_histogram(trace: &[TraceEntry]) -> Vec<(f64, f64)> {
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for e in trace {
        let dt = e.end - e.start;
        match buckets
            .iter_mut()
            .find(|(s, _)| (*s - e.speed).abs() < 1e-9)
        {
            Some((_, t)) => *t += dt,
            None => buckets.push((e.speed, dt)),
        }
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite speeds"));
    buckets
}

/// Total dynamic power drawn by all processors over time, integrated into
/// `bins` equal windows covering `[0, horizon]` — each entry is the mean
/// normalized power (0 = all idle-gated, `num_procs` = everything flat
/// out) in that window. Idle and static power are *not* included (they
/// are constants; this profiles the schedule's dynamic shape).
///
/// # Errors
///
/// Returns [`SimError::BadTraceQuery`] if `bins == 0`, `horizon <= 0`,
/// or `powers` does not supply one value per trace entry.
pub fn power_profile(
    trace: &[TraceEntry],
    powers: &[f64],
    bins: usize,
    horizon: f64,
) -> Result<Vec<f64>, SimError> {
    if bins == 0 {
        return Err(SimError::BadTraceQuery {
            detail: "power_profile needs at least one bin".into(),
        });
    }
    if horizon <= 0.0 || horizon.is_nan() {
        return Err(SimError::BadTraceQuery {
            detail: format!("power_profile horizon must be positive, got {horizon}"),
        });
    }
    if trace.len() != powers.len() {
        return Err(SimError::BadTraceQuery {
            detail: format!(
                "power_profile needs one power value per trace entry \
                 ({} entries, {} powers)",
                trace.len(),
                powers.len()
            ),
        });
    }
    let width = horizon / bins as f64;
    let mut out = vec![0.0_f64; bins];
    for (e, &p) in trace.iter().zip(powers) {
        // Distribute this execution interval's energy over the bins it
        // overlaps.
        let (a, b) = (e.start.max(0.0), e.end.min(horizon));
        if b <= a {
            continue;
        }
        let first = (a / width) as usize;
        let last = ((b / width) as usize).min(bins - 1);
        for (bin, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
            let lo = bin as f64 * width;
            let hi = lo + width;
            let overlap = (b.min(hi) - a.max(lo)).max(0.0);
            *slot += p * overlap;
        }
    }
    for slot in &mut out {
        *slot /= width;
    }
    Ok(out)
}

/// Options for [`render_gantt`].
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Render the deadline marker at this time, if any.
    pub deadline: Option<f64>,
}

impl Default for GanttOptions {
    fn default() -> Self {
        Self {
            width: 72,
            deadline: None,
        }
    }
}

/// Renders an ASCII Gantt chart of the trace, one lane per processor.
///
/// Each task paints its first name character across its execution window;
/// a digit row underneath every lane shows the speed decile (`9` ≈ full
/// speed, `1` ≈ 10%). The deadline, when given, is marked with `|`.
///
/// ```text
/// p0 AAAAAAAABBBBBBBB....CCCC      |
///    99999999444444440000555500000
/// ```
pub fn render_gantt(
    trace: &[TraceEntry],
    g: &AndOrGraph,
    num_procs: usize,
    opts: &GanttOptions,
) -> String {
    let end = trace
        .iter()
        .map(|e| e.end)
        .fold(opts.deadline.unwrap_or(0.0), f64::max);
    if end <= 0.0 || opts.width == 0 {
        return String::new();
    }
    let scale = opts.width as f64 / end;
    let col = |t: f64| ((t * scale) as usize).min(opts.width.saturating_sub(1));

    let mut out = String::new();
    for p in 0..num_procs {
        let mut name_row = vec![b'.'; opts.width];
        let mut speed_row = vec![b' '; opts.width];
        for e in trace.iter().filter(|e| e.proc == p) {
            let (a, b) = (col(e.start), col(e.end).max(col(e.start)));
            let ch = g
                .node(e.node)
                .name
                .chars()
                .next()
                .filter(char::is_ascii)
                .unwrap_or('#') as u8;
            let decile = (e.speed * 10.0).round().clamp(0.0, 9.0) as u8;
            for c in a..=b.min(opts.width.saturating_sub(1)) {
                if let (Some(n), Some(s)) = (name_row.get_mut(c), speed_row.get_mut(c)) {
                    *n = ch;
                    *s = b'0' + decile;
                }
            }
        }
        if let Some(d) = opts.deadline {
            if let Some(cell) = name_row.get_mut(col(d)) {
                *cell = b'|';
            }
        }
        let _ = writeln!(out, "p{p} {}", String::from_utf8(name_row).expect("ascii"));
        let _ = writeln!(out, "   {}", String::from_utf8(speed_row).expect("ascii"));
    }
    let _ = writeln!(out, "   0{:>w$.1} ms", end, w = opts.width - 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::{GraphBuilder, NodeId};

    fn graph2() -> AndOrGraph {
        let mut b = GraphBuilder::new();
        b.task("alpha", 4.0, 2.0);
        b.task("beta", 6.0, 3.0);
        b.build().unwrap()
    }

    fn trace2() -> Vec<TraceEntry> {
        vec![
            TraceEntry {
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                end: 4.0,
                speed: 1.0,
            },
            TraceEntry {
                node: NodeId(1),
                proc: 1,
                start: 0.0,
                end: 12.0,
                speed: 0.5,
            },
        ]
    }

    #[test]
    fn lane_stats_compute_utilization_and_speed() {
        let stats = lane_stats(&trace2(), 2, 20.0).expect("valid query");
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].tasks, 1);
        assert!((stats[0].busy - 4.0).abs() < 1e-12);
        assert!((stats[0].utilization - 0.2).abs() < 1e-12);
        assert!((stats[0].mean_speed - 1.0).abs() < 1e-12);
        assert!((stats[1].utilization - 0.6).abs() < 1e-12);
        assert!((stats[1].mean_speed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_lane_has_zero_stats() {
        let stats = lane_stats(&trace2(), 3, 20.0).expect("valid query");
        assert_eq!(stats[2].tasks, 0);
        assert_eq!(stats[2].mean_speed, 0.0);
        assert_eq!(stats[2].utilization, 0.0);
    }

    #[test]
    fn speed_histogram_merges_equal_speeds() {
        let mut t = trace2();
        t.push(TraceEntry {
            node: NodeId(0),
            proc: 0,
            start: 5.0,
            end: 7.0,
            speed: 1.0,
        });
        let h = speed_histogram(&t);
        assert_eq!(h.len(), 2);
        assert!((h[0].0 - 0.5).abs() < 1e-12);
        assert!((h[0].1 - 12.0).abs() < 1e-12);
        assert!((h[1].0 - 1.0).abs() < 1e-12);
        assert!((h[1].1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_paints_names_and_deadline() {
        let g = graph2();
        let opts = GanttOptions {
            width: 40,
            deadline: Some(16.0),
        };
        let art = render_gantt(&trace2(), &g, 2, &opts);
        let lines: Vec<&str> = art.lines().collect();
        // Two lanes (2 rows each) plus the axis line.
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("p0"));
        assert!(lines[0].contains('a'), "task initial painted: {art}");
        assert!(lines[2].contains('b'));
        assert!(lines[0].contains('|'), "deadline marker: {art}");
        // Speed rows use deciles.
        assert!(lines[1].contains('9') || lines[1].contains("10"));
        assert!(lines[3].contains('5'));
    }

    #[test]
    fn gantt_handles_empty_trace() {
        let g = graph2();
        assert_eq!(
            render_gantt(&[], &g, 2, &GanttOptions::default()),
            String::new()
        );
    }

    #[test]
    fn lane_stats_rejects_bad_queries_with_typed_errors() {
        let err = lane_stats(&[], 0, 1.0).unwrap_err();
        assert!(matches!(err, SimError::BadTraceQuery { .. }), "{err}");
        let err = lane_stats(&[], 2, 0.0).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        let err = lane_stats(&[], 2, f64::NAN).unwrap_err();
        assert!(matches!(err, SimError::BadTraceQuery { .. }), "{err}");
    }

    #[test]
    fn power_profile_rejects_bad_queries_with_typed_errors() {
        let err = power_profile(&[], &[], 0, 10.0).unwrap_err();
        assert!(err.to_string().contains("bin"), "{err}");
        let err = power_profile(&[], &[], 4, -1.0).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        let err = power_profile(&trace2(), &[1.0], 4, 10.0).unwrap_err();
        assert!(err.to_string().contains("per trace entry"), "{err}");
    }

    #[test]
    fn trace_from_events_projects_task_completions() {
        let events = vec![
            pas_obs::SimEvent::TaskDispatch {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                wcet: 4.0,
                speed: 1.0,
                pmp_ms: 0.0,
                pmp_energy: 0.0,
                pmp_leakage: 0.0,
            },
            pas_obs::SimEvent::TaskComplete {
                t: 4.0,
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                exec_ms: 4.0,
                speed: 1.0,
                energy: 4.0,
                leakage: 0.0,
                recovery_premium: 0.0,
            },
            pas_obs::SimEvent::IdleStart { t: 4.0, proc: 0 },
            pas_obs::SimEvent::TaskComplete {
                t: 12.0,
                node: NodeId(1),
                proc: 1,
                start: 0.0,
                exec_ms: 12.0,
                speed: 0.5,
                energy: 1.5,
                leakage: 0.0,
                recovery_premium: 0.0,
            },
        ];
        let trace = trace_from_events(&events);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].node, NodeId(0));
        assert_eq!(trace[1].proc, 1);
        assert!((trace[1].end - 12.0).abs() < 1e-12);
        assert!((trace[1].speed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn power_profile_integrates_energy() {
        // Task at power 1.0 over [0,4], task at power 0.125 over [0,12];
        // horizon 20, 4 bins of 5 ms.
        let t = trace2();
        let powers = vec![1.0, 0.125];
        let profile = power_profile(&t, &powers, 4, 20.0).expect("valid query");
        // Bin 0 [0,5): 4 ms at 1.0 + 5 ms at 0.125 → (4 + 0.625)/5.
        assert!((profile[0] - 4.625 / 5.0).abs() < 1e-12);
        // Bin 1 [5,10): 5 ms at 0.125.
        assert!((profile[1] - 0.125).abs() < 1e-12);
        // Bin 2 [10,15): 2 ms at 0.125.
        assert!((profile[2] - 0.25 / 5.0).abs() < 1e-12);
        assert_eq!(profile[3], 0.0);
        // Total integral equals total busy energy.
        let integral: f64 = profile.iter().map(|p| p * 5.0).sum();
        assert!((integral - (4.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn power_profile_clips_to_horizon() {
        let t = vec![TraceEntry {
            node: NodeId(0),
            proc: 0,
            start: 8.0,
            end: 30.0,
            speed: 1.0,
        }];
        let profile = power_profile(&t, &[1.0], 2, 10.0).expect("valid query");
        assert_eq!(profile[0], 0.0);
        assert!((profile[1] - 2.0 / 5.0).abs() < 1e-12);
    }
}
