#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::indexing_slicing))]

//! Deterministic multi-processor execution engine for AND/OR applications.
//!
//! This crate substitutes the simulator the authors of Zhu et al., ICPP'02
//! used for their evaluation (never released). It reproduces the on-line
//! semantics of the paper's Figure 2 exactly, as a deterministic
//! discrete-event simulation rather than a threaded runtime:
//!
//! * a single global ready queue ordered by the *canonical execution order*
//!   computed off-line; processors dispatch strictly in that order
//!   (a processor whose head-of-queue task is not the next expected one
//!   sleeps and is signalled when the expected task becomes ready);
//! * AND/OR synchronization nodes are dummy tasks with zero execution time;
//!   OR nodes fire only when their whole program section has drained ("all
//!   the processors synchronize at an OR node") and then select one branch;
//! * per-dispatch speed decisions are delegated to a [`Policy`] — the six
//!   schemes of the paper live in the `pas-core` crate; this crate only
//!   ships the trivial [`MaxSpeed`] baseline (NPM);
//! * speed-computation and voltage-transition overheads are charged in both
//!   time and energy, idle processors burn the configured fraction of
//!   maximum power, and every run produces per-processor
//!   [`dvfs_power::EnergyMeter`]s plus an optional schedule trace.
//!
//! Determinism: a run is a pure function of the *realization* (OR choices +
//! actual execution times, drawn once per Monte-Carlo iteration by
//! [`Realization::sample`]) and the policy. Comparing schemes on the same
//! realization gives the paired design the paper's figures rely on.

pub mod batch;
pub mod engine;
pub mod error;
pub mod fault;
pub mod literal;
pub mod policy;
pub mod realization;
pub mod stream;
pub mod trace;

pub use batch::{
    realization_seed, run_batch, BatchConfig, BatchDistribution, BatchOutput, MetricDistribution,
};
pub use engine::{
    DispatchOrder, RunOutcome, RunResult, RunScratch, SimConfig, Simulator, TraceEntry,
};
pub use error::SimError;
pub use fault::{DeadlineStatus, FaultPlan, FaultReport, FaultSet};
pub use literal::{run_literal, LiteralResult};
pub use policy::{DispatchCtx, MaxSpeed, Policy, SpeedDecision};
pub use realization::{ExecTimeModel, Realization};
pub use stream::{run_stream, run_stream_observed, StreamResult};
pub use trace::trace_from_events;
// The observability layer the engine streams into (see `run_observed`).
pub use pas_obs::{
    ChromeSink, EnergyLedger, EventLog, Fanout, Filtered, JsonlSink, MetricsRegistry, Observer,
    RingLog, SectionKey, SectionSlice, SectionedLedger, SimEvent,
};
