//! Typed simulation errors.
//!
//! The engine used to panic on malformed inputs (dispatch orders that
//! violate dependencies, realizations that leave an OR unresolved). Those
//! conditions are reachable from user-supplied workload files, so they
//! surface as [`SimError`] values and propagate up through the harness
//! and CLI instead.

use std::fmt;

/// Why a simulation run could not be carried out.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The dispatch order schedules a node before one of its
    /// predecessors has finished.
    DependencyViolation {
        /// The node that was dispatched too early.
        node: String,
        /// The predecessor that had not finished.
        pred: String,
    },
    /// `run_with_initial` was given the wrong number of operating points.
    InitialPointCount {
        /// One point per processor.
        expected: usize,
        /// What the caller supplied.
        got: usize,
    },
    /// The realization does not resolve a reachable OR node's choice.
    UnresolvedOr {
        /// Name of the OR node with no recorded branch decision.
        or: String,
    },
    /// An OR branch has no program section (graph/plan mismatch, e.g. a
    /// plan deserialized against a different application).
    MissingBranchSection {
        /// Name of the OR node.
        or: String,
        /// The branch index with no section.
        branch: usize,
    },
    /// The event-driven interpreter ran out of events with work left —
    /// the dispatch order and the graph disagree.
    Stalled,
    /// A fault plan failed validation (probability outside `[0, 1]`,
    /// overrun factor below 1, negative stall duration, ...).
    BadFaultPlan {
        /// What was wrong.
        detail: String,
    },
    /// A trace analysis was asked a malformed question (zero processors,
    /// non-positive horizon, mismatched input lengths, ...).
    BadTraceQuery {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DependencyViolation { node, pred } => write!(
                f,
                "dispatch order violates dependencies: '{node}' dispatched before \
                 predecessor '{pred}' finished"
            ),
            SimError::InitialPointCount { expected, got } => write!(
                f,
                "expected {expected} initial operating points (one per processor), got {got}"
            ),
            SimError::UnresolvedOr { or } => {
                write!(f, "realization does not resolve OR node '{or}'")
            }
            SimError::MissingBranchSection { or, branch } => {
                write!(f, "OR node '{or}' branch {branch} has no program section")
            }
            SimError::Stalled => {
                write!(f, "simulation stalled: no events pending but work remains")
            }
            SimError::BadFaultPlan { detail } => write!(f, "invalid fault plan: {detail}"),
            SimError::BadTraceQuery { detail } => write!(f, "invalid trace query: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offenders() {
        let e = SimError::DependencyViolation {
            node: "B".into(),
            pred: "A".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("'B'") && msg.contains("'A'"), "{msg}");
        assert!(SimError::Stalled.to_string().contains("stalled"));
        let e = SimError::BadFaultPlan {
            detail: "overrun_prob = 2".into(),
        };
        assert!(e.to_string().contains("overrun_prob"), "{e}");
    }
}
