//! Batched Monte-Carlo execution: thousands of seeded realizations of one
//! plan, run against a shared immutable [`Simulator`] with per-worker
//! reused mutable state and the vendored rayon fanning chunks across
//! cores.
//!
//! The determinism contract (written down in `docs/simulator.md`) is the
//! load-bearing property here: realization `i` of a batch is executed
//! through exactly the same [`Simulator::run_into`] code path as a
//! sequential `run_observed` call would use, seeded with
//! [`realization_seed`]`(base_seed, i)` — so per-seed results are
//! bit-identical whichever engine ran them, and the batch can skip
//! `Observer` wiring (and therefore all event construction) unless a
//! realization is sampled for observability.
//!
//! Outputs are packed structure-of-arrays ([`BatchOutput`]): one column
//! per scalar metric plus a row-major `realizations × sections` energy
//! matrix, ready to fold into distribution summaries
//! ([`BatchDistribution`]) without touching per-run heap objects.

use crate::engine::{RunResult, RunScratch, Simulator};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::policy::Policy;
use crate::realization::{ExecTimeModel, Realization};
use pas_stats::{ci95_half_width, Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Derives the RNG seed for one realization of a batch.
///
/// A splitmix64-style finalizer over `base ^ (index · φ64)`: every
/// realization gets an independent, well-mixed stream, the mapping is a
/// pure function of `(base_seed, index)`, and slicing a batch across
/// workers (or across `pas serve` requests) cannot change any
/// realization's draws. This is the seeding contract `--batch` and the
/// `montecarlo` request kind both advertise.
pub fn realization_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counts events without retaining them — the cheapest possible observer,
/// wired to sampled realizations to estimate `events_per_sec` without
/// paying event construction on the unsampled hot path.
#[derive(Debug, Default)]
struct EventCounter {
    count: u64,
}

impl pas_obs::Observer for EventCounter {
    fn on_event(&mut self, _event: &pas_obs::SimEvent) {
        self.count += 1;
    }
}

/// Parameters of one batched run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Number of realizations to execute.
    pub realizations: usize,
    /// Base seed; realization `i` draws from
    /// [`realization_seed`]`(base_seed, start_index + i)`.
    pub base_seed: u64,
    /// Global index of the first realization (lets `pas serve` slice one
    /// logical batch across requests without changing any draw).
    pub start_index: u64,
    /// Realizations per work unit handed to a rayon worker. Each chunk
    /// reuses one policy instance, one [`RunScratch`] and one
    /// [`Realization`] buffer across its whole range.
    pub chunk: usize,
    /// Also materialize the full per-realization [`RunResult`]s
    /// (meters, final operating points). Off on the hot path; the
    /// bit-identity property test turns it on to compare against the
    /// sequential engine field by field.
    pub keep_results: bool,
    /// Wire an event-counting observer to every `observe_stride`-th
    /// realization (0 disables sampling). Emission is purely additive, so
    /// sampled and unsampled realizations produce bit-identical numbers;
    /// the sample feeds [`BatchOutput::events_per_realization`].
    pub observe_stride: usize,
}

impl BatchConfig {
    /// A batch of `realizations` draws from `base_seed`, with the default
    /// chunking (256 realizations per work unit) and no observability
    /// sampling.
    pub fn new(realizations: usize, base_seed: u64) -> Self {
        Self {
            realizations,
            base_seed,
            start_index: 0,
            chunk: 256,
            keep_results: false,
            observe_stride: 0,
        }
    }
}

/// The structure-of-arrays output of [`run_batch`]: column `i` of every
/// vector belongs to realization `start_index + i`.
#[derive(Debug)]
pub struct BatchOutput {
    /// Number of program sections (the row width of
    /// [`BatchOutput::section_energy`]).
    pub n_sections: usize,
    /// Application finish time per realization (ms).
    pub finish_time: Vec<f64>,
    /// Deadline-miss flag per realization.
    pub missed: Vec<bool>,
    /// Total normalized energy per realization.
    pub energy: Vec<f64>,
    /// Voltage/speed transitions charged per realization.
    pub speed_changes: Vec<u64>,
    /// Row-major `realizations × n_sections` matrix of per-section energy
    /// (see [`RunScratch::section_energy`] for the attribution rule).
    pub section_energy: Vec<f64>,
    /// Events counted across the observability-sampled realizations.
    pub events_sampled: u64,
    /// How many realizations were sampled for observability.
    pub runs_sampled: u64,
    /// Full per-realization results, present iff
    /// [`BatchConfig::keep_results`] was set.
    pub results: Option<Vec<RunResult>>,
}

impl BatchOutput {
    /// Number of realizations executed.
    pub fn len(&self) -> usize {
        self.finish_time.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.finish_time.is_empty()
    }

    /// The per-section energy row of realization `i`.
    pub fn section_row(&self, i: usize) -> &[f64] {
        let lo = i * self.n_sections;
        self.section_energy
            .get(lo..lo + self.n_sections)
            .expect("realization index within the batch")
    }

    /// Mean events per realization over the observability sample, if any
    /// realizations were sampled.
    pub fn events_per_realization(&self) -> Option<f64> {
        (self.runs_sampled > 0).then(|| self.events_sampled as f64 / self.runs_sampled as f64)
    }
}

/// One worker's contiguous slice of the batch; concatenated in chunk
/// order (rayon's collect preserves it) to form the [`BatchOutput`].
#[derive(Debug, Default)]
struct ChunkOut {
    finish_time: Vec<f64>,
    missed: Vec<bool>,
    energy: Vec<f64>,
    speed_changes: Vec<u64>,
    section_energy: Vec<f64>,
    events_sampled: u64,
    runs_sampled: u64,
    results: Vec<RunResult>,
}

/// Executes `cfg.realizations` seeded realizations of one plan, batched.
///
/// `factory` builds one policy instance per chunk; the engine calls
/// `Policy::begin_run` at every run start, so reusing one instance across
/// a chunk is bit-identical to rebuilding it per realization (pinned by
/// the `batch` property tests). `faults`, when given, realizes the fault
/// set for global index `start_index + i` — identical to what a
/// sequential loop over `FaultPlan::realize` would inject.
pub fn run_batch<'s, F>(
    sim: &Simulator<'_>,
    etm: &ExecTimeModel,
    faults: Option<&FaultPlan>,
    factory: F,
    cfg: &BatchConfig,
) -> Result<BatchOutput, SimError>
where
    F: Fn() -> Box<dyn Policy + 's> + Sync,
{
    let g = sim.graph();
    let sections = sim.sections();
    let n_sections = sections.len();
    let chunk = cfg.chunk.max(1);
    let n_chunks = cfg.realizations.div_ceil(chunk);

    let chunks: Vec<Result<ChunkOut, SimError>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(cfg.realizations);
            let mut policy = factory();
            let mut scratch = RunScratch::new();
            let mut real: Option<Realization> = None;
            let mut out = ChunkOut {
                finish_time: Vec::with_capacity(hi - lo),
                missed: Vec::with_capacity(hi - lo),
                energy: Vec::with_capacity(hi - lo),
                speed_changes: Vec::with_capacity(hi - lo),
                section_energy: Vec::with_capacity((hi - lo) * n_sections),
                ..ChunkOut::default()
            };
            for i in lo..hi {
                let global = cfg.start_index + i as u64;
                let mut rng = StdRng::seed_from_u64(realization_seed(cfg.base_seed, global));
                match real.as_mut() {
                    Some(r) => r.sample_into(g, sections, etm, &mut rng),
                    None => real = Some(Realization::sample(g, sections, etm, &mut rng)),
                }
                let r = real.as_ref().expect("realization sampled above");
                let fs = faults.map(|plan| plan.realize(g, global));
                let sampled =
                    cfg.observe_stride > 0 && global.is_multiple_of(cfg.observe_stride as u64);
                let outcome = if sampled {
                    let mut counter = EventCounter::default();
                    let o = sim.run_into(
                        &mut scratch,
                        policy.as_mut(),
                        r,
                        None,
                        fs.as_ref(),
                        Some(&mut counter),
                    )?;
                    out.events_sampled += counter.count;
                    out.runs_sampled += 1;
                    o
                } else {
                    sim.run_into(&mut scratch, policy.as_mut(), r, None, fs.as_ref(), None)?
                };
                out.finish_time.push(outcome.finish_time);
                out.missed.push(outcome.missed_deadline);
                out.energy.push(outcome.energy.total_energy());
                out.speed_changes.push(outcome.energy.speed_changes());
                out.section_energy
                    .extend_from_slice(scratch.section_energy());
                if cfg.keep_results {
                    out.results.push(RunResult {
                        finish_time: outcome.finish_time,
                        deadline: sim.config().deadline,
                        missed_deadline: outcome.missed_deadline,
                        status: outcome.status,
                        faults: outcome.faults,
                        energy: outcome.energy,
                        per_proc: scratch.meters().to_vec(),
                        trace: outcome.trace,
                        final_points: scratch.final_points().to_vec(),
                    });
                }
            }
            Ok(out)
        })
        .collect();

    let mut out = BatchOutput {
        n_sections,
        finish_time: Vec::with_capacity(cfg.realizations),
        missed: Vec::with_capacity(cfg.realizations),
        energy: Vec::with_capacity(cfg.realizations),
        speed_changes: Vec::with_capacity(cfg.realizations),
        section_energy: Vec::with_capacity(cfg.realizations * n_sections),
        events_sampled: 0,
        runs_sampled: 0,
        results: cfg.keep_results.then(Vec::new),
    };
    for chunk in chunks {
        let mut chunk = chunk?;
        out.finish_time.append(&mut chunk.finish_time);
        out.missed.append(&mut chunk.missed);
        out.energy.append(&mut chunk.energy);
        out.speed_changes.append(&mut chunk.speed_changes);
        out.section_energy.append(&mut chunk.section_energy);
        out.events_sampled += chunk.events_sampled;
        out.runs_sampled += chunk.runs_sampled;
        if let Some(results) = out.results.as_mut() {
            results.append(&mut chunk.results);
        }
    }
    Ok(out)
}

/// One metric's distribution: a fixed-geometry [`Histogram`] for
/// quantiles next to a streaming [`Summary`] for moments and extrema.
#[derive(Debug, Clone)]
pub struct MetricDistribution {
    hist: Histogram,
    summary: Summary,
}

impl MetricDistribution {
    fn new(hi: f64, bins: usize) -> Option<Self> {
        Some(Self {
            hist: Histogram::new(0.0, hi, bins)?,
            summary: Summary::new(),
        })
    }

    /// Folds one observation in.
    pub fn add(&mut self, x: f64) {
        self.hist.add(x);
        self.summary.add(x);
    }

    /// Approximate quantile from the histogram (`None` while empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// Exact maximum observed (not histogram-quantized).
    pub fn max(&self) -> f64 {
        self.summary.max()
    }

    /// The streaming moments (count, mean, sd, min/max, ci95).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Distribution summaries over one batch: energy and makespan quantiles,
/// miss rate with a confidence interval, and per-section energy ledger
/// quantiles — the tails the paper's mean-only figures flatten away.
///
/// Built strictly by folding realizations in index order
/// (see [`BatchDistribution::push`]); [`Summary`]'s streaming moments are
/// order-sensitive in the last bits, so a fold over sequential
/// [`RunResult`]s in the same order produces bit-identical summaries —
/// the equality the `batch` property tests pin.
#[derive(Debug, Clone)]
pub struct BatchDistribution {
    energy: MetricDistribution,
    makespan: MetricDistribution,
    sections: Vec<MetricDistribution>,
    runs: u64,
    misses: u64,
}

impl BatchDistribution {
    /// An empty distribution. `energy_hi` / `makespan_hi` bound the
    /// histogram ranges (observations above land in the top bin);
    /// `None` if a bound is non-positive/non-finite or `bins` is zero.
    pub fn new(energy_hi: f64, makespan_hi: f64, n_sections: usize, bins: usize) -> Option<Self> {
        Some(Self {
            energy: MetricDistribution::new(energy_hi, bins)?,
            makespan: MetricDistribution::new(makespan_hi, bins)?,
            sections: (0..n_sections)
                .map(|_| MetricDistribution::new(energy_hi, bins))
                .collect::<Option<Vec<_>>>()?,
            runs: 0,
            misses: 0,
        })
    }

    /// Folds one realization in. `section_energy` must have exactly the
    /// `n_sections` width the distribution was created with.
    pub fn push(&mut self, energy: f64, makespan: f64, missed: bool, section_energy: &[f64]) {
        assert_eq!(
            section_energy.len(),
            self.sections.len(),
            "per-section row width must match the distribution"
        );
        self.energy.add(energy);
        self.makespan.add(makespan);
        for (dist, &e) in self.sections.iter_mut().zip(section_energy) {
            dist.add(e);
        }
        self.runs += 1;
        if missed {
            self.misses += 1;
        }
    }

    /// Folds a whole [`BatchOutput`] in realization-index order.
    pub fn from_output(
        out: &BatchOutput,
        energy_hi: f64,
        makespan_hi: f64,
        bins: usize,
    ) -> Option<Self> {
        let mut dist = Self::new(energy_hi, makespan_hi, out.n_sections, bins)?;
        for (i, ((&energy, &finish), &missed)) in out
            .energy
            .iter()
            .zip(&out.finish_time)
            .zip(&out.missed)
            .enumerate()
        {
            dist.push(energy, finish, missed, out.section_row(i));
        }
        Some(dist)
    }

    /// Total energy distribution.
    pub fn energy(&self) -> &MetricDistribution {
        &self.energy
    }

    /// Makespan (finish-time) distribution.
    pub fn makespan(&self) -> &MetricDistribution {
        &self.makespan
    }

    /// Per-section energy distributions, indexed by
    /// [`SectionId::index`](andor_graph::SectionId).
    pub fn sections(&self) -> &[MetricDistribution] {
        &self.sections
    }

    /// Realizations folded in.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Deadline misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Observed miss rate in `[0, 1]` (0 while empty).
    pub fn miss_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.misses as f64 / self.runs as f64
        }
    }

    /// 95% confidence half-width of the miss rate (normal approximation
    /// to the binomial, the same ±1.96·sd/√n convention as
    /// [`ci95_half_width`]).
    pub fn miss_ci95(&self) -> f64 {
        let p = self.miss_rate();
        ci95_half_width((p * (1.0 - p)).sqrt(), self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DispatchOrder, SimConfig, Simulator};
    use crate::policy::MaxSpeed;
    use andor_graph::{AndOrGraph, GraphBuilder, SectionGraph};
    use dvfs_power::ProcessorModel;

    fn diamond() -> (AndOrGraph, SectionGraph) {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.3).expect("branch is valid");
        b.or_branch(o1, t_c, 0.7).expect("branch is valid");
        let g = b.build().expect("diamond builds");
        let sg = SectionGraph::build(&g).expect("diamond sections");
        (g, sg)
    }

    fn harness(g: &AndOrGraph, sg: &SectionGraph) -> (DispatchOrder, ProcessorModel, SimConfig) {
        let order = DispatchOrder::topological(g, sg);
        let model = ProcessorModel::transmeta5400();
        (order, model, SimConfig::new(2, 30.0))
    }

    #[test]
    fn seeds_are_well_mixed_and_pure() {
        assert_eq!(realization_seed(42, 7), realization_seed(42, 7));
        assert_ne!(realization_seed(42, 7), realization_seed(42, 8));
        assert_ne!(realization_seed(42, 7), realization_seed(43, 7));
        // Consecutive indices must not land on correlated StdRng streams:
        // the finalizer changes about half the bits between neighbours.
        let a = realization_seed(0, 1);
        let b = realization_seed(0, 2);
        let differing = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "weak mixing: {differing} bits"
        );
    }

    #[test]
    fn batch_matches_sequential_per_seed() {
        let (g, sg) = diamond();
        let (order, model, cfg) = harness(&g, &sg);
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let etm = ExecTimeModel::paper_defaults();
        let mut bcfg = BatchConfig::new(20, 0xB00);
        bcfg.chunk = 7; // force several chunks
        bcfg.keep_results = true;
        let out = run_batch(&sim, &etm, None, || Box::new(MaxSpeed), &bcfg).expect("batch runs");
        assert_eq!(out.len(), 20);
        let results = out.results.as_ref().expect("keep_results set");
        for (i, batched) in results.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(realization_seed(0xB00, i as u64));
            let real = Realization::sample(&g, &sg, &etm, &mut rng);
            let mut policy = MaxSpeed;
            let sequential = sim
                .run_full(&mut policy, &real, None, None)
                .expect("sequential runs");
            assert_eq!(
                batched.finish_time.to_bits(),
                sequential.finish_time.to_bits(),
                "realization {i}"
            );
            assert_eq!(
                batched.total_energy().to_bits(),
                sequential.total_energy().to_bits(),
                "realization {i}"
            );
            assert_eq!(
                out.finish_time[i].to_bits(),
                sequential.finish_time.to_bits()
            );
            assert_eq!(out.energy[i].to_bits(), sequential.total_energy().to_bits());
        }
    }

    #[test]
    fn start_index_slices_are_draw_stable() {
        let (g, sg) = diamond();
        let (order, model, cfg) = harness(&g, &sg);
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let etm = ExecTimeModel::paper_defaults();
        let full = run_batch(
            &sim,
            &etm,
            None,
            || Box::new(MaxSpeed),
            &BatchConfig::new(16, 9),
        )
        .expect("full batch");
        let mut tail_cfg = BatchConfig::new(6, 9);
        tail_cfg.start_index = 10;
        let tail =
            run_batch(&sim, &etm, None, || Box::new(MaxSpeed), &tail_cfg).expect("tail batch");
        for i in 0..6 {
            assert_eq!(tail.energy[i].to_bits(), full.energy[10 + i].to_bits());
            assert_eq!(
                tail.finish_time[i].to_bits(),
                full.finish_time[10 + i].to_bits()
            );
        }
    }

    #[test]
    fn section_rows_reconcile_with_total_energy() {
        let (g, sg) = diamond();
        let (order, model, cfg) = harness(&g, &sg);
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let etm = ExecTimeModel::paper_defaults();
        let out = run_batch(
            &sim,
            &etm,
            None,
            || Box::new(MaxSpeed),
            &BatchConfig::new(32, 3),
        )
        .expect("batch runs");
        for i in 0..out.len() {
            let row_sum: f64 = out.section_row(i).iter().sum();
            let total = out.energy[i];
            assert!(
                (row_sum - total).abs() <= 1e-9 * total.max(1.0),
                "realization {i}: sections sum {row_sum} vs total {total}"
            );
        }
    }

    #[test]
    fn observability_sampling_does_not_change_numbers() {
        let (g, sg) = diamond();
        let (order, model, cfg) = harness(&g, &sg);
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let etm = ExecTimeModel::paper_defaults();
        let plain = run_batch(
            &sim,
            &etm,
            None,
            || Box::new(MaxSpeed),
            &BatchConfig::new(12, 5),
        )
        .expect("plain batch");
        let mut scfg = BatchConfig::new(12, 5);
        scfg.observe_stride = 3;
        let sampled =
            run_batch(&sim, &etm, None, || Box::new(MaxSpeed), &scfg).expect("sampled batch");
        assert_eq!(sampled.runs_sampled, 4);
        assert!(sampled.events_sampled > 0);
        assert!(sampled.events_per_realization().expect("sampled") > 0.0);
        for i in 0..12 {
            assert_eq!(plain.energy[i].to_bits(), sampled.energy[i].to_bits());
            assert_eq!(
                plain.finish_time[i].to_bits(),
                sampled.finish_time[i].to_bits()
            );
        }
    }

    #[test]
    fn distribution_is_a_fold_in_index_order() {
        let (g, sg) = diamond();
        let (order, model, cfg) = harness(&g, &sg);
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let etm = ExecTimeModel::paper_defaults();
        let out = run_batch(
            &sim,
            &etm,
            None,
            || Box::new(MaxSpeed),
            &BatchConfig::new(40, 1),
        )
        .expect("batch runs");
        let dist = BatchDistribution::from_output(&out, 100.0, 50.0, 64).expect("dist builds");
        // Manual sequential fold over the SoA rows must agree bit-for-bit.
        let mut manual = BatchDistribution::new(100.0, 50.0, out.n_sections, 64).expect("dist");
        for i in 0..out.len() {
            manual.push(
                out.energy[i],
                out.finish_time[i],
                out.missed[i],
                out.section_row(i),
            );
        }
        assert_eq!(dist.runs(), 40);
        assert_eq!(dist.misses(), manual.misses());
        assert_eq!(
            dist.energy().summary().mean().to_bits(),
            manual.energy().summary().mean().to_bits()
        );
        assert_eq!(
            dist.energy().histogram().counts(),
            manual.energy().histogram().counts()
        );
        assert_eq!(
            dist.makespan().histogram().counts(),
            manual.makespan().histogram().counts()
        );
        assert!(dist.energy().quantile(0.5).expect("nonempty") <= dist.energy().max() + 1e-9);
        assert!(dist.miss_ci95() >= 0.0);
    }
}
