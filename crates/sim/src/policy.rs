//! The speed-policy interface between the engine and the scheduling schemes.

use andor_graph::NodeId;
use dvfs_power::OperatingPoint;

/// Context handed to a policy when a computation task is dispatched.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCtx {
    /// Current simulation time (ms) — the task's dispatch instant.
    pub now: f64,
    /// The operating point the chosen processor is currently set to.
    pub current_point: OperatingPoint,
    /// The task's worst-case execution time at maximum speed (ms).
    pub wcet: f64,
}

/// A policy's answer for one dispatch.
#[derive(Debug, Clone, Copy)]
pub struct SpeedDecision {
    /// The operating point to execute the task at.
    pub point: OperatingPoint,
    /// Whether the policy executed power-management-point code to make this
    /// decision. If `true`, the engine charges the speed-computation
    /// overhead (NPM never pays it; the dynamic schemes pay it per task).
    pub ran_pmp: bool,
}

/// A per-task speed selection scheme (the paper's NPM/SPM/GSS/SS/AS live
/// behind this trait in `pas-core`).
///
/// Policies are stateful: the speculative schemes track the remaining-work
/// estimate; [`Policy::begin_run`] resets state between Monte-Carlo
/// iterations, and [`Policy::on_or_fired`] lets the adaptive scheme
/// re-speculate after each OR synchronization node.
pub trait Policy {
    /// Short display name, e.g. `"GSS"`.
    fn name(&self) -> &str;

    /// Resets any per-run state. Called once before each simulation run.
    fn begin_run(&mut self) {}

    /// Chooses the operating point for `task` dispatched under `ctx`.
    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision;

    /// Notification that OR node `or` fired at `now` selecting `branch`.
    fn on_or_fired(&mut self, _or: NodeId, _branch: usize, _now: f64) {}

    /// The normalized speed a speculative policy currently assumes for
    /// future work (`None` for non-speculative policies). Purely
    /// observational: the engine reads it after [`Policy::begin_run`] and
    /// after each [`Policy::on_or_fired`] to emit `SpeculationUpdate`
    /// events; it never feeds back into scheduling.
    fn speculation(&self) -> Option<f64> {
        None
    }
}

/// The no-power-management baseline: every task at maximum speed, no PMP
/// code, no speed changes. Figures normalize against this scheme.
#[derive(Debug, Clone, Default)]
pub struct MaxSpeed;

impl Policy for MaxSpeed {
    fn name(&self) -> &str {
        "NPM"
    }

    fn speed_for(&mut self, _task: NodeId, _ctx: &DispatchCtx) -> SpeedDecision {
        SpeedDecision {
            point: OperatingPoint {
                speed: 1.0,
                power: 1.0,
            },
            ran_pmp: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_speed_is_stateless_full_speed() {
        let mut p = MaxSpeed;
        assert_eq!(p.name(), "NPM");
        let ctx = DispatchCtx {
            now: 0.0,
            current_point: OperatingPoint {
                speed: 0.5,
                power: 0.2,
            },
            wcet: 3.0,
        };
        let d = p.speed_for(NodeId(0), &ctx);
        assert_eq!(d.point.speed, 1.0);
        assert_eq!(d.point.power, 1.0);
        assert!(!d.ran_pmp);
        // Default hooks are no-ops.
        p.begin_run();
        p.on_or_fired(NodeId(1), 0, 5.0);
    }
}
