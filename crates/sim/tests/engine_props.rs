//! Property-based invariants of the execution engine, checked under a
//! randomized (but deadline-unsafe) speed policy: whatever speeds a policy
//! picks, the engine must produce a physically consistent schedule.

use andor_graph::{AndOrGraph, NodeId, SectionGraph, Segment};
use dvfs_power::{OperatingPoint, Overheads, ProcessorModel};
use mp_sim::{
    DispatchCtx, DispatchOrder, ExecTimeModel, Policy, Realization, SimConfig, Simulator,
    SpeedDecision,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A policy that roams the level table pseudo-randomly.
struct RandomSpeeds {
    model: ProcessorModel,
    rng: StdRng,
    seed: u64,
}

impl Policy for RandomSpeeds {
    fn name(&self) -> &str {
        "random"
    }
    fn begin_run(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
    fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
        let desired: f64 = self.rng.gen_range(0.01..1.2);
        SpeedDecision {
            point: self.model.quantize_up(desired),
            ran_pmp: true,
        }
    }
}

fn arb_segment(depth: u32, allow_branch: bool) -> BoxedStrategy<Segment> {
    let task = (1u32..300, 10u32..=100).prop_map(|(w, a_pct)| {
        let wcet = w as f64 / 10.0;
        Segment::task("t", wcet, wcet * a_pct as f64 / 100.0)
    });
    if depth == 0 {
        return task.boxed();
    }
    let seq = proptest::collection::vec(arb_segment(depth - 1, allow_branch), 1..4)
        .prop_map(Segment::Seq);
    let par = proptest::collection::vec(arb_segment(depth - 1, false), 2..4).prop_map(Segment::Par);
    if allow_branch {
        let branch = proptest::collection::vec((1u32..100, arb_segment(depth - 1, true)), 2..3)
            .prop_map(|arms| {
                let total: u32 = arms.iter().map(|(w, _)| w).sum();
                Segment::Branch(
                    arms.into_iter()
                        .map(|(w, s)| (w as f64 / total as f64, s))
                        .collect(),
                )
            });
        prop_oneof![task, seq, par, branch].boxed()
    } else {
        prop_oneof![task, seq, par].boxed()
    }
}

fn instance() -> impl Strategy<Value = (AndOrGraph, SectionGraph)> {
    arb_segment(3, true).prop_filter_map("lowers", |s| {
        let g = s.lower().ok()?;
        let sg = SectionGraph::build(&g).ok()?;
        Some((g, sg))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary speed choices the trace stays consistent:
    /// dependency-ordered, non-overlapping per processor, every active
    /// computation node executed exactly once, and energy/time accounting
    /// closed.
    #[test]
    fn engine_invariants_under_random_policy(
        (g, sg) in instance(),
        procs in 1usize..5,
        policy_seed in 0u64..1000,
        real_seed in 0u64..1000,
    ) {
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::xscale();
        let cfg = SimConfig {
            num_procs: procs,
            deadline: g.total_wcet() * 100.0 + 100.0,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::paper_defaults(),
            record_trace: true,
        };
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
        let mut policy = RandomSpeeds {
            model: model.clone(),
            rng: StdRng::seed_from_u64(policy_seed),
            seed: policy_seed,
        };
        let res = sim.run(&mut policy, &real).expect("run succeeds");
        let trace = res.trace.as_ref().expect("trace recorded");

        // 1. Every active computation node appears exactly once.
        let active = sg.active_nodes(&g, &real.scenario);
        let expected: Vec<NodeId> = active
            .iter()
            .copied()
            .filter(|&n| g.node(n).kind.is_computation())
            .collect();
        prop_assert_eq!(trace.len(), expected.len());
        for &n in &expected {
            prop_assert_eq!(trace.iter().filter(|e| e.node == n).count(), 1);
        }

        // 2. Dependencies respected among traced tasks.
        let finish: std::collections::HashMap<NodeId, f64> =
            trace.iter().map(|e| (e.node, e.end)).collect();
        for e in trace {
            for p in &g.node(e.node).preds {
                if let Some(&pf) = finish.get(p) {
                    prop_assert!(pf <= e.start + 1e-9);
                }
            }
        }

        // 3. No per-processor overlap; dispatch serialization holds.
        for p in 0..procs {
            let mut last = 0.0_f64;
            for e in trace.iter().filter(|e| e.proc == p) {
                prop_assert!(e.start >= last - 1e-9);
                last = e.end;
            }
        }
        for w in trace.windows(2) {
            prop_assert!(w[0].start <= w[1].start + 1e-9);
        }

        // 4. Accounting closes: horizon covered on every processor.
        let horizon = res.finish_time.max(res.deadline);
        for m in &res.per_proc {
            let covered = m.busy_time() + m.idle_time() + m.transition_time();
            prop_assert!((covered - horizon).abs() < 1e-6);
        }

        // 5. Finish time matches the last trace end.
        let last_end = trace.iter().map(|e| e.end).fold(0.0_f64, f64::max);
        prop_assert!((res.finish_time - last_end).abs() < 1e-9);
    }

    /// Uniform slowdown scales the (overhead-free) schedule exactly:
    /// makespan(s) = makespan(1)/s — the property the SPM/oracle analyses
    /// rely on.
    #[test]
    fn uniform_slowdown_scales_schedule(
        (g, sg) in instance(),
        procs in 1usize..4,
        speed_pct in 10u32..100,
    ) {
        struct Fixed(f64);
        impl Policy for Fixed {
            fn name(&self) -> &str { "fixed" }
            fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
                SpeedDecision {
                    point: OperatingPoint { speed: self.0, power: self.0.powi(3) },
                    ran_pmp: false,
                }
            }
        }
        let s = speed_pct as f64 / 100.0;
        let order = DispatchOrder::topological(&g, &sg);
        let model = ProcessorModel::continuous(0.01).expect("continuous model");
        let cfg = SimConfig {
            num_procs: procs,
            deadline: g.total_wcet() * 1000.0,
            idle_fraction: 0.0,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: false,
        };
        let sim = Simulator::new(&g, &sg, &order, &model, cfg);
        let mut rng = StdRng::seed_from_u64(7);
        let real = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
        let full = sim.run(&mut Fixed(1.0), &real).expect("run succeeds").finish_time;
        let slowed = sim.run(&mut Fixed(s), &real).expect("run succeeds").finish_time;
        prop_assert!(
            (slowed - full / s).abs() < 1e-6 * (1.0 + full / s),
            "expected {}, got {slowed}",
            full / s
        );
    }
}
