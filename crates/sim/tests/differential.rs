//! Differential testing: the fast max/plus engine versus the literal
//! Figure-2 agent interpreter must produce identical schedules — same
//! finish times, same energies, same dispatch order and processor
//! assignment — on random applications, platforms and policies.

use andor_graph::{AndOrGraph, NodeId, SectionGraph, Segment};
use dvfs_power::{Overheads, ProcessorModel};
use mp_sim::literal::run_literal;
use mp_sim::{
    DispatchCtx, DispatchOrder, ExecTimeModel, MaxSpeed, Policy, Realization, SimConfig, Simulator,
    SpeedDecision,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_segment(depth: u32, allow_branch: bool) -> BoxedStrategy<Segment> {
    let task = (1u32..300, 10u32..=100).prop_map(|(w, a_pct)| {
        let wcet = w as f64 / 10.0;
        Segment::task("t", wcet, wcet * a_pct as f64 / 100.0)
    });
    if depth == 0 {
        return task.boxed();
    }
    let seq = proptest::collection::vec(arb_segment(depth - 1, allow_branch), 1..4)
        .prop_map(Segment::Seq);
    let par = proptest::collection::vec(arb_segment(depth - 1, false), 2..4).prop_map(Segment::Par);
    if allow_branch {
        let branch = proptest::collection::vec((1u32..100, arb_segment(depth - 1, true)), 2..3)
            .prop_map(|arms| {
                let total: u32 = arms.iter().map(|(w, _)| w).sum();
                Segment::Branch(
                    arms.into_iter()
                        .map(|(w, s)| (w as f64 / total as f64, s))
                        .collect(),
                )
            });
        prop_oneof![task, seq, par, branch].boxed()
    } else {
        prop_oneof![task, seq, par].boxed()
    }
}

fn instance() -> impl Strategy<Value = (AndOrGraph, SectionGraph)> {
    arb_segment(3, true).prop_filter_map("lowers", |s| {
        let g = s.lower().ok()?;
        let sg = SectionGraph::build(&g).ok()?;
        Some((g, sg))
    })
}

/// A deterministic pseudo-random policy (same decisions in both
/// implementations as long as they dispatch in the same order — which is
/// exactly what the test verifies).
struct SeededSpeeds {
    model: ProcessorModel,
    rng: StdRng,
    seed: u64,
}

impl Policy for SeededSpeeds {
    fn name(&self) -> &str {
        "seeded"
    }
    fn begin_run(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
    fn speed_for(&mut self, _t: NodeId, _c: &DispatchCtx) -> SpeedDecision {
        let desired: f64 = self.rng.gen_range(0.05..1.1);
        SpeedDecision {
            point: self.model.quantize_up(desired),
            ran_pmp: true,
        }
    }
}

fn check(
    g: &AndOrGraph,
    sg: &SectionGraph,
    procs: usize,
    policy: &mut dyn Policy,
    real: &Realization,
    overheads: Overheads,
    model: &ProcessorModel,
) -> Result<(), TestCaseError> {
    let order = DispatchOrder::topological(g, sg);
    let cfg = SimConfig {
        num_procs: procs,
        deadline: g.total_wcet() * 100.0 + 100.0,
        idle_fraction: 0.05,
        static_fraction: 0.0,
        overheads,
        record_trace: true,
    };
    let sim = Simulator::new(g, sg, &order, model, cfg);
    let fast = sim.run(policy, real).expect("engine run succeeds");
    let lit = run_literal(g, sg, &order, model, &cfg, policy, real).expect("literal run succeeds");

    prop_assert!(
        (fast.finish_time - lit.finish_time).abs() < 1e-9,
        "finish: fast {} vs literal {}",
        fast.finish_time,
        lit.finish_time
    );
    prop_assert!(
        (fast.total_energy() - lit.energy.total_energy()).abs() < 1e-9,
        "energy: fast {} vs literal {}",
        fast.total_energy(),
        lit.energy.total_energy()
    );
    prop_assert_eq!(fast.energy.speed_changes(), lit.energy.speed_changes());

    // Dispatch order and processor assignment of computation tasks match.
    let fast_trace = fast.trace.as_ref().expect("trace recorded");
    let lit_tasks: Vec<(NodeId, usize, f64)> = lit
        .dispatches
        .iter()
        .copied()
        .filter(|(n, _, _)| g.node(*n).kind.is_computation())
        .collect();
    prop_assert_eq!(fast_trace.len(), lit_tasks.len());
    for (f, l) in fast_trace.iter().zip(&lit_tasks) {
        prop_assert_eq!(f.node, l.0, "dispatch order diverged");
        prop_assert_eq!(f.proc, l.1, "processor assignment diverged");
        prop_assert!(
            (f.start - l.2).abs() < 1e-9,
            "start time diverged: {} vs {}",
            f.start,
            l.2
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_under_max_speed(
        (g, sg) in instance(),
        procs in 1usize..5,
        real_seed in 0u64..10_000,
    ) {
        let model = ProcessorModel::xscale();
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
        check(&g, &sg, procs, &mut MaxSpeed, &real, Overheads::none(), &model)?;
    }

    #[test]
    fn engines_agree_under_random_policy_with_overheads(
        (g, sg) in instance(),
        procs in 1usize..4,
        policy_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
    ) {
        let model = ProcessorModel::transmeta5400();
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = Realization::sample(&g, &sg, &ExecTimeModel::paper_defaults(), &mut rng);
        let mut policy = SeededSpeeds {
            model: model.clone(),
            rng: StdRng::seed_from_u64(policy_seed),
            seed: policy_seed,
        };
        check(
            &g,
            &sg,
            procs,
            &mut policy,
            &real,
            Overheads::paper_defaults(),
            &model,
        )?;
    }
}
