//! Property-based invariants of the power models.

use dvfs_power::{Overheads, ProcessorModel, SpeedLevel};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ProcessorModel> {
    prop_oneof![
        Just(ProcessorModel::transmeta5400()),
        Just(ProcessorModel::xscale()),
        (0.01f64..1.0).prop_map(|s| ProcessorModel::continuous(s).unwrap()),
        (1usize..24, 0.05f64..0.95, 500f64..2000.0)
            .prop_map(|(n, r, f)| { ProcessorModel::synthetic(f, n, r, 0.7, 1.9).unwrap() }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// quantize_up returns a point that is at least as fast as requested
    /// (clamped to the speed range) and has power in (0, 1].
    #[test]
    fn quantize_up_is_sound(model in arb_model(), desired in 0.0f64..2.0) {
        let op = model.quantize_up(desired);
        prop_assert!(op.speed >= model.min_speed() - 1e-12);
        prop_assert!(op.speed <= 1.0 + 1e-12);
        prop_assert!(op.power > 0.0 && op.power <= 1.0 + 1e-12);
        if desired <= 1.0 {
            prop_assert!(op.speed >= desired.min(1.0) - 1e-9,
                "requested {desired}, got {}", op.speed);
        }
    }

    /// Quantization is monotone: asking for more speed never yields less.
    #[test]
    fn quantize_up_is_monotone(model in arb_model(), a in 0.0f64..1.5, b in 0.0f64..1.5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let op_lo = model.quantize_up(lo);
        let op_hi = model.quantize_up(hi);
        prop_assert!(op_lo.speed <= op_hi.speed + 1e-12);
        prop_assert!(op_lo.power <= op_hi.power + 1e-12);
    }

    /// Quantization is idempotent: re-quantizing a level's speed returns
    /// the same level.
    #[test]
    fn quantize_up_is_idempotent(model in arb_model(), desired in 0.0f64..1.5) {
        let op = model.quantize_up(desired);
        let again = model.quantize_up(op.speed);
        prop_assert!((op.speed - again.speed).abs() < 1e-12);
        prop_assert!((op.power - again.power).abs() < 1e-12);
    }

    /// Power is monotone in speed across any level table, and the top
    /// level always normalizes to exactly 1/1.
    #[test]
    fn table_power_monotone_and_normalized(
        n in 2usize..16, smin in 0.05f64..0.9, vmin in 0.5f64..1.0, vspread in 0.0f64..1.0
    ) {
        let model = ProcessorModel::synthetic(1000.0, n, smin, vmin, vmin + vspread).unwrap();
        let levels: Vec<SpeedLevel> = model.levels().unwrap().to_vec();
        let powers: Vec<f64> = levels.iter().map(|l| model.level_power(l)).collect();
        for w in powers.windows(2) {
            prop_assert!(w[0] < w[1] + 1e-12);
        }
        prop_assert!((powers.last().unwrap() - 1.0).abs() < 1e-12);
        let top = model.quantize_up(1.0);
        prop_assert!((top.speed - 1.0).abs() < 1e-12);
    }

    /// Energy of a task slowed uniformly never exceeds full-speed energy
    /// (convexity of the level tables: slower level ⇒ lower power ⇒
    /// power·(1/s) ≤ 1 since power ≤ s for our tables... checked directly).
    #[test]
    fn slowing_down_saves_energy(model in arb_model(), desired in 0.0f64..1.0) {
        let op = model.quantize_up(desired);
        let wcet = 10.0;
        let slowed = op.power * (wcet / op.speed);
        let full = 1.0 * wcet;
        prop_assert!(slowed <= full + 1e-9,
            "slowed {slowed} vs full {full} at s={}", op.speed);
    }

    /// Overhead computations are non-negative and scale inversely with
    /// speed.
    #[test]
    fn overhead_times_behave(cycles in 0f64..10_000.0, trans in 0f64..1.0,
                             s1 in 0.05f64..1.0, s2 in 0.05f64..1.0) {
        let o = Overheads::new(cycles, trans).unwrap();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let t_lo = o.compute_time_ms(lo, 1000.0);
        let t_hi = o.compute_time_ms(hi, 1000.0);
        prop_assert!(t_lo >= t_hi - 1e-15, "slower speed must not compute faster");
        prop_assert!(o.reservation_ms(lo, 1000.0) >= t_lo + 2.0 * trans - 1e-12);
    }
}
