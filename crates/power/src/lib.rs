#![warn(missing_docs)]

//! DVFS processor power models for the power-aware scheduling workspace.
//!
//! Implements the power/energy side of Zhu et al., ICPP'02 §2.3:
//!
//! * dynamic power `P = C_ef · V² · f` — the dominant term on a DVS
//!   processor; slowing down (and dropping voltage accordingly) reduces power
//!   cubically and task energy quadratically while stretching execution
//!   linearly;
//! * the two concrete voltage/frequency tables of the evaluation —
//!   **Table 1** (Transmeta Crusoe TM5400, 16 levels, 200–700 MHz) and
//!   **Table 2** (Intel XScale, 5 levels, 150–1000 MHz) — neither of which is
//!   linear in `f` vs `V`, which is exactly why the paper's discrete-level
//!   effects appear;
//! * an idealized continuous model (`P ∝ s³`) for ablations;
//! * synthetic level tables for the paper's stated future-work experiments
//!   (varying `S_min/S_max` and the number of levels);
//! * speed-change and speed-computation overheads (§5);
//! * idle power (5% of maximum by default) and an energy accounting meter.
//!
//! Speeds are *normalized*: `s = f / f_max ∈ (0, 1]`. Powers are normalized to
//! the maximum operating point (`P(f_max, V_max) = 1`), so energies computed
//! here divide out `C_ef` and can be compared directly against the
//! no-power-management (NPM) baseline, as the paper's figures do.
//!
//! Time unit convention: **milliseconds** everywhere in this workspace. Task
//! worst-case execution times are a few ms (the paper's synthetic task unit),
//! frequencies are in MHz, so `cycles = f_mhz · 1000 · t_ms`.

pub mod energy;
pub mod leakage;
pub mod model;
pub mod overhead;

pub use energy::EnergyMeter;
pub use leakage::{critical_speed_cubic, efficient_floor, energy_per_work};
pub use model::{OperatingPoint, ProcessorModel, SpeedLevel};
pub use overhead::Overheads;

/// Default idle power as a fraction of maximum power (paper §5: "an idle
/// processor consumes 5% of the maximal power level").
pub const DEFAULT_IDLE_FRACTION: f64 = 0.05;
