//! Static (leakage) power and the energy-efficient speed floor.
//!
//! The paper's model is pure dynamic power — state of the art for 2002.
//! Later work (including the authors' own follow-ups) showed that once
//! static/leakage power is non-negligible, slowing down stops paying off
//! below a *critical speed*: execution time grows linearly while dynamic
//! power shrinks, but leakage keeps burning the whole time.
//!
//! This module adds that extension: with normalized static power `ρ`
//! (fraction of the maximum dynamic power drawn whenever the processor is
//! active), the energy to retire one unit of work at operating point
//! `(s, P)` is
//!
//! ```text
//! E(s) = (P(s) + ρ) / s
//! ```
//!
//! For the idealized cubic model `P(s) = s³` this is `s² + ρ/s`, minimized
//! at the critical speed `s* = (ρ/2)^(1/3)`. For a discrete table the
//! floor is simply the level minimizing `E`.
//!
//! Policies wrap their desired speed with [`efficient_floor`] so they never
//! slow below the point where slowing wastes energy (see
//! `pas-core::policies::EnergyFloorPolicy`).

use crate::model::ProcessorModel;

/// Energy per unit of full-speed work at a given normalized operating
/// point, with static fraction `rho`.
pub fn energy_per_work(power: f64, speed: f64, rho: f64) -> f64 {
    debug_assert!(speed > 0.0);
    (power + rho) / speed
}

/// The critical speed of the idealized cubic model: `(ρ/2)^(1/3)`.
pub fn critical_speed_cubic(rho: f64) -> f64 {
    debug_assert!(rho >= 0.0);
    (rho / 2.0).cbrt()
}

/// The slowest *energy-efficient* speed of a processor model under static
/// fraction `rho`: running below this speed both takes longer and costs
/// more energy, so no policy should ever request less.
///
/// Returns a speed in `[min_speed, 1]`.
pub fn efficient_floor(model: &ProcessorModel, rho: f64) -> f64 {
    match model.levels() {
        Some(levels) => {
            let f_max = model.max_freq_mhz();
            levels
                .iter()
                .map(|l| {
                    let s = l.freq_mhz / f_max;
                    (s, energy_per_work(model.level_power(l), s, rho))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(s, _)| s)
                .expect("tables are non-empty")
        }
        None => critical_speed_cubic(rho).clamp(model.min_speed(), 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_leakage_floor_is_min_speed() {
        // Without leakage, slower is always more efficient: the floor is
        // the lowest level.
        for m in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
            assert!((efficient_floor(&m, 0.0) - m.min_speed()).abs() < 1e-12);
        }
        let c = ProcessorModel::continuous(0.2).unwrap();
        assert!((efficient_floor(&c, 0.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cubic_critical_speed_formula() {
        assert!((critical_speed_cubic(0.0)).abs() < 1e-12);
        assert!((critical_speed_cubic(2.0) - 1.0).abs() < 1e-12);
        let s = critical_speed_cubic(0.25);
        // dE/ds = 2s − ρ/s² = 0 at the critical point.
        assert!((2.0 * s - 0.25 / (s * s)).abs() < 1e-9);
    }

    #[test]
    fn floor_rises_with_leakage() {
        let m = ProcessorModel::transmeta5400();
        let f0 = efficient_floor(&m, 0.0);
        let f1 = efficient_floor(&m, 0.1);
        let f2 = efficient_floor(&m, 0.4);
        assert!(f0 <= f1 && f1 <= f2);
        assert!(f2 > f0, "heavy leakage must raise the floor");
    }

    #[test]
    fn floor_minimizes_energy_per_work_on_tables() {
        let m = ProcessorModel::xscale();
        let rho = 0.2;
        let floor = efficient_floor(&m, rho);
        let f_max = m.max_freq_mhz();
        let e_floor = m
            .levels()
            .unwrap()
            .iter()
            .find(|l| (l.freq_mhz / f_max - floor).abs() < 1e-12)
            .map(|l| energy_per_work(m.level_power(l), floor, rho))
            .unwrap();
        for l in m.levels().unwrap() {
            let s = l.freq_mhz / f_max;
            assert!(e_floor <= energy_per_work(m.level_power(l), s, rho) + 1e-12);
        }
    }

    #[test]
    fn continuous_floor_respects_speed_range() {
        let m = ProcessorModel::continuous(0.5).unwrap();
        // Critical speed below min_speed clamps up.
        assert_eq!(efficient_floor(&m, 0.01), 0.5);
        // Huge leakage clamps to full speed.
        assert_eq!(efficient_floor(&m, 10.0), 1.0);
    }
}
