//! Processor speed/voltage models: discrete level tables and the ideal
//! continuous model.

use serde::{Deserialize, Serialize};

/// One voltage/frequency operating level of a DVS processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedLevel {
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl SpeedLevel {
    /// Creates a level.
    pub const fn new(freq_mhz: f64, voltage: f64) -> Self {
        Self { freq_mhz, voltage }
    }
}

/// A resolved operating point: normalized speed plus normalized power.
///
/// `speed = f/f_max`; `power = (V/V_max)² · (f/f_max)` so the maximum level
/// has `power == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Normalized speed in `(0, 1]`.
    pub speed: f64,
    /// Normalized dynamic power in `(0, 1]`.
    pub power: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ModelKind {
    /// Discrete voltage/frequency table, sorted ascending by frequency.
    Discrete { levels: Vec<SpeedLevel> },
    /// Idealized continuous DVS: any speed in `[min_speed, 1]`, `P = s³`
    /// (supply voltage assumed proportional to frequency).
    Continuous { min_speed: f64 },
}

/// A processor's DVS capability: which speeds it can run at and at what
/// power.
///
/// # Examples
///
/// ```
/// use dvfs_power::ProcessorModel;
///
/// let tm = ProcessorModel::transmeta5400();
/// assert_eq!(tm.num_levels(), Some(16));
/// // Requesting 50% speed rounds *up* to the next available level.
/// let op = tm.quantize_up(0.5);
/// assert!(op.speed >= 0.5);
/// assert!(op.power <= 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessorModel {
    name: String,
    kind: ModelKind,
}

impl ProcessorModel {
    /// **Table 1** — Transmeta Crusoe TM5400: 16 voltage/speed settings
    /// between 200 MHz (1.10 V) and 700 MHz (1.65 V).
    ///
    /// The paper's printed table is unreadable in the available scan; the 16
    /// levels here interpolate the publicly documented LongRun anchor points
    /// (200/1.10, 300/1.20, 400/1.225, 500/1.35, 600/1.50, 700/1.65) on an
    /// evenly spaced 33⅓ MHz frequency grid, preserving the endpoints and the
    /// non-linear f–V relationship the paper highlights.
    pub fn transmeta5400() -> Self {
        const TABLE: [(f64, f64); 16] = [
            (200.0, 1.100),
            (233.0, 1.133),
            (266.0, 1.166),
            (300.0, 1.200),
            (333.0, 1.208),
            (366.0, 1.217),
            (400.0, 1.225),
            (433.0, 1.267),
            (466.0, 1.308),
            (500.0, 1.350),
            (533.0, 1.400),
            (566.0, 1.450),
            (600.0, 1.500),
            (633.0, 1.550),
            (666.0, 1.600),
            (700.0, 1.650),
        ];
        Self::from_levels(
            "Transmeta TM5400",
            TABLE.iter().map(|&(f, v)| SpeedLevel::new(f, v)).collect(),
        )
        .expect("static table is valid")
    }

    /// **Table 2** — Intel XScale: 5 voltage/speed settings, 150–1000 MHz.
    ///
    /// Fewer levels with wider gaps than the Transmeta model; the paper's
    /// XScale curves show sharp jumps whenever a scheme's desired speed
    /// crosses a level boundary.
    pub fn xscale() -> Self {
        const TABLE: [(f64, f64); 5] = [
            (150.0, 0.75),
            (400.0, 1.00),
            (600.0, 1.30),
            (800.0, 1.60),
            (1000.0, 1.80),
        ];
        Self::from_levels(
            "Intel XScale",
            TABLE.iter().map(|&(f, v)| SpeedLevel::new(f, v)).collect(),
        )
        .expect("static table is valid")
    }

    /// Idealized continuous model: any normalized speed in
    /// `[min_speed, 1]`, power `s³` (voltage proportional to frequency).
    ///
    /// Returns `None` unless `0 < min_speed <= 1`.
    pub fn continuous(min_speed: f64) -> Option<Self> {
        if !(min_speed > 0.0 && min_speed <= 1.0) {
            return None;
        }
        Some(Self {
            name: format!("Continuous(smin={min_speed})"),
            kind: ModelKind::Continuous { min_speed },
        })
    }

    /// Builds a model from an explicit level table.
    ///
    /// Returns `None` if the table is empty, has non-positive frequencies or
    /// voltages, or is not strictly increasing in both frequency and voltage
    /// (a level that is faster but not more power-hungry would never be
    /// skipped, and real tables are monotone).
    pub fn from_levels(name: impl Into<String>, levels: Vec<SpeedLevel>) -> Option<Self> {
        if levels.is_empty() {
            return None;
        }
        for w in levels.windows(2) {
            if w[0].freq_mhz >= w[1].freq_mhz || w[0].voltage > w[1].voltage {
                return None;
            }
        }
        if levels.iter().any(|l| l.freq_mhz <= 0.0 || l.voltage <= 0.0) {
            return None;
        }
        Some(Self {
            name: name.into(),
            kind: ModelKind::Discrete { levels },
        })
    }

    /// Synthetic evenly spaced table for the `S_min`/level-count ablations
    /// (the paper's stated future work): `n_levels` frequencies from
    /// `smin_ratio·f_max` to `f_max`, voltages interpolated linearly from
    /// `v_min` to `v_max`.
    ///
    /// Returns `None` if `n_levels == 0`, the ratio is outside `(0, 1]`, or
    /// `n_levels > 1` with `smin_ratio == 1`.
    pub fn synthetic(
        f_max_mhz: f64,
        n_levels: usize,
        smin_ratio: f64,
        v_min: f64,
        v_max: f64,
    ) -> Option<Self> {
        if n_levels == 0
            || !(smin_ratio > 0.0 && smin_ratio <= 1.0)
            || f_max_mhz <= 0.0
            || v_min <= 0.0
            || v_max < v_min
        {
            return None;
        }
        if n_levels > 1 && smin_ratio == 1.0 {
            return None;
        }
        let levels: Vec<SpeedLevel> = (0..n_levels)
            .map(|i| {
                let t = if n_levels == 1 {
                    1.0
                } else {
                    i as f64 / (n_levels - 1) as f64
                };
                let f = f_max_mhz * (smin_ratio + (1.0 - smin_ratio) * t);
                let v = v_min + (v_max - v_min) * t;
                SpeedLevel::new(f, v)
            })
            .collect();
        Self::from_levels(
            format!("Synthetic({n_levels} levels, smin={smin_ratio})"),
            levels,
        )
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum frequency in MHz (1000·cycles per ms at full speed).
    pub fn max_freq_mhz(&self) -> f64 {
        match &self.kind {
            ModelKind::Discrete { levels } => levels.last().expect("non-empty").freq_mhz,
            // The continuous model is frequency-agnostic; pick 1 GHz so cycle
            //-denominated overheads still resolve to sensible times.
            ModelKind::Continuous { .. } => 1000.0,
        }
    }

    /// Minimum normalized speed the processor can run at (the paper's
    /// `S_min`); tasks can never run slower than this.
    pub fn min_speed(&self) -> f64 {
        match &self.kind {
            ModelKind::Discrete { levels } => {
                levels.first().expect("non-empty").freq_mhz / self.max_freq_mhz()
            }
            ModelKind::Continuous { min_speed } => *min_speed,
        }
    }

    /// Number of discrete levels, or `None` for the continuous model.
    pub fn num_levels(&self) -> Option<usize> {
        match &self.kind {
            ModelKind::Discrete { levels } => Some(levels.len()),
            ModelKind::Continuous { .. } => None,
        }
    }

    /// The discrete level table, or `None` for the continuous model.
    pub fn levels(&self) -> Option<&[SpeedLevel]> {
        match &self.kind {
            ModelKind::Discrete { levels } => Some(levels),
            ModelKind::Continuous { .. } => None,
        }
    }

    /// Normalized power of a *discrete* level:
    /// `(V/V_max)² · (f/f_max)`.
    pub fn level_power(&self, level: &SpeedLevel) -> f64 {
        match &self.kind {
            ModelKind::Discrete { levels } => {
                let top = levels.last().expect("non-empty");
                (level.voltage / top.voltage).powi(2) * (level.freq_mhz / top.freq_mhz)
            }
            ModelKind::Continuous { .. } => {
                let s = level.freq_mhz / self.max_freq_mhz();
                s.powi(3)
            }
        }
    }

    /// Maps a desired normalized speed to the cheapest operating point that
    /// is *at least* that fast (deadline safety requires rounding up).
    ///
    /// Requests below the minimum level clamp to the minimum level — this is
    /// the `S_min` effect responsible for several of the paper's findings.
    /// Requests above 1 clamp to the maximum level.
    pub fn quantize_up(&self, desired_speed: f64) -> OperatingPoint {
        match &self.kind {
            ModelKind::Discrete { levels } => {
                let f_max = self.max_freq_mhz();
                let level = levels
                    .iter()
                    .find(|l| l.freq_mhz / f_max >= desired_speed - 1e-12)
                    .unwrap_or_else(|| levels.last().expect("non-empty"));
                OperatingPoint {
                    speed: level.freq_mhz / f_max,
                    power: self.level_power(level),
                }
            }
            ModelKind::Continuous { min_speed } => {
                let s = desired_speed.clamp(*min_speed, 1.0);
                OperatingPoint {
                    speed: s,
                    power: s.powi(3),
                }
            }
        }
    }

    /// The maximum operating point (`speed == 1`, `power == 1`).
    pub fn max_point(&self) -> OperatingPoint {
        OperatingPoint {
            speed: 1.0,
            power: 1.0,
        }
    }

    /// Every operating point a *discrete* model can run at, slowest first,
    /// or `None` for the continuous model. This is the exact image of
    /// [`Self::quantize_up`] — static analyses enumerate it to bound
    /// quantities over all reachable speeds.
    pub fn discrete_points(&self) -> Option<Vec<OperatingPoint>> {
        let f_max = self.max_freq_mhz();
        self.levels().map(|levels| {
            levels
                .iter()
                .map(|l| OperatingPoint {
                    speed: l.freq_mhz / f_max,
                    power: self.level_power(l),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmeta_matches_paper_table1_shape() {
        let m = ProcessorModel::transmeta5400();
        assert_eq!(m.num_levels(), Some(16));
        let levels = m.levels().unwrap();
        assert_eq!(levels[0].freq_mhz, 200.0);
        assert_eq!(levels[0].voltage, 1.10);
        assert_eq!(levels[15].freq_mhz, 700.0);
        assert_eq!(levels[15].voltage, 1.65);
        assert!((m.min_speed() - 200.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn xscale_matches_paper_table2() {
        let m = ProcessorModel::xscale();
        let levels = m.levels().unwrap();
        assert_eq!(levels.len(), 5);
        let expect = [
            (150.0, 0.75),
            (400.0, 1.00),
            (600.0, 1.30),
            (800.0, 1.60),
            (1000.0, 1.80),
        ];
        for (l, (f, v)) in levels.iter().zip(expect) {
            assert_eq!(l.freq_mhz, f);
            assert_eq!(l.voltage, v);
        }
        assert!((m.min_speed() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn tables_are_monotone_and_nonlinear() {
        for m in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
            let levels = m.levels().unwrap();
            for w in levels.windows(2) {
                assert!(w[0].freq_mhz < w[1].freq_mhz);
                assert!(w[0].voltage <= w[1].voltage);
            }
            // Non-linear f-V relation (the paper stresses this): the ratio
            // V/f is not constant across the table.
            let r0 = levels[0].voltage / levels[0].freq_mhz;
            let rn = levels[levels.len() - 1].voltage / levels[levels.len() - 1].freq_mhz;
            assert!((r0 - rn).abs() > 1e-6);
        }
    }

    #[test]
    fn quantize_rounds_up() {
        let m = ProcessorModel::xscale();
        // 0.55 of 1000 MHz = 550 MHz -> 600 MHz level.
        let op = m.quantize_up(0.55);
        assert!((op.speed - 0.6).abs() < 1e-12);
        // Exactly at a level stays there.
        let op = m.quantize_up(0.6);
        assert!((op.speed - 0.6).abs() < 1e-12);
    }

    #[test]
    fn quantize_clamps_to_min_and_max() {
        let m = ProcessorModel::xscale();
        let lo = m.quantize_up(0.01);
        assert!((lo.speed - 0.15).abs() < 1e-12);
        let hi = m.quantize_up(7.0);
        assert!((hi.speed - 1.0).abs() < 1e-12);
        assert!((hi.power - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_monotone_in_level() {
        for m in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
            let levels = m.levels().unwrap();
            let powers: Vec<f64> = levels.iter().map(|l| m.level_power(l)).collect();
            for w in powers.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!((powers.last().unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn halving_speed_saves_quadratic_energy_continuous() {
        // Paper §2.3 worked example: half speed in double time consumes 1/4
        // of the energy (with V ∝ f).
        let m = ProcessorModel::continuous(0.1).unwrap();
        let full = m.quantize_up(1.0);
        let half = m.quantize_up(0.5);
        let e_full = full.power * 1.0; // c time units at full speed
        let e_half = half.power * 2.0; // 2c time units at half speed
        assert!((e_half / e_full - 0.25).abs() < 1e-12);
    }

    #[test]
    fn continuous_clamps_to_min_speed() {
        let m = ProcessorModel::continuous(0.4).unwrap();
        let op = m.quantize_up(0.2);
        assert_eq!(op.speed, 0.4);
        let op = m.quantize_up(0.7);
        assert_eq!(op.speed, 0.7);
        assert!((op.power - 0.343).abs() < 1e-12);
    }

    #[test]
    fn continuous_rejects_bad_min() {
        assert!(ProcessorModel::continuous(0.0).is_none());
        assert!(ProcessorModel::continuous(1.5).is_none());
    }

    #[test]
    fn from_levels_validates() {
        assert!(ProcessorModel::from_levels("e", vec![]).is_none());
        // Non-increasing frequency.
        assert!(ProcessorModel::from_levels(
            "bad",
            vec![SpeedLevel::new(500.0, 1.0), SpeedLevel::new(400.0, 1.2)]
        )
        .is_none());
        // Decreasing voltage.
        assert!(ProcessorModel::from_levels(
            "bad",
            vec![SpeedLevel::new(400.0, 1.2), SpeedLevel::new(500.0, 1.0)]
        )
        .is_none());
        // Non-positive entries.
        assert!(ProcessorModel::from_levels("bad", vec![SpeedLevel::new(0.0, 1.0)]).is_none());
    }

    #[test]
    fn synthetic_table_spans_requested_range() {
        let m = ProcessorModel::synthetic(1000.0, 5, 0.2, 0.8, 1.8).unwrap();
        let levels = m.levels().unwrap();
        assert_eq!(levels.len(), 5);
        assert!((levels[0].freq_mhz - 200.0).abs() < 1e-9);
        assert!((levels[4].freq_mhz - 1000.0).abs() < 1e-9);
        assert!((m.min_speed() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn synthetic_single_level_is_fmax() {
        let m = ProcessorModel::synthetic(500.0, 1, 1.0, 1.0, 1.0).unwrap();
        assert_eq!(m.num_levels(), Some(1));
        assert_eq!(m.min_speed(), 1.0);
    }

    #[test]
    fn synthetic_rejects_degenerate() {
        assert!(ProcessorModel::synthetic(500.0, 0, 0.5, 1.0, 1.5).is_none());
        assert!(ProcessorModel::synthetic(500.0, 4, 0.0, 1.0, 1.5).is_none());
        assert!(ProcessorModel::synthetic(500.0, 4, 1.0, 1.0, 1.5).is_none());
        assert!(ProcessorModel::synthetic(-1.0, 4, 0.5, 1.0, 1.5).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let m = ProcessorModel::transmeta5400();
        let json = serde_json::to_string(&m).unwrap();
        let back: ProcessorModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_levels(), Some(16));
        assert_eq!(back.name(), "Transmeta TM5400");
    }
}
