//! Energy accounting.
//!
//! All energies are in normalized units: power is relative to the maximum
//! operating point (`P_max = 1`), time is in ms, so `energy = power · time`
//! integrates to "P_max-milliseconds". Because every scheme in an experiment
//! is normalized by the NPM baseline measured in the same units, the unit
//! cancels — exactly as in the paper's figures.

use serde::{Deserialize, Serialize};

/// Per-processor (or aggregated) energy meter.
///
/// Tracks the three ways a DVS processor burns energy in this model —
/// executing at some operating point, idling at the idle fraction, and
/// sitting through voltage/speed transitions — plus the event counts the
/// paper reasons about (number of speed changes).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    busy_energy: f64,
    idle_energy: f64,
    transition_energy: f64,
    busy_time: f64,
    idle_time: f64,
    transition_time: f64,
    speed_changes: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `dt` ms of execution at normalized power `power`.
    pub fn add_busy(&mut self, power: f64, dt: f64) {
        debug_assert!(power >= 0.0 && dt >= 0.0);
        self.busy_energy += power * dt;
        self.busy_time += dt;
    }

    /// Charges `dt` ms of idle time at `idle_fraction` of maximum power.
    pub fn add_idle(&mut self, idle_fraction: f64, dt: f64) {
        debug_assert!(idle_fraction >= 0.0 && dt >= 0.0);
        self.idle_energy += idle_fraction * dt;
        self.idle_time += dt;
    }

    /// Charges one voltage/speed transition lasting `dt` ms at normalized
    /// power `power` (we conservatively charge the higher of the two
    /// endpoint powers; callers decide).
    pub fn add_transition(&mut self, power: f64, dt: f64) {
        debug_assert!(power >= 0.0 && dt >= 0.0);
        self.transition_energy += power * dt;
        self.transition_time += dt;
        self.speed_changes += 1;
    }

    /// Merges another meter into this one (aggregate across processors).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.busy_energy += other.busy_energy;
        self.idle_energy += other.idle_energy;
        self.transition_energy += other.transition_energy;
        self.busy_time += other.busy_time;
        self.idle_time += other.idle_time;
        self.transition_time += other.transition_time;
        self.speed_changes += other.speed_changes;
    }

    /// Total energy (busy + idle + transitions).
    pub fn total_energy(&self) -> f64 {
        self.busy_energy + self.idle_energy + self.transition_energy
    }

    /// Energy spent executing tasks.
    pub fn busy_energy(&self) -> f64 {
        self.busy_energy
    }

    /// Energy spent idling/sleeping.
    pub fn idle_energy(&self) -> f64 {
        self.idle_energy
    }

    /// Energy spent during voltage/speed transitions.
    pub fn transition_energy(&self) -> f64 {
        self.transition_energy
    }

    /// Time spent executing tasks, in ms.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Time spent idle, in ms.
    pub fn idle_time(&self) -> f64 {
        self.idle_time
    }

    /// Time spent in transitions, in ms.
    pub fn transition_time(&self) -> f64 {
        self.transition_time
    }

    /// Number of voltage/speed changes performed.
    pub fn speed_changes(&self) -> u64 {
        self.speed_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_each_bucket() {
        let mut m = EnergyMeter::new();
        m.add_busy(0.5, 10.0);
        m.add_idle(0.05, 4.0);
        m.add_transition(1.0, 0.005);
        assert!((m.busy_energy() - 5.0).abs() < 1e-12);
        assert!((m.idle_energy() - 0.2).abs() < 1e-12);
        assert!((m.transition_energy() - 0.005).abs() < 1e-12);
        assert!((m.total_energy() - 5.205).abs() < 1e-12);
        assert_eq!(m.speed_changes(), 1);
        assert!((m.busy_time() - 10.0).abs() < 1e-12);
        assert!((m.idle_time() - 4.0).abs() < 1e-12);
        assert!((m.transition_time() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EnergyMeter::new();
        a.add_busy(1.0, 1.0);
        a.add_transition(0.5, 0.01);
        let mut b = EnergyMeter::new();
        b.add_busy(1.0, 2.0);
        b.add_idle(0.05, 10.0);
        b.add_transition(0.5, 0.01);
        a.merge(&b);
        assert!((a.busy_energy() - 3.0).abs() < 1e-12);
        assert!((a.idle_energy() - 0.5).abs() < 1e-12);
        assert_eq!(a.speed_changes(), 2);
    }

    #[test]
    fn fresh_meter_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.speed_changes(), 0);
    }
}
