//! Speed-management overheads (paper §5).
//!
//! Two overheads are charged by the simulator:
//!
//! 1. **Speed computation** — running the power-management-point code that
//!    computes the new speed. The paper measured ~300 cycles on
//!    SimpleScalar; we charge `cycles / (s · f_max)` of wall time at the
//!    processor's *current* speed `s`.
//! 2. **Voltage/speed transition** — the hardware latency of actually
//!    changing the operating point. The paper assumes a constant per change
//!    (5 µs in Figure 5) and notes current hardware needs tens to hundreds of
//!    microseconds; it is a parameter here and is swept in ablation A3.

use serde::{Deserialize, Serialize};

/// Overhead parameters, in the workspace's canonical units
/// (milliseconds / MHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Cycles needed to compute a new speed at a power management point.
    pub speed_compute_cycles: f64,
    /// Wall-clock time of one voltage/speed transition, in ms.
    pub transition_time_ms: f64,
}

impl Overheads {
    /// The paper's defaults: 300 cycles to compute a speed, 5 µs per
    /// voltage/speed change.
    pub const fn paper_defaults() -> Self {
        Self {
            speed_compute_cycles: 300.0,
            transition_time_ms: 0.005,
        }
    }

    /// Zero overhead (for the idealized comparisons and unit tests).
    pub const fn none() -> Self {
        Self {
            speed_compute_cycles: 0.0,
            transition_time_ms: 0.0,
        }
    }

    /// Creates a custom overhead configuration. Returns `None` on negative
    /// or non-finite values.
    pub fn new(speed_compute_cycles: f64, transition_time_ms: f64) -> Option<Self> {
        if speed_compute_cycles >= 0.0
            && transition_time_ms >= 0.0
            && speed_compute_cycles.is_finite()
            && transition_time_ms.is_finite()
        {
            Some(Self {
                speed_compute_cycles,
                transition_time_ms,
            })
        } else {
            None
        }
    }

    /// Wall-clock time (ms) to run the speed-computation code at normalized
    /// speed `speed` on a processor whose maximum frequency is `f_max_mhz`.
    ///
    /// `f_max_mhz` MHz means `f_max_mhz · 1000` cycles per ms at full speed.
    pub fn compute_time_ms(&self, speed: f64, f_max_mhz: f64) -> f64 {
        if self.speed_compute_cycles == 0.0 {
            return 0.0;
        }
        debug_assert!(speed > 0.0 && f_max_mhz > 0.0);
        self.speed_compute_cycles / (speed * f_max_mhz * 1000.0)
    }

    /// Total time (ms) a task dispatch must reserve before lowering the
    /// speed: computing the new speed plus (possibly) two transitions — one
    /// to slow down now and one to speed back up for a later task whose
    /// guaranteed schedule assumed full speed.
    ///
    /// This is the conservative reservation that preserves Theorem 1 under
    /// overheads, following the treatment in the authors' companion paper.
    pub fn reservation_ms(&self, current_speed: f64, f_max_mhz: f64) -> f64 {
        self.compute_time_ms(current_speed, f_max_mhz) + 2.0 * self.transition_time_ms
    }
}

impl Default for Overheads {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section5() {
        let o = Overheads::paper_defaults();
        assert_eq!(o.speed_compute_cycles, 300.0);
        assert_eq!(o.transition_time_ms, 0.005);
    }

    #[test]
    fn compute_time_scales_with_speed() {
        let o = Overheads::paper_defaults();
        // 300 cycles at 700 MHz full speed: 300 / 700e3 ms.
        let full = o.compute_time_ms(1.0, 700.0);
        assert!((full - 300.0 / 700_000.0).abs() < 1e-15);
        // Half speed doubles the time.
        let half = o.compute_time_ms(0.5, 700.0);
        assert!((half - 2.0 * full).abs() < 1e-15);
    }

    #[test]
    fn zero_overhead_is_free() {
        let o = Overheads::none();
        assert_eq!(o.compute_time_ms(0.5, 700.0), 0.0);
        assert_eq!(o.reservation_ms(0.5, 700.0), 0.0);
    }

    #[test]
    fn reservation_includes_two_transitions() {
        let o = Overheads::new(0.0, 0.01).unwrap();
        assert!((o.reservation_ms(1.0, 700.0) - 0.02).abs() < 1e-15);
    }

    #[test]
    fn new_rejects_negative_and_nonfinite() {
        assert!(Overheads::new(-1.0, 0.0).is_none());
        assert!(Overheads::new(0.0, -1.0).is_none());
        assert!(Overheads::new(f64::NAN, 0.0).is_none());
        assert!(Overheads::new(0.0, f64::INFINITY).is_none());
    }
}
