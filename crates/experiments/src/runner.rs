//! The Monte-Carlo experiment harness.

use pas_core::{Scheme, Setup};
use pas_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// How an experiment point is evaluated.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Monte-Carlo replications per point (the paper uses 1000).
    pub replications: usize,
    /// Base seed; replication `r` uses a seed derived from it, so results
    /// are exactly reproducible.
    pub base_seed: u64,
    /// Schemes to evaluate. Must include [`Scheme::Npm`] if normalized
    /// energies are wanted.
    pub schemes: Vec<Scheme>,
    /// Actual-execution-time model.
    pub etm: mp_sim::ExecTimeModel,
    /// Also evaluate the clairvoyant single-speed bound on every
    /// realization (see [`pas_core::oracle`]).
    pub include_oracle: bool,
}

impl ExperimentConfig {
    /// The paper's defaults: 1000 replications of all six schemes.
    pub fn paper_defaults() -> Self {
        Self {
            replications: 1000,
            base_seed: 0x1CC_2002,
            schemes: Scheme::ALL.to_vec(),
            etm: mp_sim::ExecTimeModel::paper_defaults(),
            include_oracle: false,
        }
    }

    /// A light configuration for smoke tests and benchmarks.
    pub fn quick(replications: usize) -> Self {
        Self {
            replications,
            ..Self::paper_defaults()
        }
    }
}

/// Aggregated results for one scheme at one experiment point.
#[derive(Debug, Clone)]
pub struct SchemeStats {
    /// The scheme.
    pub scheme: Scheme,
    /// Per-run total energy (normalized power units × ms).
    pub energy: Summary,
    /// Per-run busy (execution) energy.
    pub busy_energy: Summary,
    /// Per-run idle energy.
    pub idle_energy: Summary,
    /// Per-run voltage-transition energy.
    pub transition_energy: Summary,
    /// Per-run voltage/speed change counts.
    pub speed_changes: Summary,
    /// Number of runs that missed the deadline (must stay 0; reported so
    /// experiments surface violations instead of hiding them).
    pub deadline_misses: u64,
}

/// All schemes' statistics at one experiment point.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// One entry per configured scheme, in configuration order.
    pub stats: Vec<SchemeStats>,
    /// Clairvoyant-bound energy, when requested via
    /// [`ExperimentConfig::include_oracle`].
    pub oracle_energy: Option<Summary>,
}

impl EvalResult {
    /// Statistics for one scheme.
    pub fn of(&self, scheme: Scheme) -> Option<&SchemeStats> {
        self.stats.iter().find(|s| s.scheme == scheme)
    }

    /// Mean energy of `scheme` divided by mean energy of NPM.
    pub fn normalized_energy(&self, scheme: Scheme) -> Option<f64> {
        let npm = self.of(Scheme::Npm)?.energy.mean();
        let e = self.of(scheme)?.energy.mean();
        (npm > 0.0).then(|| e / npm)
    }

    /// Mean energy of `scheme` divided by the clairvoyant bound's mean
    /// energy (≥ 1 in expectation). `None` unless the oracle was included.
    pub fn oracle_gap(&self, scheme: Scheme) -> Option<f64> {
        let oracle = self.oracle_energy.as_ref()?.mean();
        let e = self.of(scheme)?.energy.mean();
        (oracle > 0.0).then(|| e / oracle)
    }

    /// Total deadline misses across all schemes.
    pub fn total_misses(&self) -> u64 {
        self.stats.iter().map(|s| s.deadline_misses).sum()
    }
}

/// Evaluates every configured scheme on `cfg.replications` shared
/// realizations of `setup`. Replications run in parallel; the result is
/// independent of thread count because each replication derives its RNG
/// from `base_seed` and the replication index alone.
pub fn evaluate(setup: &Setup, cfg: &ExperimentConfig) -> EvalResult {
    struct RepSample {
        energy: f64,
        busy: f64,
        idle: f64,
        transition: f64,
        changes: u64,
        missed: bool,
    }
    let per_rep: Vec<(Vec<RepSample>, Option<f64>)> = (0..cfg.replications)
        .into_par_iter()
        .map(|r| {
            // SplitMix-style seed derivation keeps streams independent.
            let seed = cfg
                .base_seed
                .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            let real = setup.sample(&cfg.etm, &mut rng);
            let samples = cfg
                .schemes
                .iter()
                .map(|&scheme| {
                    let res = setup.run(scheme, &real);
                    RepSample {
                        energy: res.total_energy(),
                        busy: res.energy.busy_energy(),
                        idle: res.energy.idle_energy(),
                        transition: res.energy.transition_energy(),
                        changes: res.energy.speed_changes(),
                        missed: res.missed_deadline,
                    }
                })
                .collect();
            let oracle = cfg
                .include_oracle
                .then(|| setup.run_oracle(&real).total_energy());
            (samples, oracle)
        })
        .collect();

    let stats = cfg
        .schemes
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let mut energy = Summary::new();
            let mut busy_energy = Summary::new();
            let mut idle_energy = Summary::new();
            let mut transition_energy = Summary::new();
            let mut speed_changes = Summary::new();
            let mut deadline_misses = 0u64;
            for (rep, _) in &per_rep {
                let s = &rep[i];
                energy.add(s.energy);
                busy_energy.add(s.busy);
                idle_energy.add(s.idle);
                transition_energy.add(s.transition);
                speed_changes.add(s.changes as f64);
                deadline_misses += s.missed as u64;
            }
            SchemeStats {
                scheme,
                energy,
                busy_energy,
                idle_energy,
                transition_energy,
                speed_changes,
                deadline_misses,
            }
        })
        .collect();
    let oracle_energy = cfg.include_oracle.then(|| {
        per_rep
            .iter()
            .filter_map(|(_, o)| *o)
            .collect::<Summary>()
    });
    EvalResult {
        stats,
        oracle_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_power::ProcessorModel;
    use workloads::synthetic_app;

    fn setup() -> Setup {
        Setup::for_load(
            synthetic_app().lower().unwrap(),
            ProcessorModel::transmeta5400(),
            2,
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn evaluate_produces_stats_for_every_scheme() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(32));
        assert_eq!(res.stats.len(), 6);
        for s in &res.stats {
            assert_eq!(s.energy.count(), 32);
            assert_eq!(s.deadline_misses, 0, "{} missed deadlines", s.scheme);
        }
    }

    #[test]
    fn npm_normalization_is_one() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(16));
        assert!((res.normalized_energy(Scheme::Npm).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn managed_schemes_beat_npm_at_half_load() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(64));
        for scheme in Scheme::MANAGED {
            let norm = res.normalized_energy(scheme).unwrap();
            assert!(norm < 1.0, "{scheme}: {norm}");
        }
    }

    #[test]
    fn results_reproducible_and_seed_sensitive() {
        let s = setup();
        let a = evaluate(&s, &ExperimentConfig::quick(16));
        let b = evaluate(&s, &ExperimentConfig::quick(16));
        assert_eq!(
            a.of(Scheme::Gss).unwrap().energy.mean(),
            b.of(Scheme::Gss).unwrap().energy.mean()
        );
        let mut cfg = ExperimentConfig::quick(16);
        cfg.base_seed = 999;
        let c = evaluate(&s, &cfg);
        assert_ne!(
            a.of(Scheme::Gss).unwrap().energy.mean(),
            c.of(Scheme::Gss).unwrap().energy.mean()
        );
    }

    #[test]
    fn npm_never_changes_speed_gss_does() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(16));
        assert_eq!(res.of(Scheme::Npm).unwrap().speed_changes.mean(), 0.0);
        assert!(res.of(Scheme::Gss).unwrap().speed_changes.mean() > 0.0);
    }
}
