//! The Monte-Carlo experiment harness.

use mp_sim::{FaultPlan, FaultReport, SimError};
use pas_core::{Scheme, Setup};
use pas_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// How an experiment point is evaluated.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Monte-Carlo replications per point (the paper uses 1000).
    pub replications: usize,
    /// Base seed; replication `r` uses a seed derived from it, so results
    /// are exactly reproducible.
    pub base_seed: u64,
    /// Schemes to evaluate. Must include [`Scheme::Npm`] if normalized
    /// energies are wanted.
    pub schemes: Vec<Scheme>,
    /// Actual-execution-time model.
    pub etm: mp_sim::ExecTimeModel,
    /// Also evaluate the clairvoyant single-speed bound on every
    /// realization (see [`pas_core::oracle`]).
    pub include_oracle: bool,
}

impl ExperimentConfig {
    /// The paper's defaults: 1000 replications of all six schemes.
    pub fn paper_defaults() -> Self {
        Self {
            replications: 1000,
            base_seed: 0x1CC_2002,
            schemes: Scheme::ALL.to_vec(),
            etm: mp_sim::ExecTimeModel::paper_defaults(),
            include_oracle: false,
        }
    }

    /// A light configuration for smoke tests and benchmarks.
    pub fn quick(replications: usize) -> Self {
        Self {
            replications,
            ..Self::paper_defaults()
        }
    }
}

/// Aggregated results for one scheme at one experiment point.
#[derive(Debug, Clone)]
pub struct SchemeStats {
    /// The scheme.
    pub scheme: Scheme,
    /// Per-run total energy (normalized power units × ms).
    pub energy: Summary,
    /// Per-run busy (execution) energy.
    pub busy_energy: Summary,
    /// Per-run idle energy.
    pub idle_energy: Summary,
    /// Per-run voltage-transition energy.
    pub transition_energy: Summary,
    /// Per-run voltage/speed change counts.
    pub speed_changes: Summary,
    /// Number of runs that missed the deadline (must stay 0 in fault-free
    /// experiments; reported so experiments surface violations instead of
    /// hiding them).
    pub deadline_misses: u64,
    /// How far past the deadline the missed runs finished (ms); empty when
    /// no run missed.
    pub miss_margin: Summary,
    /// Fault-injection counters accumulated over every replication
    /// (all-zero in fault-free experiments).
    pub faults: FaultReport,
    /// Per-run energy spent recovering from detected overruns (escalating
    /// to maximum speed and the containment premium).
    pub recovery_energy: Summary,
}

impl SchemeStats {
    /// Fraction of replications that missed the deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.energy.count() == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.energy.count() as f64
        }
    }
}

/// All schemes' statistics at one experiment point.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// One entry per configured scheme, in configuration order.
    pub stats: Vec<SchemeStats>,
    /// Clairvoyant-bound energy, when requested via
    /// [`ExperimentConfig::include_oracle`].
    pub oracle_energy: Option<Summary>,
}

impl EvalResult {
    /// Statistics for one scheme.
    pub fn of(&self, scheme: Scheme) -> Option<&SchemeStats> {
        self.stats.iter().find(|s| s.scheme == scheme)
    }

    /// Mean energy of `scheme` divided by mean energy of NPM.
    pub fn normalized_energy(&self, scheme: Scheme) -> Option<f64> {
        let npm = self.of(Scheme::Npm)?.energy.mean();
        let e = self.of(scheme)?.energy.mean();
        (npm > 0.0).then(|| e / npm)
    }

    /// Mean energy of `scheme` divided by the clairvoyant bound's mean
    /// energy (≥ 1 in expectation). `None` unless the oracle was included.
    pub fn oracle_gap(&self, scheme: Scheme) -> Option<f64> {
        let oracle = self.oracle_energy.as_ref()?.mean();
        let e = self.of(scheme)?.energy.mean();
        (oracle > 0.0).then(|| e / oracle)
    }

    /// Total deadline misses across all schemes.
    pub fn total_misses(&self) -> u64 {
        self.stats.iter().map(|s| s.deadline_misses).sum()
    }

    /// Total faults injected across all schemes' replications.
    pub fn total_faults_injected(&self) -> u64 {
        self.stats.iter().map(|s| s.faults.total_injected()).sum()
    }
}

/// Evaluates every configured scheme on `cfg.replications` shared
/// realizations of `setup`. Replications run in parallel; the result is
/// independent of thread count because each replication derives its RNG
/// from `base_seed` and the replication index alone.
///
/// # Errors
///
/// Propagates the first [`SimError`] any replication hits (the engine
/// rejecting the setup's dispatch order or realization).
pub fn evaluate(setup: &Setup, cfg: &ExperimentConfig) -> Result<EvalResult, SimError> {
    evaluate_with_faults(setup, cfg, None)
}

/// [`evaluate`], optionally injecting faults from a [`FaultPlan`].
///
/// Replication `r` realizes the plan with run index `r`, so every scheme
/// sees the *same* fault set on the same replication — the paired design
/// extends to faults. With `faults: None` (or an all-zero plan) the
/// results are identical to [`evaluate`].
///
/// # Errors
///
/// Returns [`SimError::BadFaultPlan`] if the plan fails validation, or
/// any engine error a replication hits.
pub fn evaluate_with_faults(
    setup: &Setup,
    cfg: &ExperimentConfig,
    faults: Option<&FaultPlan>,
) -> Result<EvalResult, SimError> {
    struct RepSample {
        energy: f64,
        busy: f64,
        idle: f64,
        transition: f64,
        changes: u64,
        missed: bool,
        missed_by: Option<f64>,
        report: FaultReport,
    }
    if let Some(plan) = faults {
        plan.validate()?;
    }
    let per_rep: Vec<(Vec<RepSample>, Option<f64>)> = (0..cfg.replications)
        .into_par_iter()
        .map(|r| -> Result<(Vec<RepSample>, Option<f64>), SimError> {
            // SplitMix-style seed derivation keeps streams independent.
            let seed = cfg
                .base_seed
                .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            let real = setup.sample(&cfg.etm, &mut rng);
            let fault_set = faults.map(|p| p.realize(&setup.graph, r as u64));
            let mut samples = Vec::with_capacity(cfg.schemes.len());
            for &scheme in &cfg.schemes {
                let res = match &fault_set {
                    Some(fs) => setup.run_with_faults(scheme, &real, fs)?,
                    None => setup.run(scheme, &real)?,
                };
                samples.push(RepSample {
                    energy: res.total_energy(),
                    busy: res.energy.busy_energy(),
                    idle: res.energy.idle_energy(),
                    transition: res.energy.transition_energy(),
                    changes: res.energy.speed_changes(),
                    missed: res.missed_deadline,
                    missed_by: (!res.status.met()).then(|| res.status.missed_by()),
                    report: res.faults,
                });
            }
            let oracle = match cfg.include_oracle {
                true => Some(setup.run_oracle(&real)?.total_energy()),
                false => None,
            };
            Ok((samples, oracle))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<Result<_, _>>()?;

    let stats = cfg
        .schemes
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let mut energy = Summary::new();
            let mut busy_energy = Summary::new();
            let mut idle_energy = Summary::new();
            let mut transition_energy = Summary::new();
            let mut speed_changes = Summary::new();
            let mut deadline_misses = 0u64;
            let mut miss_margin = Summary::new();
            let mut fault_report = FaultReport::default();
            let mut recovery_energy = Summary::new();
            for (rep, _) in &per_rep {
                let s = &rep[i];
                energy.add(s.energy);
                busy_energy.add(s.busy);
                idle_energy.add(s.idle);
                transition_energy.add(s.transition);
                speed_changes.add(s.changes as f64);
                deadline_misses += s.missed as u64;
                if let Some(by) = s.missed_by {
                    miss_margin.add(by);
                }
                fault_report.absorb(&s.report);
                recovery_energy.add(s.report.recovery_energy);
            }
            SchemeStats {
                scheme,
                energy,
                busy_energy,
                idle_energy,
                transition_energy,
                speed_changes,
                deadline_misses,
                miss_margin,
                faults: fault_report,
                recovery_energy,
            }
        })
        .collect();
    let oracle_energy = cfg
        .include_oracle
        .then(|| per_rep.iter().filter_map(|(_, o)| *o).collect::<Summary>());
    Ok(EvalResult {
        stats,
        oracle_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_power::ProcessorModel;
    use workloads::synthetic_app;

    fn setup() -> Setup {
        Setup::for_load(
            synthetic_app().lower().expect("fixture app lowers"),
            ProcessorModel::transmeta5400(),
            2,
            0.5,
        )
        .expect("feasible load")
    }

    #[test]
    fn evaluate_produces_stats_for_every_scheme() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(32)).expect("evaluation runs");
        assert_eq!(res.stats.len(), 6);
        for s in &res.stats {
            assert_eq!(s.energy.count(), 32);
            assert_eq!(s.deadline_misses, 0, "{} missed deadlines", s.scheme);
            assert!(s.faults.is_clean(), "{} saw phantom faults", s.scheme);
            assert_eq!(s.miss_rate(), 0.0);
        }
    }

    #[test]
    fn npm_normalization_is_one() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(16)).expect("evaluation runs");
        let norm = res.normalized_energy(Scheme::Npm).expect("NPM configured");
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn managed_schemes_beat_npm_at_half_load() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(64)).expect("evaluation runs");
        for scheme in Scheme::MANAGED {
            let norm = res.normalized_energy(scheme).expect("scheme configured");
            assert!(norm < 1.0, "{scheme}: {norm}");
        }
    }

    #[test]
    fn results_reproducible_and_seed_sensitive() {
        let s = setup();
        let a = evaluate(&s, &ExperimentConfig::quick(16)).expect("evaluation runs");
        let b = evaluate(&s, &ExperimentConfig::quick(16)).expect("evaluation runs");
        assert_eq!(
            a.of(Scheme::Gss).expect("GSS configured").energy.mean(),
            b.of(Scheme::Gss).expect("GSS configured").energy.mean()
        );
        let mut cfg = ExperimentConfig::quick(16);
        cfg.base_seed = 999;
        let c = evaluate(&s, &cfg).expect("evaluation runs");
        assert_ne!(
            a.of(Scheme::Gss).expect("GSS configured").energy.mean(),
            c.of(Scheme::Gss).expect("GSS configured").energy.mean()
        );
    }

    #[test]
    fn npm_never_changes_speed_gss_does() {
        let res = evaluate(&setup(), &ExperimentConfig::quick(16)).expect("evaluation runs");
        let npm = res.of(Scheme::Npm).expect("NPM configured");
        assert_eq!(npm.speed_changes.mean(), 0.0);
        let gss = res.of(Scheme::Gss).expect("GSS configured");
        assert!(gss.speed_changes.mean() > 0.0);
    }

    #[test]
    fn zero_probability_fault_plan_reproduces_baseline() {
        let s = setup();
        let cfg = ExperimentConfig::quick(16);
        let clean = evaluate(&s, &cfg).expect("evaluation runs");
        let plan = FaultPlan::none();
        let faulted = evaluate_with_faults(&s, &cfg, Some(&plan)).expect("evaluation runs");
        for (a, b) in clean.stats.iter().zip(&faulted.stats) {
            assert_eq!(a.energy.mean(), b.energy.mean(), "{}", a.scheme);
            assert_eq!(a.speed_changes.mean(), b.speed_changes.mean());
            assert!(b.faults.is_clean());
        }
    }

    #[test]
    fn injected_overruns_are_counted_and_recovered() {
        let s = setup();
        let cfg = ExperimentConfig::quick(16);
        let plan = FaultPlan::overruns(0.5, 1.5, 77);
        let res = evaluate_with_faults(&s, &cfg, Some(&plan)).expect("evaluation runs");
        for stats in &res.stats {
            assert!(
                stats.faults.overruns_injected > 0,
                "{} saw no overruns at p=0.5",
                stats.scheme
            );
            assert!(stats.faults.overruns_detected > 0);
            assert_eq!(stats.recovery_energy.count(), 16);
        }
        // Same plan, same replication indices: every scheme sees the same
        // injection counts (the paired design extends to faults).
        let first = res.stats[0].faults.overruns_injected;
        for stats in &res.stats {
            assert_eq!(stats.faults.overruns_injected, first, "{}", stats.scheme);
        }
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        let s = setup();
        let plan = FaultPlan {
            overrun_prob: 2.0,
            ..FaultPlan::none()
        };
        let err = evaluate_with_faults(&s, &ExperimentConfig::quick(4), Some(&plan))
            .expect_err("probability 2.0 is invalid");
        assert!(matches!(err, SimError::BadFaultPlan { .. }), "{err}");
    }
}
