//! Reference-trace emission behind the binaries' `--emit-trace DIR` flag.
//!
//! Sweeps aggregate thousands of runs into a handful of numbers; when a
//! point looks wrong, the first question is always "what did one run
//! actually do?". This module answers it by re-running each scheme once
//! on the figure's representative configuration (ATR, 2 processors,
//! load 0.5) under an event observer and writing one Perfetto-loadable
//! Chrome trace-event file per scheme.

use crate::figures::{atr_app, Platform};
use mp_sim::{EventLog, ExecTimeModel};
use pas_core::{Scheme, Setup};
use pas_obs::export::chrome_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Lower-cases a display name into a file-name-safe slug (`SS(1)` →
/// `ss1`, `Intel XScale` → `intel-xscale`). Shared with the `pas bench`
/// harness so baseline file names match the reference-trace names.
pub fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if c.is_whitespace() && !out.ends_with('-') {
            out.push('-');
        }
    }
    out
}

/// Runs every scheme once on ATR (2 processors, load 0.5, the Figure 4
/// operating point) and writes `<dir>/<platform>_<scheme>.trace.json`
/// Chrome traces. Returns the written paths.
pub fn write_reference_traces(
    dir: &Path,
    platform: Platform,
    seed: u64,
) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let setup =
        Setup::for_load(atr_app(), platform.model(), 2, 0.5).map_err(|e| format!("setup: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let mut written = Vec::new();
    for scheme in Scheme::ALL {
        let mut log = EventLog::new();
        let mut policy = setup.policy(scheme);
        setup
            .simulator(false)
            .run_observed(policy.as_mut(), &real, None, None, Some(&mut log))
            .map_err(|e| format!("simulation ({}): {e}", scheme.name()))?;
        let doc = chrome_trace(log.events(), |n| setup.graph.node(n).name.clone());
        let path = dir.join(format!(
            "{}_{}.trace.json",
            slug(platform.name()),
            slug(scheme.name())
        ));
        std::fs::write(&path, doc).map_err(|e| format!("writing {}: {e}", path.display()))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_file_name_safe() {
        assert_eq!(slug("SS(1)"), "ss1");
        assert_eq!(slug("Intel XScale"), "intel-xscale");
        assert_eq!(slug("AS"), "as");
    }

    #[test]
    fn writes_one_trace_per_scheme() {
        let dir = std::env::temp_dir().join("pas_experiments_test_traces");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_reference_traces(&dir, Platform::XScale, 42).expect("traces written");
        assert_eq!(written.len(), Scheme::ALL.len());
        for path in &written {
            let body = std::fs::read_to_string(path).expect("readable");
            let doc: serde::Value = serde_json::from_str(&body).expect("valid JSON");
            assert!(doc.get("traceEvents").is_some(), "{path}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
