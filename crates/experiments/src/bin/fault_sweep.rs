//! Extension E5 — overrun fault injection: deadline-miss rate and
//! normalized energy per scheme as the per-task overrun probability and
//! overrun factor grow.
//!
//! `cargo run --release -p pas-experiments --bin fault_sweep -- --reps 200`
//!
//! Accepts the common flags plus `--factors F1,F2,...` (overrun factors,
//! default `1.25,1.5,2.0`).

use pas_experiments::cli::Options;
use pas_experiments::figures::fault_sweep;
use pas_experiments::Platform;

fn main() {
    // Accept the common flags plus --factors by pre-filtering argv.
    let mut raw: Vec<String> = std::env::args().collect();
    let mut factors = vec![1.25, 1.5, 2.0];
    if let Some(i) = raw.iter().position(|a| a == "--factors") {
        raw.remove(i);
        if i >= raw.len() {
            eprintln!("--factors needs a comma-separated list of values");
            std::process::exit(2);
        }
        let spec = raw.remove(i);
        match spec
            .split(',')
            .map(|t| t.trim().parse::<f64>())
            .collect::<Result<Vec<f64>, _>>()
        {
            Ok(v) if !v.is_empty() => factors = v,
            _ => {
                eprintln!("bad --factors value: {spec}");
                std::process::exit(2);
            }
        }
    }
    let opts = match Options::parse(raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let probs = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2];
    for platform in [Platform::Transmeta, Platform::XScale] {
        for &factor in &factors {
            let out = match fault_sweep(platform, factor, &probs, &opts.cfg) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("fault sweep failed: {e}");
                    std::process::exit(1);
                }
            };
            if opts.markdown {
                print!("{}", out.miss_rate.to_markdown());
                print!("{}", out.energy.to_markdown());
                print!("{}", out.recovery_energy.to_markdown());
            } else {
                print!("{}", out.miss_rate.to_text());
                println!();
                print!("{}", out.energy.to_text());
                println!();
                print!("{}", out.recovery_energy.to_text());
            }
            println!(
                "faults injected: {}, overruns detected: {}",
                out.injected, out.detected
            );
            println!();
        }
    }
}
