//! Figure 5: normalized energy vs load, ATR on 6 processors
//! (a: Transmeta, b: Intel XScale), overhead 5 µs.

use pas_experiments::cli::Options;
use pas_experiments::figures::fig_energy_vs_load;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let out = fig_energy_vs_load(platform, 6, &opts.cfg);
        opts.emit(&out);
        println!();
    }
    opts.emit_reference_traces(&[Platform::Transmeta, Platform::XScale]);
}
