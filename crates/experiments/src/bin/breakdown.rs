//! Extension E2: busy/idle/transition energy decomposition per scheme.
//! With `--per-section`, E2b instead: per-program-section attribution
//! from the event stream's `SectionedLedger` (which OR branch is
//! expensive?).

use pas_experiments::cli::Options;
use pas_experiments::figures::{energy_breakdown, section_breakdown};
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        for load in [0.3, 0.7] {
            let t = if opts.per_section {
                section_breakdown(platform, 2, load, &opts.cfg)
            } else {
                energy_breakdown(platform, 2, load, &opts.cfg)
            };
            if opts.markdown {
                print!("{}", t.to_markdown());
            } else {
                print!("{}", t.to_text());
            }
            println!();
        }
    }
}
