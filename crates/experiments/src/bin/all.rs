//! Regenerates the complete evaluation — every paper table/figure, every
//! ablation, every extension — writing one markdown file per artifact into
//! `--outdir` (default `results/`).
//!
//! `cargo run --release -p pas-experiments --bin all -- --reps 1000`

use dvfs_power::ProcessorModel;
use pas_experiments::cli::Options;
use pas_experiments::figures::{
    ablation_leakage, ablation_levels, ablation_overhead, ablation_procs, ablation_smin,
    energy_breakdown, fault_sweep, fig_energy_vs_alpha, fig_energy_vs_load, level_table,
    oracle_gap_vs_load, stream_carryover, SweepOutput,
};
use pas_experiments::Platform;

fn main() {
    // Accept the common flags plus an --outdir by pre-filtering argv.
    let mut raw: Vec<String> = std::env::args().collect();
    let mut outdir = "results".to_string();
    if let Some(i) = raw.iter().position(|a| a == "--outdir") {
        raw.remove(i);
        if i < raw.len() {
            outdir = raw.remove(i);
        }
    }
    let opts = match Options::parse(raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&outdir).expect("create output directory");
    let write = |name: &str, content: String| {
        let path = format!("{outdir}/{name}.md");
        std::fs::write(&path, content).expect("write artifact");
        println!("wrote {path}");
    };
    let sweep_md = |out: &SweepOutput| {
        assert_eq!(out.total_misses, 0, "deadline misses detected!");
        format!(
            "{}{}",
            out.energy.to_markdown(),
            out.speed_changes.to_markdown()
        )
    };

    write(
        "table1",
        level_table(&ProcessorModel::transmeta5400()).to_markdown(),
    );
    write(
        "table2",
        level_table(&ProcessorModel::xscale()).to_markdown(),
    );
    for (tag, procs) in [("fig4", 2), ("fig5", 6)] {
        let mut md = String::new();
        for platform in [Platform::Transmeta, Platform::XScale] {
            md.push_str(&sweep_md(&fig_energy_vs_load(platform, procs, &opts.cfg)));
        }
        write(tag, md);
    }
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&sweep_md(&fig_energy_vs_alpha(platform, &opts.cfg)));
    }
    write("fig6", md);
    write("ablation_smin", sweep_md(&ablation_smin(&opts.cfg)));
    write("ablation_levels", sweep_md(&ablation_levels(&opts.cfg)));
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&sweep_md(&ablation_overhead(platform, &opts.cfg)));
        md.push('\n');
    }
    write("ablation_overhead", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&sweep_md(&ablation_procs(platform, &opts.cfg)));
        md.push('\n');
    }
    write("ablation_procs", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&ablation_leakage(platform, &opts.cfg).to_markdown());
        md.push('\n');
    }
    write("ablation_leakage", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&oracle_gap_vs_load(platform, 2, &opts.cfg).to_markdown());
        md.push('\n');
    }
    write("oracle_gap", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        for load in [0.3, 0.7] {
            md.push_str(&energy_breakdown(platform, 2, load, &opts.cfg).to_markdown());
            md.push('\n');
        }
    }
    write("breakdown", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        md.push_str(&stream_carryover(platform, &opts.cfg).to_markdown());
        md.push('\n');
    }
    write("stream", md);
    let mut md = String::new();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let out = fault_sweep(platform, 1.5, &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2], &opts.cfg)
            .expect("fault sweep runs");
        md.push_str(&out.miss_rate.to_markdown());
        md.push_str(&out.energy.to_markdown());
        md.push_str(&out.recovery_energy.to_markdown());
        md.push('\n');
    }
    write("fault_sweep", md);
    // With --emit-trace DIR, also drop per-scheme reference Chrome traces.
    opts.emit_reference_traces(&[Platform::Transmeta, Platform::XScale]);
    println!("done: the full evaluation is in {outdir}/");
}
