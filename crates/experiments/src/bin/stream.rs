//! Extension E4: streaming frames with DVS state carried across frame
//! boundaries versus the paper's independent-instances assumption.

use pas_experiments::cli::Options;
use pas_experiments::figures::stream_carryover;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let t = stream_carryover(platform, &opts.cfg);
        if opts.markdown {
            print!("{}", t.to_markdown());
        } else {
            print!("{}", t.to_text());
        }
        println!();
    }
}
