//! Ablation A2 (the paper's stated future work): the effect of the number
//! of discrete speed levels between S_min and S_max.

use pas_experiments::cli::Options;
use pas_experiments::figures::ablation_levels;

fn main() {
    let opts = Options::from_env();
    opts.emit(&ablation_levels(&opts.cfg));
}
