//! Ablation A1 (the paper's stated future work): the effect of the
//! minimum-speed ratio S_min/S_max on each scheme's energy.

use pas_experiments::cli::Options;
use pas_experiments::figures::ablation_smin;

fn main() {
    let opts = Options::from_env();
    opts.emit(&ablation_smin(&opts.cfg));
}
