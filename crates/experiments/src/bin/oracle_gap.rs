//! Extension E1: each scheme's mean energy relative to the clairvoyant
//! single-speed bound of paper §3.3, vs load.

use pas_experiments::cli::Options;
use pas_experiments::figures::oracle_gap_vs_load;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let t = oracle_gap_vs_load(platform, 2, &opts.cfg);
        if opts.markdown {
            print!("{}", t.to_markdown());
        } else {
            print!("{}", t.to_text());
        }
        println!();
    }
}
