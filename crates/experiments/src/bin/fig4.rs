//! Figure 4: normalized energy vs load, ATR on 2 processors
//! (a: Transmeta, b: Intel XScale).

use pas_experiments::cli::Options;
use pas_experiments::figures::fig_energy_vs_load;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let out = fig_energy_vs_load(platform, 2, &opts.cfg);
        opts.emit(&out);
        println!();
    }
    opts.emit_reference_traces(&[Platform::Transmeta, Platform::XScale]);
}
