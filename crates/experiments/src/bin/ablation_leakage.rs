//! Extension E3: the static-power (leakage) ablation — how much energy the
//! critical-speed floor recovers as leakage grows.

use pas_experiments::cli::Options;
use pas_experiments::figures::ablation_leakage;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let t = ablation_leakage(platform, &opts.cfg);
        if opts.markdown {
            print!("{}", t.to_markdown());
        } else {
            print!("{}", t.to_text());
        }
        println!();
    }
}
