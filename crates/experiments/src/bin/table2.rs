//! Prints the paper's Table 2: the Intel XScale voltage/speed levels.

use dvfs_power::ProcessorModel;
use pas_experiments::figures::level_table;

fn main() {
    print!("{}", level_table(&ProcessorModel::xscale()).to_text());
}
