//! Figure 6: normalized energy vs α, synthetic application on 2 processors
//! at load 0.5 (a: Transmeta, b: Intel XScale).

use pas_experiments::cli::Options;
use pas_experiments::figures::fig_energy_vs_alpha;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        let out = fig_energy_vs_alpha(platform, &opts.cfg);
        opts.emit(&out);
        println!();
    }
    opts.emit_reference_traces(&[Platform::Transmeta, Platform::XScale]);
}
