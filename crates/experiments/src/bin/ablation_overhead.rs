//! Ablation A3: sweep of the voltage/speed transition overhead.

use pas_experiments::cli::Options;
use pas_experiments::figures::ablation_overhead;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        opts.emit(&ablation_overhead(platform, &opts.cfg));
        println!();
    }
}
