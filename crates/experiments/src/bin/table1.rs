//! Prints the paper's Table 1: the Transmeta TM5400 voltage/speed levels.

use dvfs_power::ProcessorModel;
use pas_experiments::figures::level_table;

fn main() {
    print!(
        "{}",
        level_table(&ProcessorModel::transmeta5400()).to_text()
    );
}
