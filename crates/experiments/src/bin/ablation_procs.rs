//! Ablation A4: processor-count sweep at fixed load.

use pas_experiments::cli::Options;
use pas_experiments::figures::ablation_procs;
use pas_experiments::Platform;

fn main() {
    let opts = Options::from_env();
    for platform in [Platform::Transmeta, Platform::XScale] {
        opts.emit(&ablation_procs(platform, &opts.cfg));
        println!();
    }
}
