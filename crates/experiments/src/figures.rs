//! One function per paper table/figure, plus the future-work ablations.

use crate::runner::{evaluate, evaluate_with_faults, EvalResult, ExperimentConfig};
use andor_graph::AndOrGraph;
use dvfs_power::{Overheads, ProcessorModel};
use mp_sim::{FaultPlan, SimError};
use pas_core::Setup;
use pas_stats::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{synthetic_app_alpha, AtrParams};

/// The two processor platforms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Transmeta Crusoe TM5400 (Table 1: 16 levels).
    Transmeta,
    /// Intel XScale (Table 2: 5 levels).
    XScale,
}

impl Platform {
    /// The platform's processor model.
    pub fn model(self) -> ProcessorModel {
        match self {
            Platform::Transmeta => ProcessorModel::transmeta5400(),
            Platform::XScale => ProcessorModel::xscale(),
        }
    }

    /// Figure-caption name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Transmeta => "Transmeta",
            Platform::XScale => "Intel XScale",
        }
    }
}

/// Output of one sweep: the normalized-energy figure plus the companion
/// speed-change counts (the quantity the speculative schemes are designed
/// to reduce).
#[derive(Debug, Clone)]
pub struct SweepOutput {
    /// Normalized energy vs the x-axis, one series per scheme.
    pub energy: Table,
    /// Mean voltage/speed changes per run vs the x-axis.
    pub speed_changes: Table,
    /// Deadline misses summed over the whole sweep (must be 0).
    pub total_misses: u64,
}

/// Runs `setup_for(x)` for every `x`, evaluating all configured schemes.
pub fn sweep(
    title: &str,
    x_label: &str,
    xs: &[f64],
    cfg: &ExperimentConfig,
    mut setup_for: impl FnMut(f64) -> Setup,
) -> SweepOutput {
    let evals: Vec<EvalResult> = xs
        .iter()
        .map(|&x| evaluate(&setup_for(x), cfg).expect("valid setup simulates"))
        .collect();
    let mut energy = Table::new(title, x_label, xs.to_vec());
    let mut speed_changes = Table::new(
        format!("{title} — speed changes per run"),
        x_label,
        xs.to_vec(),
    );
    for &scheme in &cfg.schemes {
        energy.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| e.normalized_energy(scheme).unwrap_or(f64::NAN))
                .collect(),
        );
        speed_changes.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| {
                    e.of(scheme)
                        .map(|s| s.speed_changes.mean())
                        .unwrap_or(f64::NAN)
                })
                .collect(),
        );
    }
    SweepOutput {
        energy,
        speed_changes,
        total_misses: evals.iter().map(|e| e.total_misses()).sum(),
    }
}

/// The canonical ATR application instance used by Figures 4 and 5:
/// the default parameters with seeded per-task WCET jitter, α = 0.9
/// ("little slack from task's run-time behavior").
pub fn atr_app() -> AndOrGraph {
    let mut rng = StdRng::seed_from_u64(0xA72);
    AtrParams::default()
        .build_jittered(&mut rng)
        .expect("default ATR parameters are valid")
        .lower()
        .expect("generated ATR app is structurally valid")
}

/// The load x-axis of Figures 4–5.
pub fn load_axis() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// The α x-axis of Figure 6.
pub fn alpha_axis() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// **Figure 4/5** — normalized energy vs load for ATR.
/// Figure 4 uses 2 processors; Figure 5 uses 6 (overhead 5 µs in both).
pub fn fig_energy_vs_load(
    platform: Platform,
    num_procs: usize,
    cfg: &ExperimentConfig,
) -> SweepOutput {
    let app = atr_app();
    let title = format!(
        "Energy vs load — ATR, {} processors, {}",
        num_procs,
        platform.name()
    );
    sweep(&title, "load", &load_axis(), cfg, |load| {
        Setup::for_load(app.clone(), platform.model(), num_procs, load)
            .expect("load in (0,1] is feasible by construction")
    })
}

/// **Figure 6** — normalized energy vs α for the synthetic application on
/// 2 processors at load 0.5.
pub fn fig_energy_vs_alpha(platform: Platform, cfg: &ExperimentConfig) -> SweepOutput {
    let title = format!(
        "Energy vs alpha — synthetic app, 2 processors, load 0.5, {}",
        platform.name()
    );
    sweep(&title, "alpha", &alpha_axis(), cfg, |alpha| {
        let app = synthetic_app_alpha(alpha)
            .expect("axis alphas are in (0, 1]")
            .lower()
            .expect("valid");
        Setup::for_load(app, platform.model(), 2, 0.5).expect("feasible")
    })
}

/// **Ablation A1** (paper's future work) — effect of the minimum speed:
/// synthetic tables with 16 levels whose `S_min/S_max` ratio varies.
pub fn ablation_smin(cfg: &ExperimentConfig) -> SweepOutput {
    let ratios: Vec<f64> = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let app = synthetic_app_alpha(0.6)
        .expect("0.6 is in (0, 1]")
        .lower()
        .expect("valid");
    sweep(
        "Energy vs S_min/S_max — synthetic app, 2 processors, load 0.5, 16 levels",
        "smin_ratio",
        &ratios,
        cfg,
        |ratio| {
            let model = ProcessorModel::synthetic(1000.0, 16, ratio, 0.8, 1.8)
                .expect("valid synthetic table");
            Setup::for_load(app.clone(), model, 2, 0.5).expect("feasible")
        },
    )
}

/// **Ablation A2** (future work) — effect of the number of speed levels
/// between `S_min` and `S_max`.
pub fn ablation_levels(cfg: &ExperimentConfig) -> SweepOutput {
    let counts: Vec<f64> = vec![2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0];
    let app = synthetic_app_alpha(0.6)
        .expect("0.6 is in (0, 1]")
        .lower()
        .expect("valid");
    sweep(
        "Energy vs level count — synthetic app, 2 processors, load 0.5, smin 0.2",
        "levels",
        &counts,
        cfg,
        |n| {
            let model = ProcessorModel::synthetic(1000.0, n as usize, 0.2, 0.8, 1.8)
                .expect("valid synthetic table");
            Setup::for_load(app.clone(), model, 2, 0.5).expect("feasible")
        },
    )
}

/// **Ablation A3** — speed-change overhead sweep (ms per transition).
pub fn ablation_overhead(platform: Platform, cfg: &ExperimentConfig) -> SweepOutput {
    let overheads_ms: Vec<f64> = vec![0.0, 0.005, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];
    let app = atr_app();
    let title = format!(
        "Energy vs transition overhead — ATR, 2 processors, load 0.7, {}",
        platform.name()
    );
    sweep(&title, "overhead_ms", &overheads_ms, cfg, |oh| {
        Setup::for_load_with_overheads(
            app.clone(),
            platform.model(),
            2,
            0.7,
            Overheads::new(300.0, oh).expect("valid overheads"),
        )
        .expect("feasible")
    })
}

/// **Ablation A4** — processor count sweep at fixed load.
pub fn ablation_procs(platform: Platform, cfg: &ExperimentConfig) -> SweepOutput {
    let procs: Vec<f64> = vec![1.0, 2.0, 4.0, 6.0, 8.0];
    let app = atr_app();
    let title = format!(
        "Energy vs processor count — ATR, load 0.5, {}",
        platform.name()
    );
    sweep(&title, "processors", &procs, cfg, |m| {
        Setup::for_load(app.clone(), platform.model(), m as usize, 0.5).expect("feasible")
    })
}

/// **Extension E3** — the static-power (leakage) ablation: as the static
/// fraction ρ grows, unfloored dynamic schemes keep stretching tasks into
/// leakage-dominated regions; the energy-efficient floor
/// ([`dvfs_power::efficient_floor`]) recovers the loss. Series are
/// normalized to NPM *at the same ρ*.
pub fn ablation_leakage(platform: Platform, cfg: &ExperimentConfig) -> Table {
    use pas_core::{AsPolicy, EnergyFloorPolicy, GssPolicy, Scheme};
    use rand::Rng;

    let rhos: Vec<f64> = vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4];
    let app = workloads::synthetic_app_alpha(0.6)
        .expect("0.6 is in (0, 1]")
        .lower()
        .expect("valid");
    let labels = ["NPM", "SPM", "GSS", "AS", "GSS+floor", "AS+floor"];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for &rho in &rhos {
        let setup = Setup::for_load(app.clone(), platform.model(), 2, 0.5)
            .expect("feasible")
            .with_static_power(rho);
        let floor = setup.efficient_floor();
        let mut totals = vec![0.0_f64; labels.len()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.base_seed);
        for _ in 0..cfg.replications {
            let real = setup.sample(&cfg.etm, &mut rng);
            let sim = setup.simulator(false);
            let runs: Vec<mp_sim::RunResult> = {
                let mut out = Vec::new();
                for scheme in [Scheme::Npm, Scheme::Spm, Scheme::Gss, Scheme::As] {
                    out.push(setup.run(scheme, &real).expect("run succeeds"));
                }
                let mut gss_floor = EnergyFloorPolicy::new(
                    GssPolicy::new(&setup.plan, &setup.model, setup.overheads),
                    floor,
                    &setup.model,
                );
                out.push(sim.run(&mut gss_floor, &real).expect("run succeeds"));
                let mut as_floor = EnergyFloorPolicy::new(
                    AsPolicy::new(&setup.plan, &setup.model, setup.overheads),
                    floor,
                    &setup.model,
                );
                out.push(sim.run(&mut as_floor, &real).expect("run succeeds"));
                out
            };
            for (i, r) in runs.iter().enumerate() {
                assert!(!r.missed_deadline, "{} missed at rho={rho}", labels[i]);
                totals[i] += r.total_energy();
            }
            // Keep the RNG streams aligned regardless of future edits.
            let _: f64 = rng.gen();
        }
        for (i, t) in totals.iter().enumerate() {
            series[i].push(t / totals[0]);
        }
    }
    let mut t = Table::new(
        format!(
            "Energy vs static power fraction — synthetic app, 2 processors, load 0.5, {}",
            platform.name()
        ),
        "rho",
        rhos,
    );
    for (label, values) in labels.iter().zip(series) {
        t.push_series(*label, values);
    }
    t
}

/// **Extension E1** — gap to the clairvoyant single-speed bound
/// (paper §3.3's motivating intuition): mean energy of each scheme divided
/// by the oracle's mean energy, vs load.
pub fn oracle_gap_vs_load(platform: Platform, num_procs: usize, cfg: &ExperimentConfig) -> Table {
    let mut cfg = cfg.clone();
    cfg.include_oracle = true;
    let app = atr_app();
    let xs = load_axis();
    let evals: Vec<EvalResult> = xs
        .iter()
        .map(|&load| {
            let setup =
                Setup::for_load(app.clone(), platform.model(), num_procs, load).expect("feasible");
            evaluate(&setup, &cfg).expect("valid setup simulates")
        })
        .collect();
    let mut t = Table::new(
        format!(
            "Energy over clairvoyant bound vs load — ATR, {} processors, {}",
            num_procs,
            platform.name()
        ),
        "load",
        xs,
    );
    for &scheme in &cfg.schemes {
        t.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| e.oracle_gap(scheme).unwrap_or(f64::NAN))
                .collect(),
        );
    }
    t
}

/// **Extension E2** — where does the energy go? Busy/idle/transition
/// decomposition per scheme at one load, each normalized by NPM's total.
pub fn energy_breakdown(
    platform: Platform,
    num_procs: usize,
    load: f64,
    cfg: &ExperimentConfig,
) -> Table {
    let setup = Setup::for_load(atr_app(), platform.model(), num_procs, load).expect("feasible");
    let eval = evaluate(&setup, cfg).expect("valid setup simulates");
    let npm_total = eval
        .of(pas_core::Scheme::Npm)
        .expect("NPM configured")
        .energy
        .mean();
    let mut t = Table::new(
        format!(
            "Energy breakdown — ATR, {} processors, load {}, {} (columns: scheme index in {:?})",
            num_procs,
            load,
            platform.name(),
            cfg.schemes.iter().map(|s| s.name()).collect::<Vec<_>>()
        ),
        "scheme#",
        (1..=cfg.schemes.len()).map(|i| i as f64).collect(),
    );
    t.push_series(
        "busy",
        eval.stats
            .iter()
            .map(|s| s.busy_energy.mean() / npm_total)
            .collect(),
    );
    t.push_series(
        "idle",
        eval.stats
            .iter()
            .map(|s| s.idle_energy.mean() / npm_total)
            .collect(),
    );
    t.push_series(
        "transition",
        eval.stats
            .iter()
            .map(|s| s.transition_energy.mean() / npm_total)
            .collect(),
    );
    t.push_series(
        "total",
        eval.stats
            .iter()
            .map(|s| s.energy.mean() / npm_total)
            .collect(),
    );
    t
}

/// **Extension E2b** — which OR branch is expensive? Mean per-section
/// energy per scheme at one operating point, attributed from the event
/// stream by a [`mp_sim::SectionedLedger`]. The x-axis is the
/// program-section id (chain order, `s0` = root); a section a
/// realization never entered contributes 0 to its mean, so each series
/// sums to that scheme's mean total energy.
pub fn section_breakdown(
    platform: Platform,
    num_procs: usize,
    load: f64,
    cfg: &ExperimentConfig,
) -> Table {
    use mp_sim::{SectionKey, SectionedLedger};

    let setup = Setup::for_load(atr_app(), platform.model(), num_procs, load).expect("feasible");
    let num_sections = setup.sections.len();
    let mut t = Table::new(
        format!(
            "Per-section energy — ATR, {} processors, load {}, {}",
            num_procs,
            load,
            platform.name()
        ),
        "section",
        (0..num_sections).map(|i| i as f64).collect(),
    );
    for &scheme in &cfg.schemes {
        let mut sums = vec![0.0_f64; num_sections];
        for r in 0..cfg.replications {
            let seed = cfg
                .base_seed
                .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            let real = setup.sample(&cfg.etm, &mut rng);
            let mut ledger = SectionedLedger::new();
            let mut policy = setup.policy(scheme);
            let res = setup
                .simulator(false)
                .run_observed(policy.as_mut(), &real, None, None, Some(&mut ledger))
                .expect("valid setup simulates");
            debug_assert!(ledger.verify(res.total_energy()).is_ok());
            for slice in ledger.merged() {
                let sid = match slice.key {
                    SectionKey::Root => setup.sections.root(),
                    SectionKey::Branch { or, branch } => setup
                        .sections
                        .branch_section(or, branch)
                        .expect("stream keys map to sections"),
                };
                sums[sid.index()] += slice.ledger.total();
            }
        }
        t.push_series(
            scheme.name(),
            sums.iter().map(|s| s / cfg.replications as f64).collect(),
        );
    }
    t
}

/// **Extension E4** — streaming frames with DVS state carry-over: the
/// paper simulates application instances independently (every frame starts
/// at `f_max`); real hardware keeps its operating point across frames.
/// Reports, per scheme, the mean speed-change count per frame with cold
/// (independent) versus warm (carried) starts, plus warm energy relative
/// to cold.
pub fn stream_carryover(platform: Platform, cfg: &ExperimentConfig) -> Table {
    use pas_core::Scheme;

    const FRAMES: usize = 16;
    let app = atr_app();
    let setup = Setup::for_load(app, platform.model(), 2, 0.6).expect("feasible");
    let schemes = Scheme::ALL;
    let mut cold_changes = Vec::new();
    let mut warm_changes = Vec::new();
    let mut warm_over_cold_energy = Vec::new();
    for &scheme in &schemes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.base_seed);
        let (mut cold_c, mut warm_c, mut cold_e, mut warm_e) = (0.0, 0.0, 0.0, 0.0);
        let reps = cfg.replications.max(1);
        for _ in 0..reps {
            let frames: Vec<mp_sim::Realization> = (0..FRAMES)
                .map(|_| setup.sample(&cfg.etm, &mut rng))
                .collect();
            let sim = setup.simulator(false);
            let mut policy = setup.policy(scheme);
            let cold =
                mp_sim::run_stream(&sim, policy.as_mut(), &frames, false).expect("stream runs");
            let warm =
                mp_sim::run_stream(&sim, policy.as_mut(), &frames, true).expect("stream runs");
            assert_eq!(cold.misses + warm.misses, 0, "{} missed", scheme.name());
            cold_c += cold.speed_changes() as f64 / FRAMES as f64;
            warm_c += warm.speed_changes() as f64 / FRAMES as f64;
            cold_e += cold.total_energy();
            warm_e += warm.total_energy();
        }
        cold_changes.push(cold_c / reps as f64);
        warm_changes.push(warm_c / reps as f64);
        warm_over_cold_energy.push(warm_e / cold_e);
    }
    let mut t = Table::new(
        format!(
            "Streaming carry-over — ATR, 2 processors, load 0.6, {FRAMES} frames, {}              (columns: scheme index in {:?})",
            platform.name(),
            schemes.iter().map(|s| s.name()).collect::<Vec<_>>()
        ),
        "scheme#",
        (1..=schemes.len()).map(|i| i as f64).collect(),
    );
    t.push_series("cold changes/frame", cold_changes);
    t.push_series("warm changes/frame", warm_changes);
    t.push_series("warm/cold energy", warm_over_cold_energy);
    t
}

/// Output of the fault-injection sweep ([Extension E5](fault_sweep)).
#[derive(Debug, Clone)]
pub struct FaultSweepOutput {
    /// Deadline-miss rate per scheme vs overrun probability.
    pub miss_rate: Table,
    /// Energy normalized to NPM *at the same fault point* vs overrun
    /// probability.
    pub energy: Table,
    /// Mean per-run recovery energy (escalation transitions plus the
    /// containment premium) vs overrun probability.
    pub recovery_energy: Table,
    /// Total faults injected across the whole sweep.
    pub injected: u64,
    /// Total overruns detected across the whole sweep.
    pub detected: u64,
}

/// **Extension E5** — overrun fault injection: execution-time overruns
/// (actual exceeding WCET by `overrun_factor`) are injected with
/// per-task probability `prob` for each `prob` in `probs`. Every scheme
/// sees the identical fault sets on the identical realizations, so
/// miss-rate and energy columns are directly comparable. At
/// `prob = 0.0` the numbers reproduce the fault-free baselines exactly.
///
/// # Errors
///
/// Propagates [`SimError`] from plan validation or any replication.
pub fn fault_sweep(
    platform: Platform,
    overrun_factor: f64,
    probs: &[f64],
    cfg: &ExperimentConfig,
) -> Result<FaultSweepOutput, SimError> {
    let app = atr_app();
    let setup = Setup::for_load(app, platform.model(), 2, 0.6)
        .expect("load 0.6 is feasible by construction");
    let mut evals: Vec<EvalResult> = Vec::with_capacity(probs.len());
    for &prob in probs {
        let plan = FaultPlan::overruns(prob, overrun_factor, cfg.base_seed ^ 0xFA);
        evals.push(evaluate_with_faults(&setup, cfg, Some(&plan))?);
    }
    let title = format!(
        "ATR, 2 processors, load 0.6, overrun factor {}, {}",
        overrun_factor,
        platform.name()
    );
    let mut miss_rate = Table::new(
        format!("Deadline-miss rate vs overrun probability — {title}"),
        "overrun_prob",
        probs.to_vec(),
    );
    let mut energy = Table::new(
        format!("Normalized energy vs overrun probability — {title}"),
        "overrun_prob",
        probs.to_vec(),
    );
    let mut recovery_energy = Table::new(
        format!("Recovery energy per run vs overrun probability — {title}"),
        "overrun_prob",
        probs.to_vec(),
    );
    for &scheme in &cfg.schemes {
        miss_rate.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| e.of(scheme).map(|s| s.miss_rate()).unwrap_or(f64::NAN))
                .collect(),
        );
        energy.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| e.normalized_energy(scheme).unwrap_or(f64::NAN))
                .collect(),
        );
        recovery_energy.push_series(
            scheme.name(),
            evals
                .iter()
                .map(|e| {
                    e.of(scheme)
                        .map(|s| s.recovery_energy.mean())
                        .unwrap_or(f64::NAN)
                })
                .collect(),
        );
    }
    let injected = evals.iter().map(|e| e.total_faults_injected()).sum();
    let detected = evals
        .iter()
        .flat_map(|e| e.stats.iter())
        .map(|s| s.faults.overruns_detected)
        .sum();
    Ok(FaultSweepOutput {
        miss_rate,
        energy,
        recovery_energy,
        injected,
        detected,
    })
}

/// **Tables 1 and 2** — renders a processor model's voltage/speed table in
/// the paper's layout.
pub fn level_table(model: &ProcessorModel) -> Table {
    let levels = model.levels().expect("discrete model");
    let mut t = Table::new(
        format!("Speed & voltage levels of {}", model.name()),
        "level",
        (1..=levels.len()).map(|i| i as f64).collect(),
    );
    t.push_series("f(MHz)", levels.iter().map(|l| l.freq_mhz).collect());
    t.push_series("V(V)", levels.iter().map(|l| l.voltage).collect());
    t.push_series(
        "norm. speed",
        levels
            .iter()
            .map(|l| l.freq_mhz / model.max_freq_mhz())
            .collect(),
    );
    t.push_series(
        "norm. power",
        levels.iter().map(|l| model.level_power(l)).collect(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::quick(8)
    }

    #[test]
    fn fig4_smoke() {
        let out = fig_energy_vs_load(Platform::XScale, 2, &tiny());
        assert_eq!(out.energy.x.len(), 10);
        assert_eq!(out.energy.series.len(), 6);
        assert_eq!(out.total_misses, 0);
        // NPM normalizes to 1 everywhere.
        for v in &out.energy.series("NPM").expect("NPM series").values {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig6_smoke() {
        let out = fig_energy_vs_alpha(Platform::Transmeta, &tiny());
        assert_eq!(out.energy.x.len(), 10);
        assert_eq!(out.total_misses, 0);
    }

    #[test]
    fn ablations_smoke() {
        assert_eq!(ablation_smin(&tiny()).total_misses, 0);
        assert_eq!(ablation_levels(&tiny()).total_misses, 0);
        assert_eq!(ablation_overhead(Platform::XScale, &tiny()).total_misses, 0);
        assert_eq!(ablation_procs(Platform::Transmeta, &tiny()).total_misses, 0);
    }

    #[test]
    fn level_tables_match_paper() {
        let t1 = level_table(&ProcessorModel::transmeta5400());
        assert_eq!(t1.x.len(), 16);
        let t2 = level_table(&ProcessorModel::xscale());
        assert_eq!(t2.x.len(), 5);
        assert_eq!(
            t2.series("f(MHz)").expect("frequency series").values[0],
            150.0
        );
    }

    #[test]
    fn oracle_gap_is_finite_and_npm_gap_large() {
        // On discrete tables schemes may dip slightly below 1 (level
        // mixing beats the rounded-up single speed) — see
        // `pas_core::oracle` — but gaps stay positive and NPM's gap is
        // clearly the largest at moderate load.
        let t = oracle_gap_vs_load(Platform::XScale, 2, &tiny());
        for series in &t.series {
            for v in &series.values {
                assert!(v.is_finite() && *v > 0.3, "{}: gap {v}", series.name);
            }
        }
        let npm = &t.series("NPM").expect("NPM series").values;
        let gss = &t.series("GSS").expect("GSS series").values;
        assert!(npm[4] > gss[4], "NPM gap exceeds GSS gap at load 0.5");
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let t = energy_breakdown(Platform::Transmeta, 2, 0.5, &tiny());
        let busy = &t.series("busy").expect("busy series").values;
        let idle = &t.series("idle").expect("idle series").values;
        let trans = &t.series("transition").expect("transition series").values;
        let total = &t.series("total").expect("total series").values;
        for i in 0..t.x.len() {
            assert!((busy[i] + idle[i] + trans[i] - total[i]).abs() < 1e-9);
        }
        // NPM (first scheme) normalizes to total 1.
        assert!((total[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_floor_recovers_energy() {
        let t = ablation_leakage(Platform::Transmeta, &ExperimentConfig::quick(24));
        let gss = &t.series("GSS").expect("GSS series").values;
        let gss_floor = &t.series("GSS+floor").expect("floored series").values;
        // At zero leakage the floor is the minimum speed: identical runs.
        assert!((gss[0] - gss_floor[0]).abs() < 1e-9);
        // At heavy leakage the floor must not hurt, and should help.
        let last = t.x.len() - 1;
        assert!(
            gss_floor[last] <= gss[last] + 1e-9,
            "floor hurt: {} vs {}",
            gss_floor[last],
            gss[last]
        );
        assert!(
            gss_floor[last] < gss[last] - 1e-3,
            "floor should recover energy at rho=0.4: {} vs {}",
            gss_floor[last],
            gss[last]
        );
    }

    #[test]
    fn stream_carryover_never_increases_changes() {
        let t = stream_carryover(Platform::XScale, &ExperimentConfig::quick(4));
        let cold = &t.series("cold changes/frame").expect("cold series").values;
        let warm = &t.series("warm changes/frame").expect("warm series").values;
        for (c, w) in cold.iter().zip(warm) {
            assert!(w <= &(c + 1e-9), "carry-over increased changes: {w} vs {c}");
        }
        // NPM (index 0) has zero changes either way.
        assert_eq!(cold[0], 0.0);
        assert_eq!(warm[0], 0.0);
    }

    #[test]
    fn fault_sweep_zero_prob_reproduces_baseline() {
        let cfg = tiny();
        let out = fault_sweep(Platform::Transmeta, 1.5, &[0.0, 0.3], &cfg).expect("sweep runs");
        // prob 0: no misses, NPM normalization exactly 1.
        for series in &out.miss_rate.series {
            assert_eq!(series.values[0], 0.0, "{} missed at prob 0", series.name);
        }
        let npm = out.energy.series("NPM").expect("NPM series");
        assert!((npm.values[0] - 1.0).abs() < 1e-12);
        // prob 0.3 with factor 1.5 injects and detects overruns.
        assert!(out.injected > 0);
        assert!(out.detected > 0);
        let recovery = out.recovery_energy.series("GSS").expect("GSS series");
        assert_eq!(recovery.values[0], 0.0, "no recovery energy at prob 0");
        assert!(recovery.values[1] > 0.0, "recovery energy at prob 0.3");
    }

    #[test]
    fn atr_app_is_stable() {
        let a = atr_app();
        let b = atr_app();
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.kind.wcet(), y.kind.wcet());
        }
    }
}
