#![warn(missing_docs)]

//! Regenerates every table and figure of the ICPP'02 evaluation.
//!
//! * [`runner`] — the Monte-Carlo harness: each data point is the mean of N
//!   (default 1000) seeded runs; all schemes are evaluated on *identical*
//!   realizations (paired design), and replications run in parallel with
//!   rayon.
//! * [`figures`] — one function per paper table/figure plus the ablations
//!   the paper lists as future work. Each returns [`pas_stats::Table`]s
//!   ready for text/markdown/CSV rendering.
//! * [`cli`] — a tiny argument parser shared by the `fig4`, `fig5`, `fig6`,
//!   `table1`, `table2` and `ablation_*` binaries.
//!
//! Normalization follows the paper: each scheme's mean energy is divided by
//! the mean energy of NPM (no power management) measured on the same
//! realizations.

pub mod cli;
pub mod figures;
pub mod runner;
pub mod traces;

pub use figures::Platform;
pub use runner::{evaluate, EvalResult, ExperimentConfig, SchemeStats};
