//! Minimal argument parsing shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--reps N` — Monte-Carlo replications per point (default 1000, the
//!   paper's setting);
//! * `--seed S` — base seed (default the paper-config seed);
//! * `--csv PATH` — additionally write the energy table as CSV;
//! * `--markdown` — print GitHub-flavored markdown instead of aligned text;
//! * `--emit-trace DIR` — write one Chrome trace-event file per scheme
//!   (a single representative run) into `DIR` for Perfetto inspection.

use crate::figures::{Platform, SweepOutput};
use crate::runner::ExperimentConfig;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment configuration (replications, seed, schemes).
    pub cfg: ExperimentConfig,
    /// CSV output path, if requested.
    pub csv: Option<String>,
    /// SVG output path, if requested.
    pub svg: Option<String>,
    /// Render markdown instead of plain text.
    pub markdown: bool,
    /// Directory for per-scheme reference Chrome traces, if requested.
    pub emit_trace: Option<String>,
    /// Per-section attribution (honored by the `breakdown` binary).
    pub per_section: bool,
}

impl Options {
    /// Parses `std::env::args`-style arguments (the first element is the
    /// program name and is skipped). Unknown flags abort with a message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut cfg = ExperimentConfig::paper_defaults();
        let mut csv = None;
        let mut svg = None;
        let mut markdown = false;
        let mut emit_trace = None;
        let mut per_section = false;
        let mut it = args.into_iter().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--reps" => {
                    let v = it.next().ok_or("--reps needs a value")?;
                    cfg.replications = v.parse().map_err(|_| format!("bad --reps value: {v}"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cfg.base_seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                }
                "--csv" => {
                    csv = Some(it.next().ok_or("--csv needs a path")?);
                }
                "--svg" => {
                    svg = Some(it.next().ok_or("--svg needs a path")?);
                }
                "--markdown" => markdown = true,
                "--emit-trace" => {
                    emit_trace = Some(it.next().ok_or("--emit-trace needs a directory")?);
                }
                "--per-section" => per_section = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: <bin> [--reps N] [--seed S] [--csv PATH] [--svg PATH] \
                         [--markdown] [--emit-trace DIR] [--per-section]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if cfg.replications == 0 {
            return Err("--reps must be positive".into());
        }
        Ok(Self {
            cfg,
            csv,
            svg,
            markdown,
            emit_trace,
            per_section,
        })
    }

    /// Parses the real process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Renders a sweep to stdout (and CSV when requested). Reports deadline
    /// misses loudly — a correct configuration never produces any.
    pub fn emit(&self, out: &SweepOutput) {
        if self.markdown {
            print!("{}", out.energy.to_markdown());
            print!("{}", out.speed_changes.to_markdown());
        } else {
            print!("{}", out.energy.to_text());
            println!();
            print!("{}", out.speed_changes.to_text());
        }
        if out.total_misses > 0 {
            eprintln!("WARNING: {} deadline misses!", out.total_misses);
        }
        if let Some(path) = &self.csv {
            if let Err(e) = std::fs::write(path, out.energy.to_csv()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = &self.svg {
            let svg = pas_stats::to_svg(&out.energy, 720, 440);
            if let Err(e) = std::fs::write(path, svg) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }

    /// Honors `--emit-trace DIR`: writes one reference Chrome trace per
    /// scheme for each platform. A no-op when the flag was absent.
    pub fn emit_reference_traces(&self, platforms: &[Platform]) {
        let Some(dir) = &self.emit_trace else {
            return;
        };
        for &platform in platforms {
            match crate::traces::write_reference_traces(
                std::path::Path::new(dir),
                platform,
                self.cfg.base_seed,
            ) {
                Ok(paths) => {
                    for path in paths {
                        eprintln!("wrote {path}");
                    }
                }
                Err(e) => {
                    eprintln!("failed to emit traces: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        std::iter::once("prog".to_string())
            .chain(s.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn defaults_match_paper() {
        let o = Options::parse(args(&[])).unwrap();
        assert_eq!(o.cfg.replications, 1000);
        assert!(o.csv.is_none());
        assert!(!o.markdown);
    }

    #[test]
    fn parses_all_flags() {
        let o = Options::parse(args(&[
            "--reps",
            "50",
            "--seed",
            "7",
            "--csv",
            "/tmp/x.csv",
            "--svg",
            "/tmp/x.svg",
            "--markdown",
            "--emit-trace",
            "/tmp/traces",
            "--per-section",
        ]))
        .unwrap();
        assert_eq!(o.cfg.replications, 50);
        assert_eq!(o.cfg.base_seed, 7);
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(o.svg.as_deref(), Some("/tmp/x.svg"));
        assert!(o.markdown);
        assert_eq!(o.emit_trace.as_deref(), Some("/tmp/traces"));
        assert!(o.per_section);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Options::parse(args(&["--reps"])).is_err());
        assert!(Options::parse(args(&["--reps", "zero"])).is_err());
        assert!(Options::parse(args(&["--reps", "0"])).is_err());
        assert!(Options::parse(args(&["--bogus"])).is_err());
        assert!(Options::parse(args(&["--emit-trace"])).is_err());
    }
}
