#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::indexing_slicing))]

//! Static analysis and feasibility verification for the PAS workspace —
//! the engine behind `pas check`.
//!
//! The crate is a pure front-end: it never mutates its inputs and never
//! perturbs the numeric simulation path. It turns the mid-simulation
//! panics and `SimError`s a malformed input would cause into upfront
//! [`Diagnostic`]s with stable `PAS0xxx` codes:
//!
//! | range     | subject |
//! |-----------|---------|
//! | `PAS00xx` | graph well-formedness ([`graph_checks`]) |
//! | `PAS01xx` | platform, overheads, run parameters ([`platform_checks`]) |
//! | `PAS02xx` | fault plans ([`fault_checks`]) |
//! | `PAS03xx` | Theorem-1 feasibility ([`feasibility`]) |
//! | `PAS04xx` | serialized plan artifacts ([`plan_checks`]) |
//! | `PAS06xx` | symbolic energy/timing bounds ([`bounds`]) |
//!
//! The full catalog with messages and the feasibility-verifier soundness
//! argument live in DESIGN.md §3e; `docs/diagnostics.md` is the
//! user-facing reference (kept in sync by test).
//!
//! # Examples
//!
//! Checking a workload/platform pair end to end:
//!
//! ```
//! use andor_graph::Segment;
//! use dvfs_power::{Overheads, ProcessorModel};
//! use pas_analyze::{check_application, DeadlineSpec};
//!
//! let g = Segment::seq([
//!     Segment::task("A", 8.0, 5.0),
//!     Segment::task("B", 4.0, 2.0),
//! ])
//! .lower()
//! .unwrap();
//! let analysis = check_application(
//!     &g,
//!     "app",
//!     &ProcessorModel::xscale(),
//!     "xscale",
//!     Overheads::paper_defaults(),
//!     2,
//!     DeadlineSpec::Load(0.5),
//! );
//! assert!(analysis.report.is_clean());
//! assert!(analysis.feasibility.unwrap().static_slack_ms > 0.0);
//! ```
//!
//! Verifying a serialized plan artifact against its inputs:
//!
//! ```
//! use andor_graph::Segment;
//! use dvfs_power::ProcessorModel;
//! use pas_analyze::check_plan;
//! use pas_core::{PlanArtifact, Scheme, Setup};
//!
//! let g = Segment::seq([
//!     Segment::task("A", 8.0, 5.0),
//!     Segment::task("B", 4.0, 2.0),
//! ])
//! .lower()
//! .unwrap();
//! let setup = Setup::for_load(g.clone(), ProcessorModel::xscale(), 2, 0.5).unwrap();
//! let artifact = PlanArtifact::from_setup(&setup, Scheme::Gss, "app", "xscale");
//! let report = check_plan(&artifact, "plan.json", &g, "app", &setup.model);
//! assert!(report.is_clean());
//! ```

pub mod bounds;
pub mod diag;
mod enumeration;
pub mod fault_checks;
pub mod feasibility;
pub mod fixes;
pub mod graph_checks;
pub mod plan_checks;
pub mod platform_checks;

pub use bounds::{
    analyze_bounds, BoundsAnalysis, BoundsConfig, EnergySplit, FaultEnvelope, Interval,
    SchemeBounds,
};
pub use diag::{Code, Diagnostic, Loc, Report, Severity};
pub use enumeration::ENUMERATION_THRESHOLD;
pub use fault_checks::check_fault_plan;
pub use feasibility::{verify_feasibility, DeadlineSpec, Feasibility};
pub use fixes::fix_graph;
pub use graph_checks::check_graph;
pub use plan_checks::check_plan;
pub use platform_checks::{check_model, check_overheads, check_run_params};

use andor_graph::{AndOrGraph, SectionGraph};
use dvfs_power::{Overheads, ProcessorModel};

/// The result of a full application check: all diagnostics, plus the
/// feasibility summary when the inputs were sound enough to compute one.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every diagnostic, in check order (graph, platform, parameters,
    /// feasibility).
    pub report: Report,
    /// Feasibility findings; `None` when structural errors prevented the
    /// verifier from running.
    pub feasibility: Option<Feasibility>,
}

/// Runs the complete static-analysis pipeline over one workload/platform
/// pair: graph well-formedness, platform and parameter validity, then —
/// only if everything structural is clean — the Theorem-1 feasibility
/// verifier.
pub fn check_application(
    g: &AndOrGraph,
    graph_src: &str,
    model: &ProcessorModel,
    model_src: &str,
    overheads: Overheads,
    num_procs: usize,
    spec: DeadlineSpec,
) -> Analysis {
    let mut report = check_graph(g, graph_src);
    report.merge(check_model(model, model_src));
    report.merge(check_overheads(&overheads, model_src));
    report.merge(check_run_params(
        num_procs,
        match spec {
            DeadlineSpec::Deadline(d) => Some(d),
            DeadlineSpec::Load(_) => None,
        },
        graph_src,
    ));
    if report.has_errors() {
        return Analysis {
            report,
            feasibility: None,
        };
    }
    let sections = match SectionGraph::build(g) {
        Ok(s) => s,
        Err(e) => {
            // Unreachable after a clean `check_graph`, but kept total.
            report.push(Diagnostic::new(
                Code::Pas0011,
                Loc::whole(graph_src),
                e.to_string(),
            ));
            return Analysis {
                report,
                feasibility: None,
            };
        }
    };
    let (fr, feasibility) =
        verify_feasibility(g, &sections, model, overheads, num_procs, spec, graph_src);
    report.merge(fr);
    Analysis {
        report,
        feasibility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;

    #[test]
    fn end_to_end_clean_application() {
        let g = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::par([Segment::task("B", 6.0, 3.0), Segment::task("C", 2.0, 1.0)]),
        ])
        .lower()
        .expect("valid segment lowers");
        let a = check_application(
            &g,
            "app",
            &ProcessorModel::xscale(),
            "xscale",
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Load(0.5),
        );
        assert!(a.report.is_clean(), "{}", a.report.render_human());
        assert!(a.feasibility.expect("computed").static_slack_ms > 0.0);
    }

    #[test]
    fn structural_errors_suppress_feasibility() {
        let g: AndOrGraph = serde_json::from_str(r#"{"nodes": []}"#).expect("parses");
        let a = check_application(
            &g,
            "bad",
            &ProcessorModel::xscale(),
            "xscale",
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Deadline(10.0),
        );
        assert!(a.report.has_errors());
        assert!(a.feasibility.is_none());
    }
}
