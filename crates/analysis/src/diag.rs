//! The diagnostics data model: stable codes, severities, source
//! locations, and a renderable [`Report`].
//!
//! Every check in this crate emits [`Diagnostic`]s rather than erroring
//! out: a single `pas check` run reports *all* problems it can find, not
//! just the first, and the caller decides (via [`Report::has_errors`] /
//! `--deny-warnings`) whether the input is accepted.

use serde::Serialize;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational only — never affects the exit status.
    Info,
    /// The input is suspicious or degenerate but simulable; rejected
    /// only under `--deny-warnings`.
    Warning,
    /// The input is invalid or statically infeasible; always rejected.
    Error,
}

impl Severity {
    /// The lowercase label used in human-readable output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes.
///
/// The numeric ranges partition by subject: `PAS00xx` graph
/// well-formedness, `PAS01xx` platform/plan parameters, `PAS02xx` fault
/// plans, `PAS03xx` feasibility, `PAS04xx` plan-artifact verification,
/// `PAS05xx` service request lifecycle (`pas serve`: ingest rejection,
/// back-pressure shedding, deadline/panic containment, stale-plan
/// degradation), `PAS06xx` symbolic energy/timing bounds
/// (`pas check --bounds`). Codes are append-only: once published a
/// code keeps its meaning forever (tests snapshot them), and retired
/// checks leave holes rather than renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[allow(missing_docs)] // Each variant is documented by `description()`.
pub enum Code {
    Pas0001,
    Pas0002,
    Pas0003,
    Pas0004,
    Pas0005,
    Pas0006,
    Pas0007,
    Pas0008,
    Pas0009,
    Pas0010,
    Pas0011,
    Pas0012,
    Pas0013,
    Pas0101,
    Pas0102,
    Pas0103,
    Pas0104,
    Pas0105,
    Pas0106,
    Pas0107,
    Pas0108,
    Pas0201,
    Pas0202,
    Pas0203,
    Pas0204,
    Pas0205,
    Pas0206,
    Pas0301,
    Pas0302,
    Pas0303,
    Pas0401,
    Pas0402,
    Pas0403,
    Pas0404,
    Pas0405,
    Pas0406,
    Pas0407,
    Pas0408,
    Pas0409,
    Pas0501,
    Pas0502,
    Pas0503,
    Pas0504,
    Pas0505,
    Pas0506,
    Pas0507,
    Pas0508,
    Pas0601,
    Pas0602,
    Pas0603,
    Pas0604,
    Pas0605,
}

impl Code {
    /// Every code in the catalog, in numeric order. Documentation sync
    /// tests iterate this to ensure `docs/diagnostics.md` covers the
    /// whole catalog — a new variant that is not added here fails the
    /// `all_is_exhaustive` test below.
    pub const ALL: [Code; 52] = [
        Code::Pas0001,
        Code::Pas0002,
        Code::Pas0003,
        Code::Pas0004,
        Code::Pas0005,
        Code::Pas0006,
        Code::Pas0007,
        Code::Pas0008,
        Code::Pas0009,
        Code::Pas0010,
        Code::Pas0011,
        Code::Pas0012,
        Code::Pas0013,
        Code::Pas0101,
        Code::Pas0102,
        Code::Pas0103,
        Code::Pas0104,
        Code::Pas0105,
        Code::Pas0106,
        Code::Pas0107,
        Code::Pas0108,
        Code::Pas0201,
        Code::Pas0202,
        Code::Pas0203,
        Code::Pas0204,
        Code::Pas0205,
        Code::Pas0206,
        Code::Pas0301,
        Code::Pas0302,
        Code::Pas0303,
        Code::Pas0401,
        Code::Pas0402,
        Code::Pas0403,
        Code::Pas0404,
        Code::Pas0405,
        Code::Pas0406,
        Code::Pas0407,
        Code::Pas0408,
        Code::Pas0409,
        Code::Pas0501,
        Code::Pas0502,
        Code::Pas0503,
        Code::Pas0504,
        Code::Pas0505,
        Code::Pas0506,
        Code::Pas0507,
        Code::Pas0508,
        Code::Pas0601,
        Code::Pas0602,
        Code::Pas0603,
        Code::Pas0604,
        Code::Pas0605,
    ];
    /// The stable wire form, e.g. `"PAS0009"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Pas0001 => "PAS0001",
            Code::Pas0002 => "PAS0002",
            Code::Pas0003 => "PAS0003",
            Code::Pas0004 => "PAS0004",
            Code::Pas0005 => "PAS0005",
            Code::Pas0006 => "PAS0006",
            Code::Pas0007 => "PAS0007",
            Code::Pas0008 => "PAS0008",
            Code::Pas0009 => "PAS0009",
            Code::Pas0010 => "PAS0010",
            Code::Pas0011 => "PAS0011",
            Code::Pas0012 => "PAS0012",
            Code::Pas0013 => "PAS0013",
            Code::Pas0101 => "PAS0101",
            Code::Pas0102 => "PAS0102",
            Code::Pas0103 => "PAS0103",
            Code::Pas0104 => "PAS0104",
            Code::Pas0105 => "PAS0105",
            Code::Pas0106 => "PAS0106",
            Code::Pas0107 => "PAS0107",
            Code::Pas0108 => "PAS0108",
            Code::Pas0201 => "PAS0201",
            Code::Pas0202 => "PAS0202",
            Code::Pas0203 => "PAS0203",
            Code::Pas0204 => "PAS0204",
            Code::Pas0205 => "PAS0205",
            Code::Pas0206 => "PAS0206",
            Code::Pas0301 => "PAS0301",
            Code::Pas0302 => "PAS0302",
            Code::Pas0303 => "PAS0303",
            Code::Pas0401 => "PAS0401",
            Code::Pas0402 => "PAS0402",
            Code::Pas0403 => "PAS0403",
            Code::Pas0404 => "PAS0404",
            Code::Pas0405 => "PAS0405",
            Code::Pas0406 => "PAS0406",
            Code::Pas0407 => "PAS0407",
            Code::Pas0408 => "PAS0408",
            Code::Pas0409 => "PAS0409",
            Code::Pas0501 => "PAS0501",
            Code::Pas0502 => "PAS0502",
            Code::Pas0503 => "PAS0503",
            Code::Pas0504 => "PAS0504",
            Code::Pas0505 => "PAS0505",
            Code::Pas0506 => "PAS0506",
            Code::Pas0507 => "PAS0507",
            Code::Pas0508 => "PAS0508",
            Code::Pas0601 => "PAS0601",
            Code::Pas0602 => "PAS0602",
            Code::Pas0603 => "PAS0603",
            Code::Pas0604 => "PAS0604",
            Code::Pas0605 => "PAS0605",
        }
    }

    /// The default severity this code is emitted at.
    pub fn severity(self) -> Severity {
        use Severity::*;
        match self {
            Code::Pas0001
            | Code::Pas0002
            | Code::Pas0003
            | Code::Pas0004
            | Code::Pas0005
            | Code::Pas0006
            | Code::Pas0007
            | Code::Pas0008
            | Code::Pas0009
            | Code::Pas0010
            | Code::Pas0011
            | Code::Pas0101
            | Code::Pas0102
            | Code::Pas0103
            | Code::Pas0105
            | Code::Pas0106
            | Code::Pas0107
            | Code::Pas0201
            | Code::Pas0202
            | Code::Pas0203
            | Code::Pas0301
            | Code::Pas0401
            | Code::Pas0402
            | Code::Pas0403
            | Code::Pas0404
            | Code::Pas0405
            | Code::Pas0406
            | Code::Pas0407
            | Code::Pas0408
            | Code::Pas0409
            | Code::Pas0501
            | Code::Pas0502
            | Code::Pas0503
            | Code::Pas0505
            | Code::Pas0506
            | Code::Pas0508
            | Code::Pas0601 => Error,
            Code::Pas0012
            | Code::Pas0013
            | Code::Pas0104
            | Code::Pas0108
            | Code::Pas0204
            | Code::Pas0205
            | Code::Pas0302
            | Code::Pas0504
            | Code::Pas0507
            | Code::Pas0605 => Warning,
            Code::Pas0206 | Code::Pas0303 | Code::Pas0602 | Code::Pas0603 | Code::Pas0604 => Info,
        }
    }

    /// One-line description of what the check verifies (the catalog
    /// entry; see DESIGN.md §3e).
    pub fn description(self) -> &'static str {
        match self {
            Code::Pas0001 => "graph has no nodes",
            Code::Pas0002 => "edge endpoint references a node that does not exist",
            Code::Pas0003 => "successor/predecessor adjacency lists disagree",
            Code::Pas0004 => "self loop",
            Code::Pas0005 => "duplicate edge",
            Code::Pas0006 => "execution times must satisfy 0 < acet <= wcet and be finite",
            Code::Pas0007 => "OR branch-probability count differs from successor count",
            Code::Pas0008 => "OR branch probability outside (0, 1]",
            Code::Pas0009 => "OR branch probabilities do not sum to 1",
            Code::Pas0010 => "graph contains a cycle",
            Code::Pas0011 => "OR-seriality / program-section structure violation",
            Code::Pas0012 => "node unreachable from any source",
            Code::Pas0013 => "isolated node (no predecessors or successors)",
            Code::Pas0101 => "unknown platform specification",
            Code::Pas0102 => "invalid speed-level table",
            Code::Pas0103 => "speed levels not monotone (frequency up, voltage non-decreasing)",
            Code::Pas0104 => "level table deviates from the published table of the same name",
            Code::Pas0105 => "overhead parameters must be finite and non-negative",
            Code::Pas0106 => "processor count must be positive",
            Code::Pas0107 => "deadline must be finite and positive",
            Code::Pas0108 => "SS(2) switch time falls outside [0, D]",
            Code::Pas0201 => "fault probability outside [0, 1]",
            Code::Pas0202 => "overrun factor must be finite and >= 1",
            Code::Pas0203 => "stall duration must be finite and non-negative",
            Code::Pas0204 => "positive stall probability with zero stall duration",
            Code::Pas0205 => "fault plan targets a graph with no computation nodes",
            Code::Pas0206 => "fault plan injects nothing",
            Code::Pas0301 => "statically infeasible: worst-case path misses the deadline at f_max",
            Code::Pas0302 => "zero static slack: the worst case finishes exactly at the deadline",
            Code::Pas0303 => {
                "OR-path count exceeds the enumeration threshold; conservative bound used"
            }
            Code::Pas0401 => "plan artifact has an unsupported schema version",
            Code::Pas0402 => "plan artifact does not fit the workload (shape mismatch)",
            Code::Pas0403 => "plan canonical schedule differs from independent re-derivation",
            Code::Pas0404 => "plan latest start time differs from independent re-derivation",
            Code::Pas0405 => "plan timing statistics differ from independent re-derivation",
            Code::Pas0406 => "plan scheme parameters differ from independent re-derivation",
            Code::Pas0407 => "SS(2) switch time violates the valid switch window",
            Code::Pas0408 => "speculative speed undercuts the GSS-guaranteed floor",
            Code::Pas0409 => "plan deadline is infeasible for the workload",
            Code::Pas0501 => "service request is not valid JSON",
            Code::Pas0502 => "service request has an unknown kind",
            Code::Pas0503 => "service request is missing a field or has an invalid parameter",
            Code::Pas0504 => "service queue is full; request shed with a retry-after hint",
            Code::Pas0505 => "service request exceeded its deadline and was cancelled",
            Code::Pas0506 => "service request handler panicked; the worker recovered",
            Code::Pas0507 => "service served a stale cached plan after re-derivation failed",
            Code::Pas0508 => "service request failed during planning or simulation",
            Code::Pas0601 => "symbolic bounds derivation failed its internal soundness self-check",
            Code::Pas0602 => {
                "OR-path count exceeds the enumeration threshold; bounds use the DAG fallback"
            }
            Code::Pas0603 => "symbolic energy/makespan interval for one scheme (with witnesses)",
            Code::Pas0604 => "optimality gap: scheme worst case vs. the theoretical minimum energy",
            Code::Pas0605 => {
                "under the fault envelope the worst-case makespan exceeds the deadline"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: which source (file path or builtin name)
/// and, optionally, which node/field inside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Loc {
    /// The source label: a file path, or a builtin spec such as
    /// `synthetic` or `transmeta`.
    pub source: String,
    /// Path inside the source, e.g. `nodes[3]` or `overrun_prob`.
    /// Empty when the diagnostic concerns the source as a whole.
    pub path: String,
}

impl Loc {
    /// A location naming the whole source.
    pub fn whole(source: &str) -> Self {
        Loc {
            source: source.to_string(),
            path: String::new(),
        }
    }

    /// A location naming a node or field inside the source.
    pub fn at(source: &str, path: impl Into<String>) -> Self {
        Loc {
            source: source.to_string(),
            path: path.into(),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            f.write_str(&self.source)
        } else {
            write!(f, "{}:{}", self.source, self.path)
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (normally `code.severity()`, but kept explicit so a
    /// future `--warn-as-error`-style remap stays representable).
    pub severity: Severity,
    /// Where the problem is.
    pub loc: Loc,
    /// Specific, human-readable message with the offending values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: Code, loc: Loc, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            loc,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.loc, self.message
        )
    }
}

/// An ordered collection of diagnostics from one or more checks.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Report {
    /// The findings, in emission order (source order, then check order).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// True when no diagnostics at all were emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one `Error` was emitted.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True when at least one `Warning` was emitted.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// Whether the checked inputs should be rejected.
    pub fn rejects(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.has_warnings())
    }

    /// Renders the human-readable form: one line per diagnostic plus a
    /// summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w, i) = self.counts();
        if self.is_clean() {
            out.push_str("check passed: no diagnostics\n");
        } else {
            out.push_str(&format!(
                "check found {e} error(s), {w} warning(s), {i} info(s)\n"
            ));
        }
        out
    }

    /// Renders the machine-readable JSON form.
    pub fn render_json(&self) -> String {
        // Owned structs: the offline serde shim does not derive for
        // lifetime-generic types.
        #[derive(Serialize)]
        struct WireDiag {
            code: String,
            severity: String,
            source: String,
            path: String,
            message: String,
        }
        #[derive(Serialize)]
        struct Wire {
            errors: usize,
            warnings: usize,
            infos: usize,
            diagnostics: Vec<WireDiag>,
        }
        let (errors, warnings, infos) = self.counts();
        let wire = Wire {
            errors,
            warnings,
            infos,
            diagnostics: self
                .diagnostics
                .iter()
                .map(|d| WireDiag {
                    code: d.code.as_str().to_string(),
                    severity: d.severity.label().to_string(),
                    source: d.loc.source.clone(),
                    path: d.loc.path.clone(),
                    message: d.message.clone(),
                })
                .collect(),
        };
        serde_json::to_string_pretty(&wire).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive() {
        // Strictly ascending wire forms ⇒ no duplicates and numeric order.
        for pair in Code::ALL.windows(2) {
            assert!(
                pair[0].as_str() < pair[1].as_str(),
                "{} must precede {}",
                pair[0],
                pair[1]
            );
        }
        // Every code has a nonempty description and a severity.
        for c in Code::ALL {
            assert!(!c.description().is_empty(), "{c}");
            let _ = c.severity();
        }
    }

    #[test]
    fn codes_round_trip_and_sort() {
        assert_eq!(Code::Pas0009.as_str(), "PAS0009");
        assert_eq!(Code::Pas0301.severity(), Severity::Error);
        assert_eq!(Code::Pas0302.severity(), Severity::Warning);
        assert_eq!(Code::Pas0303.severity(), Severity::Info);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn report_counts_and_render() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Diagnostic::new(
            Code::Pas0010,
            Loc::whole("w.json"),
            "graph contains a cycle",
        ));
        r.push(Diagnostic::new(
            Code::Pas0302,
            Loc::whole("w.json"),
            "zero static slack",
        ));
        assert_eq!(r.counts(), (1, 1, 0));
        assert!(r.has_errors());
        assert!(r.rejects(false));
        let human = r.render_human();
        assert!(human.contains("error[PAS0010] w.json: graph contains a cycle"));
        assert!(human.contains("1 error(s), 1 warning(s)"));
        let json = r.render_json();
        assert!(json.contains("\"PAS0010\""));
        assert!(json.contains("\"errors\": 1"));
    }

    #[test]
    fn deny_warnings_rejects_warning_only_reports() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::Pas0302,
            Loc::whole("w.json"),
            "zero static slack",
        ));
        assert!(!r.rejects(false));
        assert!(r.rejects(true));
    }
}
