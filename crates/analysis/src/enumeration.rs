//! Shared Theorem-1 OR-path enumeration.
//!
//! Three analysis passes reason over the same path set — the feasibility
//! verifier (`PAS03xx`), the plan-artifact verifier (`PAS04xx`) and the
//! symbolic bounds pass (`PAS06xx`). This module is their single source
//! of truth for
//!
//! * counting OR-paths *without* enumerating them (a memoized recursion
//!   over the section DAG, saturating at `u64::MAX`), so every client
//!   makes the enumerate-vs-fallback decision against the same
//!   [`ENUMERATION_THRESHOLD`];
//! * walking every path (scenario, probability, section chain) below the
//!   threshold;
//! * summing a per-section table along a chain (the canonical "chain
//!   sum" every symbolic quantity reduces to);
//! * rendering a scenario's OR choices as a human-readable witness.

use andor_graph::{AndOrGraph, NodeId, Scenario, SectionGraph, SectionId};
use std::collections::HashMap;

/// Maximum number of OR-paths enumerated exactly; above this every
/// client falls back to a conservative recursive bound and notes the
/// downgrade (`PAS0303` for the verifiers, `PAS0602` for bounds).
pub const ENUMERATION_THRESHOLD: u64 = 4096;

/// Counts OR-paths without enumerating them: a memoized recursion over
/// the section chain, saturating at `u64::MAX`.
pub(crate) fn count_scenarios(g: &AndOrGraph, sections: &SectionGraph) -> u64 {
    let mut memo: HashMap<NodeId, u64> = HashMap::new();
    count_from_section(g, sections, sections.root(), &mut memo)
}

fn count_from_section(
    g: &AndOrGraph,
    sections: &SectionGraph,
    s: SectionId,
    memo: &mut HashMap<NodeId, u64>,
) -> u64 {
    match sections.section(s).exit_or {
        None => 1,
        Some(or) => count_from_or(g, sections, or, memo),
    }
}

fn count_from_or(
    g: &AndOrGraph,
    sections: &SectionGraph,
    or: NodeId,
    memo: &mut HashMap<NodeId, u64>,
) -> u64 {
    if let Some(&c) = memo.get(&or) {
        return c;
    }
    let n_branches = g.node(or).succs.len();
    let count = if n_branches == 0 {
        1 // Terminal OR: the application ends at the synchronization point.
    } else {
        let mut total: u64 = 0;
        for k in 0..n_branches {
            let below = sections
                .branch_section(or, k)
                .map(|b| count_from_section(g, sections, b, memo))
                .unwrap_or(1);
            total = total.saturating_add(below);
        }
        total
    };
    memo.insert(or, count);
    count
}

/// Visits every OR-path: the resolved scenario, its probability, and the
/// chain of sections it executes. Callers must have checked
/// [`count_scenarios`] against [`ENUMERATION_THRESHOLD`] first.
pub(crate) fn for_each_path<F>(g: &AndOrGraph, sections: &SectionGraph, mut f: F)
where
    F: FnMut(&Scenario, f64, &[SectionId]),
{
    for (scenario, p) in sections.enumerate_scenarios(g) {
        let chain = sections.chain(g, &scenario);
        f(&scenario, p, &chain);
    }
}

/// Sums a per-section table (indexed by [`SectionId::index`]) along a
/// chain; missing entries contribute zero.
pub(crate) fn chain_sum(chain: &[SectionId], table: &[f64]) -> f64 {
    chain
        .iter()
        .map(|s| table.get(s.index()).copied().unwrap_or(0.0))
        .sum()
}

/// Renders a scenario's OR choices for humans
/// (`"n3 ('detect') -> branch 1"` per entry).
pub(crate) fn witness(g: &AndOrGraph, scenario: &Scenario) -> Vec<String> {
    scenario
        .choices
        .iter()
        .map(|&(or, k)| format!("{or} ('{}') -> branch {k}", g.node(or).name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;

    fn app() -> AndOrGraph {
        Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("valid segment lowers")
    }

    #[test]
    fn scenario_count_matches_enumeration() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        assert_eq!(
            count_scenarios(&g, &sections),
            sections.enumerate_scenarios(&g).count() as u64
        );
    }

    #[test]
    fn paths_cover_the_probability_mass() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let mut total = 0.0;
        let mut paths = 0;
        for_each_path(&g, &sections, |_, p, chain| {
            total += p;
            paths += 1;
            assert!(!chain.is_empty());
        });
        assert_eq!(paths, 2);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn witness_names_the_branch() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let mut seen = Vec::new();
        for_each_path(&g, &sections, |scenario, _, _| {
            seen.push(witness(&g, scenario));
        });
        assert!(seen
            .iter()
            .any(|w| w.len() == 1 && w[0].contains("branch 0")));
        assert!(seen
            .iter()
            .any(|w| w.len() == 1 && w[0].contains("branch 1")));
    }

    #[test]
    fn chain_sum_ignores_missing_entries() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let table = vec![1.0]; // Shorter than the section count.
        for_each_path(&g, &sections, |_, _, chain| {
            assert_eq!(chain_sum(chain, &table), 1.0);
        });
    }
}
