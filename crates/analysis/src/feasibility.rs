//! Symbolic Theorem-1 feasibility verification (`PAS03xx`).
//!
//! Theorem 1 of the paper guarantees the deadline *given* that the
//! worst-case canonical schedule of every OR-path fits inside `D` at
//! maximum speed. This module proves (or refutes) that premise without
//! running the simulator:
//!
//! 1. The off-line phase is run once at a deliberately loose probe
//!    deadline (it cannot fail for well-formed graphs), yielding the
//!    per-section canonical lengths at WCET/`f_max` — including the
//!    per-task PMP reservation, so the bound is the one the runtime
//!    actually schedules against.
//! 2. The number of OR-paths is counted *without* enumeration (a memoized
//!    sum/chain recursion over the section DAG, saturating on overflow).
//! 3. Below [`ENUMERATION_THRESHOLD`] paths, every scenario is enumerated
//!    and its chain of section lengths summed exactly; the maximizing
//!    path is reported as a witness. Above the threshold, the offline
//!    phase's recursive worst-case (`Tw`) is used as a conservative
//!    bound and PAS0303 notes the downgrade.
//! 4. `worst > D` (with the offline phase's own relative tolerance) is
//!    PAS0301, an error; `worst == D` within float noise is PAS0302, a
//!    zero-static-slack warning — NPM meets the deadline with nothing to
//!    spare, so any overhead mis-modelling shows up as a miss.
//!
//! Soundness: the enumerated per-path sums equal the offline `Tw` by
//! construction (debug-asserted), and `Tw` is exactly the quantity
//! Theorem 1's induction needs — see DESIGN.md §3e for the argument.

use crate::diag::{Code, Diagnostic, Loc, Report};
use crate::enumeration::{self, count_scenarios};
use andor_graph::{AndOrGraph, SectionGraph};
use dvfs_power::{Overheads, ProcessorModel};
use pas_core::{OfflinePlan, PlanError};

pub use crate::enumeration::ENUMERATION_THRESHOLD;

/// How the deadline is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineSpec {
    /// An explicit deadline in milliseconds.
    Deadline(f64),
    /// A system load `Tw / D` in `(0, 1]`; the deadline is derived as
    /// `worst_case / load` (the CLI's `--load` convention).
    Load(f64),
}

/// The verifier's findings, returned alongside the diagnostics so the
/// CLI can print a feasibility summary for clean inputs too.
#[derive(Debug, Clone, PartialEq)]
pub struct Feasibility {
    /// Worst-case canonical finish time over all OR-paths, at `f_max`,
    /// reservations included (ms).
    pub worst_case_ms: f64,
    /// The deadline verified against (ms).
    pub deadline_ms: f64,
    /// `deadline_ms - worst_case_ms` (negative when infeasible).
    pub static_slack_ms: f64,
    /// Number of distinct OR-paths (saturating).
    pub scenarios_total: u64,
    /// True when every path was enumerated; false when the conservative
    /// bound was used.
    pub exact: bool,
    /// The OR choices of the worst path (`"n3 ('detect') -> branch 1"`
    /// per entry); empty for single-path applications or when inexact.
    pub witness: Vec<String>,
}

/// Verifies Theorem-1 feasibility of `(g, model, num_procs)` against
/// `spec`. `sections` must be the decomposition of `g` (the caller has
/// already established graph cleanliness).
pub fn verify_feasibility(
    g: &AndOrGraph,
    sections: &SectionGraph,
    model: &ProcessorModel,
    overheads: Overheads,
    num_procs: usize,
    spec: DeadlineSpec,
    src: &str,
) -> (Report, Option<Feasibility>) {
    let mut r = Report::new();
    let reserve = pas_core::pmp_reserve(model, overheads);
    // A deadline loose enough that the offline phase cannot be
    // infeasible (same construction `Setup::for_load` uses).
    let probe_deadline = (g.total_wcet().max(1.0) + g.num_tasks() as f64 * reserve + 1.0) * 10.0;
    let probe_span = pas_obs::profile::span(pas_obs::profile::names::OFFLINE_PROBE);
    let plan = match OfflinePlan::build_with_pmp_reserve(
        g,
        sections,
        num_procs,
        probe_deadline,
        reserve,
    ) {
        Ok(p) => p,
        Err(e) => {
            push_plan_error(&mut r, e, src);
            return (r, None);
        }
    };
    drop(probe_span);

    let scenarios_total = count_scenarios(g, sections);
    let (worst, exact, witness) = if scenarios_total <= ENUMERATION_THRESHOLD {
        let _enum_span =
            pas_obs::profile::span_with(pas_obs::profile::names::OFFLINE_ENUMERATE, || {
                format!("{scenarios_total} paths")
            });
        let (max, witness) = enumerate_worst(g, sections, &plan);
        debug_assert!(
            (max - plan.worst_total).abs() <= 1e-6 * plan.worst_total.max(1.0),
            "enumerated worst {max} disagrees with offline Tw {}",
            plan.worst_total
        );
        (max, true, witness)
    } else {
        r.push(Diagnostic::new(
            Code::Pas0303,
            Loc::whole(src),
            format!(
                "{scenarios_total} OR-paths exceed the enumeration threshold \
                 {ENUMERATION_THRESHOLD}; using the recursive worst-case bound"
            ),
        ));
        (plan.worst_total, false, Vec::new())
    };

    let deadline = match spec {
        DeadlineSpec::Deadline(d) => d,
        DeadlineSpec::Load(l) => {
            if !(l.is_finite() && l > 0.0 && l <= 1.0) {
                r.push(Diagnostic::new(
                    Code::Pas0107,
                    Loc::at(src, "load"),
                    format!("load {l} must be in (0, 1]"),
                ));
                return (r, None);
            }
            worst / l
        }
    };
    if !(deadline.is_finite() && deadline > 0.0) {
        r.push(Diagnostic::new(
            Code::Pas0107,
            Loc::at(src, "deadline"),
            format!("deadline {deadline} ms must be finite and positive"),
        ));
        return (r, None);
    }

    let slack = deadline - worst;
    let feas = Feasibility {
        worst_case_ms: worst,
        deadline_ms: deadline,
        static_slack_ms: slack,
        scenarios_total,
        exact,
        witness: witness.clone(),
    };
    // Same relative tolerance as `OfflinePlan`, so `pas check` and the
    // offline phase never disagree about the same input.
    if worst > deadline * (1.0 + 1e-12) {
        let path = if witness.is_empty() {
            String::new()
        } else {
            format!(" on OR-path [{}]", witness.join(", "))
        };
        r.push(Diagnostic::new(
            Code::Pas0301,
            Loc::whole(src),
            format!(
                "statically infeasible: the worst case needs {worst:.3} ms at f_max but \
                 the deadline is {deadline:.3} ms (over by {:.3} ms){path}",
                worst - deadline
            ),
        ));
    } else {
        if slack <= 1e-9 * deadline.max(1.0) {
            r.push(Diagnostic::new(
                Code::Pas0302,
                Loc::whole(src),
                format!(
                    "zero static slack: the worst case finishes at {worst:.3} ms, exactly \
                     at the deadline — any modelling error becomes a miss"
                ),
            ));
        }
        check_ss2_switch_time(
            g, sections, model, overheads, num_procs, deadline, reserve, src, &mut r,
        );
    }
    (r, Some(feas))
}

pub(crate) fn push_plan_error(r: &mut Report, e: PlanError, src: &str) {
    match e {
        PlanError::Infeasible {
            worst_finish,
            deadline,
        } => r.push(Diagnostic::new(
            Code::Pas0301,
            Loc::whole(src),
            format!(
                "statically infeasible: the worst case needs {worst_finish:.3} ms at f_max \
                 but the deadline is {deadline:.3} ms"
            ),
        )),
        PlanError::BadDeadline(d) => r.push(Diagnostic::new(
            Code::Pas0107,
            Loc::at(src, "deadline"),
            format!("deadline {d} ms must be finite and positive"),
        )),
        PlanError::NoProcessors => r.push(Diagnostic::new(
            Code::Pas0106,
            Loc::at(src, "procs"),
            "processor count must be positive",
        )),
        PlanError::MissingBranchSection { or, branch } => r.push(Diagnostic::new(
            Code::Pas0011,
            Loc::whole(src),
            format!("OR node {or} branch {branch} has no program section"),
        )),
        PlanError::PlanGraphMismatch { detail } => r.push(Diagnostic::new(
            Code::Pas0402,
            Loc::whole(src),
            format!("plan does not match the application: {detail}"),
        )),
    }
}

/// Exact enumeration: the worst chain-sum of canonical section lengths
/// over every scenario, plus the maximizing path rendered for humans.
fn enumerate_worst(
    g: &AndOrGraph,
    sections: &SectionGraph,
    plan: &OfflinePlan,
) -> (f64, Vec<String>) {
    let mut worst = f64::NEG_INFINITY;
    let mut witness = Vec::new();
    enumeration::for_each_path(g, sections, |scenario, _p, chain| {
        let total = enumeration::chain_sum(chain, &plan.section_worst_len);
        if total > worst {
            worst = total;
            witness = enumeration::witness(g, scenario);
        }
    });
    if worst == f64::NEG_INFINITY {
        (0.0, Vec::new())
    } else {
        (worst, witness)
    }
}

/// PAS0108: rebuilds the plan at the real deadline and recomputes SS(2)'s
/// *unclamped* switch time `θ = (s₂·D − Tᵃ)/(s₂ − s₁)`. The policy clamps
/// θ into `[0, D]`, so an out-of-range value is not unsafe — but it means
/// the two-speed speculation degenerates to a single speed, which is
/// worth a warning (the user probably wanted SS(1)).
#[allow(clippy::too_many_arguments)]
fn check_ss2_switch_time(
    g: &AndOrGraph,
    sections: &SectionGraph,
    model: &ProcessorModel,
    _overheads: Overheads,
    num_procs: usize,
    deadline: f64,
    reserve: f64,
    src: &str,
    r: &mut Report,
) {
    let Ok(plan) = OfflinePlan::build_with_pmp_reserve(g, sections, num_procs, deadline, reserve)
    else {
        return;
    };
    let ideal = (plan.avg_total / plan.deadline).min(1.0);
    let high = model.quantize_up(ideal).speed;
    let low = level_at_or_below(model, ideal).unwrap_or(high);
    if (high - low).abs() < 1e-12 {
        return;
    }
    let theta = (high * plan.deadline - plan.avg_total) / (high - low);
    if !(-1e-9..=plan.deadline + 1e-9).contains(&theta) {
        r.push(Diagnostic::new(
            Code::Pas0108,
            Loc::whole(src),
            format!(
                "SS(2) switch time θ = {theta:.3} ms falls outside [0, {:.3}] and will be \
                 clamped (two-speed speculation degenerates)",
                plan.deadline
            ),
        ));
    }
}

/// The highest discrete speed at or below `ideal` (the dual of
/// `quantize_up`; `None` for continuous models or when every level is
/// above the ideal).
fn level_at_or_below(model: &ProcessorModel, ideal: f64) -> Option<f64> {
    let f_max = model.max_freq_mhz();
    let levels = model.levels()?;
    levels
        .iter()
        .map(|l| l.freq_mhz / f_max)
        .filter(|s| *s <= ideal + 1e-12)
        .fold(None, |best: Option<f64>, s| {
            Some(best.map_or(s, |b| b.max(s)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;

    fn app() -> AndOrGraph {
        Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("valid segment lowers")
    }

    fn verify(g: &AndOrGraph, deadline: f64) -> (Report, Option<Feasibility>) {
        let sections = SectionGraph::build(g).expect("sections build");
        verify_feasibility(
            g,
            &sections,
            &ProcessorModel::transmeta5400(),
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Deadline(deadline),
            "test",
        )
    }

    #[test]
    fn feasible_deadline_is_clean_with_exact_witness() {
        let g = app();
        let (r, feas) = verify(&g, 40.0);
        assert!(r.is_clean(), "{}", r.render_human());
        let f = feas.expect("feasibility computed");
        assert!(f.exact);
        assert_eq!(f.scenarios_total, 2);
        assert!(f.static_slack_ms > 0.0);
        // Worst path takes branch 0 (B, wcet 5 > C, wcet 4).
        assert_eq!(f.witness.len(), 1);
        assert!(f.witness[0].contains("branch 0"), "{:?}", f.witness);
    }

    #[test]
    fn infeasible_deadline_is_pas0301() {
        let g = app();
        let (r, feas) = verify(&g, 10.0);
        assert!(r.has_errors());
        assert_eq!(r.diagnostics[0].code, Code::Pas0301);
        assert!(r.diagnostics[0].message.contains("OR-path"));
        assert!(feas.expect("feasibility computed").static_slack_ms < 0.0);
    }

    #[test]
    fn zero_slack_is_pas0302() {
        let g = app();
        let (_, feas) = verify(&g, 40.0);
        let worst = feas.expect("feasibility computed").worst_case_ms;
        let (r, _) = verify(&g, worst);
        assert!(!r.has_errors(), "{}", r.render_human());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0302),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn offline_phase_agrees_with_enumeration() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let model = ProcessorModel::transmeta5400();
        let reserve = pas_core::pmp_reserve(&model, Overheads::paper_defaults());
        let plan = OfflinePlan::build_with_pmp_reserve(&g, &sections, 2, 1000.0, reserve)
            .expect("loose deadline is feasible");
        let (worst, _) = enumerate_worst(&g, &sections, &plan);
        assert!((worst - plan.worst_total).abs() < 1e-9);
    }

    #[test]
    fn load_spec_derives_a_feasible_deadline() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let (r, feas) = verify_feasibility(
            &g,
            &sections,
            &ProcessorModel::transmeta5400(),
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Load(0.5),
            "test",
        );
        assert!(r.is_clean(), "{}", r.render_human());
        let f = feas.expect("feasibility computed");
        assert!((f.deadline_ms - 2.0 * f.worst_case_ms).abs() < 1e-9);
    }

    #[test]
    fn full_load_warns_zero_slack() {
        let g = app();
        let sections = SectionGraph::build(&g).expect("sections build");
        let (r, _) = verify_feasibility(
            &g,
            &sections,
            &ProcessorModel::transmeta5400(),
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Load(1.0),
            "test",
        );
        assert!(!r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Pas0302));
    }
}
