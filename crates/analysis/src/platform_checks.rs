//! Platform and run-parameter checks (`PAS01xx`).

use crate::diag::{Code, Diagnostic, Loc, Report};
use dvfs_power::{Overheads, ProcessorModel};

/// Checks a processor model: level-table validity (PAS0102), monotone
/// ordering (PAS0103), and — when the model claims a published name —
/// agreement with the built-in Transmeta/XScale tables (PAS0104).
///
/// Models built through [`ProcessorModel`]'s constructors always pass;
/// the checks exist for models deserialized from JSON, which serde
/// accepts unvalidated.
pub fn check_model(model: &ProcessorModel, src: &str) -> Report {
    let mut r = Report::new();
    match model.levels() {
        Some(levels) => {
            if levels.is_empty() {
                r.push(Diagnostic::new(
                    Code::Pas0102,
                    Loc::whole(src),
                    "discrete model has an empty speed-level table",
                ));
                return r;
            }
            for (i, l) in levels.iter().enumerate() {
                let ok = l.freq_mhz.is_finite()
                    && l.freq_mhz > 0.0
                    && l.voltage.is_finite()
                    && l.voltage > 0.0;
                if !ok {
                    r.push(Diagnostic::new(
                        Code::Pas0102,
                        Loc::at(src, format!("levels[{i}]")),
                        format!(
                            "level {i}: frequency and voltage must be finite and positive \
                             (freq_mhz = {}, voltage = {})",
                            l.freq_mhz, l.voltage
                        ),
                    ));
                }
            }
            for (i, w) in levels.windows(2).enumerate() {
                if let [a, b] = w {
                    if a.freq_mhz >= b.freq_mhz || a.voltage > b.voltage {
                        r.push(Diagnostic::new(
                            Code::Pas0103,
                            Loc::at(src, format!("levels[{i}]")),
                            format!(
                                "levels {i} -> {}: frequencies must strictly increase and \
                                 voltages must not decrease \
                                 ({} MHz @ {} V, then {} MHz @ {} V)",
                                i + 1,
                                a.freq_mhz,
                                a.voltage,
                                b.freq_mhz,
                                b.voltage
                            ),
                        ));
                    }
                }
            }
            if !r.has_errors() {
                check_published_table(model, src, &mut r);
            }
        }
        None => {
            let smin = model.min_speed();
            if !(smin.is_finite() && smin > 0.0 && smin <= 1.0) {
                r.push(Diagnostic::new(
                    Code::Pas0102,
                    Loc::whole(src),
                    format!("continuous model: min_speed {smin} must be in (0, 1]"),
                ));
            }
        }
    }
    r
}

/// PAS0104: a model that *claims* a published name must match the
/// published table, or experiments silently stop being comparable to the
/// paper's.
fn check_published_table(model: &ProcessorModel, src: &str, r: &mut Report) {
    let reference = match model.name() {
        n if n == ProcessorModel::transmeta5400().name() => ProcessorModel::transmeta5400(),
        n if n == ProcessorModel::xscale().name() => ProcessorModel::xscale(),
        _ => return,
    };
    let (Some(got), Some(want)) = (model.levels(), reference.levels()) else {
        return;
    };
    let same = got.len() == want.len()
        && got.iter().zip(want.iter()).all(|(a, b)| {
            (a.freq_mhz - b.freq_mhz).abs() < 1e-9 && (a.voltage - b.voltage).abs() < 1e-9
        });
    if !same {
        r.push(Diagnostic::new(
            Code::Pas0104,
            Loc::whole(src),
            format!(
                "model is named '{}' but its level table deviates from the published table",
                model.name()
            ),
        ));
    }
}

/// Checks overhead parameters (PAS0105).
pub fn check_overheads(o: &Overheads, src: &str) -> Report {
    let mut r = Report::new();
    for (field, v) in [
        ("speed_compute_cycles", o.speed_compute_cycles),
        ("transition_time_ms", o.transition_time_ms),
    ] {
        if !(v.is_finite() && v >= 0.0) {
            r.push(Diagnostic::new(
                Code::Pas0105,
                Loc::at(src, field),
                format!("{field} = {v} must be finite and non-negative"),
            ));
        }
    }
    r
}

/// Checks the processor count (PAS0106) and, when given explicitly, the
/// deadline (PAS0107).
pub fn check_run_params(num_procs: usize, deadline: Option<f64>, src: &str) -> Report {
    let mut r = Report::new();
    if num_procs == 0 {
        r.push(Diagnostic::new(
            Code::Pas0106,
            Loc::at(src, "procs"),
            "processor count must be positive",
        ));
    }
    if let Some(d) = deadline {
        if !(d.is_finite() && d > 0.0) {
            r.push(Diagnostic::new(
                Code::Pas0107,
                Loc::at(src, "deadline"),
                format!("deadline {d} ms must be finite and positive"),
            ));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_models_are_clean() {
        assert!(check_model(&ProcessorModel::transmeta5400(), "transmeta").is_clean());
        assert!(check_model(&ProcessorModel::xscale(), "xscale").is_clean());
        let c = ProcessorModel::continuous(0.1).expect("valid smin");
        assert!(check_model(&c, "continuous:0.1").is_clean());
    }

    #[test]
    fn non_monotone_table_detected() {
        // serde accepts what the constructor would reject.
        let json = r#"{"name": "custom", "kind": {"Discrete": {"levels": [
            {"freq_mhz": 400.0, "voltage": 1.2},
            {"freq_mhz": 300.0, "voltage": 1.0}
        ]}}}"#;
        let m: ProcessorModel = serde_json::from_str(json).expect("parses");
        let r = check_model(&m, "m.json");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::Pas0103);
    }

    #[test]
    fn impostor_published_table_warned() {
        let json = r#"{"name": "Intel XScale", "kind": {"Discrete": {"levels": [
            {"freq_mhz": 150.0, "voltage": 0.75},
            {"freq_mhz": 1000.0, "voltage": 1.8}
        ]}}}"#;
        let m: ProcessorModel = serde_json::from_str(json).expect("parses");
        let r = check_model(&m, "m.json");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::Pas0104);
        assert!(!r.has_errors());
    }

    #[test]
    fn bad_params_detected() {
        let r = check_run_params(0, Some(-3.0), "cli");
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::Pas0106, Code::Pas0107]);
        assert!(check_run_params(2, Some(40.0), "cli").is_clean());
    }
}
