//! Symbolic energy & timing bounds (`PAS06xx`): an abstract-interpretation
//! pass over OR-paths and speed assignments.
//!
//! For each of the paper's six schemes the pass derives a *guaranteed*
//! interval `[best, worst]` for frame energy and makespan — guaranteed in
//! the sense that every execution the simulation engine can produce for
//! the same [`Setup`] (any OR-path, any per-task execution time within the
//! realization model, any admissible quantized speed choice, optionally
//! any fault realization inside a [`FaultEnvelope`]) lands inside the
//! interval.
//!
//! # Abstract domain
//!
//! The state is a per-section vector of interval quantities
//! ([`SectionCost`]): task count, remaining work `[w_lo, w_hi]`, and the
//! pre-folded energy corners of `w·g(s)` over the scheme's *admissible
//! speed set* (the quantized levels — or continuous range — the on-line
//! policy can actually select, floored at the scheme's speculative/static
//! floor from [`SchemeParams::speed_floor`]). Below
//! [`ENUMERATION_THRESHOLD`] OR-paths the pass folds the state exactly
//! along every Theorem-1 path and joins at the terminal OR with an
//! interval hull, keeping the witness path for each extreme; above it, a
//! memoized min/max recursion over the section DAG joins at every OR node
//! (component-wise hull), trading witnesses for scalability (`PAS0602`).
//!
//! # Energy model
//!
//! The engine's metered energy decomposes exactly as
//!
//! ```text
//! E = ι·m·H + Σ_exec w·g(s) + Σ_pmp base·g(s_cur) + Σ_trans Δt·(maxP+ρ−ι) + X
//! ```
//!
//! with `g(s) = (P(s)+ρ−ι)/s`, horizon `H = max(finish, D)`, `base` the
//! full-speed PMP compute time, and `X ≥ 0` a small clamp excess that only
//! appears under faults (bounded by `ι·(m·Δt + n·stall)`). Each term is
//! bounded over its admissible corners independently; stalls net out
//! against horizon idle. The deadline cap on fault-free worst-case
//! makespan encodes Theorem 1 plus [`Setup`]'s construction invariant
//! (plans are only built when the canonical worst path fits the
//! deadline); under a fault envelope the cap is dropped and `PAS0605`
//! warns when the bound exceeds the deadline.
//!
//! The reported `opt_lower_bound` is a scheme-independent lower bound on
//! the energy of *any* deadline-meeting engine schedule of the worst-case
//! work, from the lower convex hull of the platform's `(1/s, g(s))`
//! points under the time budget `m·D` — the optimality-gap anchor for
//! each scheme's worst case (`PAS0604`).

use crate::diag::{Code, Diagnostic, Loc, Report};
use crate::enumeration::{self, count_scenarios, ENUMERATION_THRESHOLD};
use andor_graph::{AndOrGraph, NodeId, SectionGraph, SectionId};
use dvfs_power::OperatingPoint;
use mp_sim::FaultPlan;
use pas_core::{Scheme, SchemeParams, Setup};
use serde::Serialize;
use std::collections::HashMap;

/// A closed interval `[lo, hi]` of a physical quantity (energy in
/// full-speed·ms units, or time in ms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Interval {
    /// Guaranteed lower bound.
    pub lo: f64,
    /// Guaranteed upper bound.
    pub hi: f64,
}

impl Interval {
    /// The degenerate `[0, 0]` interval.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The interval `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// True when `x` lies inside the interval up to a relative tolerance
    /// scaled by the interval's magnitude.
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        let slack = tol * (1.0 + self.lo.abs().max(self.hi.abs()));
        x >= self.lo - slack && x <= self.hi + slack
    }

    /// The interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Finite and ordered up to floating-point slop.
    fn well_formed(&self) -> bool {
        let slack = 1e-9 * (1.0 + self.lo.abs().max(self.hi.abs()));
        self.lo.is_finite() && self.hi.is_finite() && self.lo <= self.hi + slack
    }

    /// Clamps away sub-tolerance floating-point inversion for output.
    fn normalized(self) -> Interval {
        Interval {
            lo: self.lo,
            hi: self.hi.max(self.lo),
        }
    }
}

/// The worst-case fault behavior the bounds account for: every task may
/// overrun to `wcet·overrun_factor`, stall for `stall_ms`, drop a speed
/// change, and trigger fault containment (escalation to full speed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEnvelope {
    /// WCET multiplier an overrunning task can reach (`>= 1`).
    pub overrun_factor: f64,
    /// Longest single pre-dispatch stall, in ms.
    pub stall_ms: f64,
}

impl FaultEnvelope {
    /// The envelope implied by a fault plan's *support* (probabilities
    /// only gate whether a fault is possible at all), or `None` when the
    /// plan injects nothing.
    pub fn from_plan(plan: &FaultPlan) -> Option<Self> {
        if plan.overrun_prob <= 0.0 && plan.stall_prob <= 0.0 && plan.speed_fail_prob <= 0.0 {
            return None;
        }
        Some(FaultEnvelope {
            overrun_factor: if plan.overrun_prob > 0.0 {
                plan.overrun_factor.max(1.0)
            } else {
                1.0
            },
            stall_ms: if plan.stall_prob > 0.0 {
                plan.stall_ms.max(0.0)
            } else {
                0.0
            },
        })
    }
}

/// Configuration of the bounds pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoundsConfig {
    /// Lower execution-time floor as a fraction of WCET — must match the
    /// simulation's [`mp_sim::ExecTimeModel::floor_fraction`] for the
    /// lower bounds to cover its samples (the effective per-task floor is
    /// `min(fraction·wcet, acet)`, as in the sampler).
    pub min_exec_fraction: f64,
    /// Worst-case fault behavior to include, or `None` for fault-free
    /// bounds.
    pub fault: Option<FaultEnvelope>,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            min_exec_fraction: 0.01,
            fault: None,
        }
    }
}

/// Interval-valued decomposition of frame energy into the meter
/// categories of [`mp_sim::RunResult`]. `busy`/`idle`/`speed_overhead`
/// bound the engine's busy/idle/transition meters; `leakage` (the static
/// `ρ` share of active time) and `recovery` (the fault-containment
/// premium) are overlays, not partition members, so the five intervals
/// need not sum to the total.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergySplit {
    /// Execution plus PMP computation energy.
    pub busy: Interval,
    /// Idle (and stall) energy at the idle-power fraction.
    pub idle: Interval,
    /// Voltage/frequency transition energy.
    pub speed_overhead: Interval,
    /// Static-power share of busy and transition time (`ρ`-scaled).
    pub leakage: Interval,
    /// Fault-containment recovery premium (zero without a fault
    /// envelope).
    pub recovery: Interval,
}

/// Guaranteed bounds for one scheme.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchemeBounds {
    /// Scheme display name (`"NPM"`, `"SS(2)"`, ...).
    pub scheme: String,
    /// Frame energy interval (full-speed·ms units, as the simulator
    /// meters it).
    pub energy: Interval,
    /// Frame makespan interval in ms.
    pub makespan: Interval,
    /// Energy decomposition by meter category.
    pub split: EnergySplit,
    /// OR-path witnessing the energy lower bound (empty when the graph
    /// has no OR choices, or in DAG-fallback mode).
    pub witness_lo: Vec<String>,
    /// OR-path witnessing the energy upper bound.
    pub witness_hi: Vec<String>,
    /// `energy.hi − opt_lower_bound`: how far the scheme's guaranteed
    /// worst case sits above the theoretical minimum.
    pub optimality_gap: f64,
    /// False when the worst-case makespan exceeds the deadline (only
    /// possible under a fault envelope; `PAS0605`).
    pub deadline_safe: bool,
}

/// The result of [`analyze_bounds`] over one [`Setup`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BoundsAnalysis {
    /// The `PAS06xx` diagnostics the pass emitted.
    pub report: Report,
    /// Frame deadline in ms.
    pub deadline: f64,
    /// Processor count.
    pub num_procs: usize,
    /// Number of Theorem-1 OR-paths (saturating).
    pub paths: u64,
    /// True when every path was enumerated exactly; false when the DAG
    /// fallback was used (`PAS0602`).
    pub exact: bool,
    /// Scheme-independent lower bound on the energy of any
    /// deadline-meeting schedule of the worst-case work.
    pub opt_lower_bound: f64,
    /// Per-scheme bounds, in [`Scheme::ALL`] order.
    pub schemes: Vec<SchemeBounds>,
}

// ---------------------------------------------------------------------------
// Shared derivation context.
// ---------------------------------------------------------------------------

/// Everything scheme-independent the assembly needs, precomputed once.
struct Ctx {
    m_f: f64,
    d: f64,
    /// The engine's no-miss acceptance threshold `D·(1+1e-9)+1e-9`.
    cap: f64,
    iota: f64,
    rho: f64,
    /// One voltage-transition time, ms.
    dt: f64,
    /// Full-speed PMP compute time, ms (`base/s_cur` at speed `s_cur`).
    base: f64,
    faulty: bool,
    factor: f64,
    stall_hi: f64,
    min_frac: f64,
    /// Platform-wide `(τ = 1/s, g(s))` points (discrete), or `None` for
    /// the continuous model.
    tau_g: Option<Vec<(f64, f64)>>,
    /// Continuous model's minimum speed (unused for discrete).
    cont_min_speed: f64,
    /// Global minimum of `g` over the whole platform range.
    g_all_min: f64,
    /// Minimum power over the whole platform range.
    p_all_min: f64,
}

impl Ctx {
    fn new(setup: &Setup, cfg: &BoundsConfig) -> Ctx {
        let model = &setup.model;
        let iota = setup.idle_fraction;
        let rho = setup.static_fraction;
        let d = setup.plan.deadline;
        let all_points = platform_points(setup, rho, iota);
        let gh_all = GH::over(&all_points, rho, iota);
        let p_all_min = all_points
            .iter()
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        let tau_g = model.discrete_points().map(|pts| {
            pts.iter()
                .map(|p| {
                    let s = p.speed.max(1e-12);
                    (1.0 / s, (p.power + rho - iota) / s)
                })
                .collect()
        });
        Ctx {
            m_f: setup.plan.num_procs as f64,
            d,
            cap: d * (1.0 + 1e-9) + 1e-9,
            iota,
            rho,
            dt: setup.overheads.transition_time_ms,
            base: setup.overheads.compute_time_ms(1.0, model.max_freq_mhz()),
            faulty: cfg.fault.is_some(),
            factor: cfg.fault.map(|f| f.overrun_factor.max(1.0)).unwrap_or(1.0),
            stall_hi: cfg.fault.map(|f| f.stall_ms.max(0.0)).unwrap_or(0.0),
            min_frac: cfg.min_exec_fraction.clamp(0.0, 1.0),
            tau_g,
            cont_min_speed: model.min_speed(),
            g_all_min: gh_all.g_min,
            p_all_min,
        }
    }

    /// Minimum achievable mean `g` over speed mixtures whose mean
    /// execution-time dilation `τ = 1/s` stays within `budget` — the
    /// lower convex hull of the platform's `(τ, g)` points, evaluated at
    /// the time budget (LP optimum is a mixture of at most two points).
    fn min_mean_g(&self, budget: f64) -> f64 {
        let full = 1.0 + self.rho - self.iota; // g at s = 1 (τ = 1).
        if budget <= 1.0 {
            return full;
        }
        match &self.tau_g {
            Some(pts) => {
                let mut c = f64::INFINITY;
                for (i, &(ti, gi)) in pts.iter().enumerate() {
                    if ti <= budget + 1e-12 {
                        c = c.min(gi);
                    }
                    for &(tj, gj) in pts.iter().skip(i + 1) {
                        let ((ta, ga), (tb, gb)) = if ti <= tj {
                            ((ti, gi), (tj, gj))
                        } else {
                            ((tj, gj), (ti, gi))
                        };
                        if ta <= budget && budget <= tb && tb > ta {
                            let lam = (tb - budget) / (tb - ta);
                            c = c.min(lam * ga + (1.0 - lam) * gb);
                        }
                    }
                }
                if c.is_finite() {
                    c
                } else {
                    full
                }
            }
            None => {
                // g(τ) = 1/τ² + (ρ−ι)·τ is convex on τ ≥ 1, so the
                // mixture optimum is deterministic: minimize over the
                // admissible range's endpoints and interior critical
                // point.
                let tau_max = (1.0 / self.cont_min_speed.max(1e-12)).max(1.0);
                let hi = budget.min(tau_max).max(1.0);
                let gk = self.rho - self.iota;
                let g_of = |t: f64| 1.0 / (t * t) + gk * t;
                let mut c = g_of(1.0).min(g_of(hi));
                if gk < 0.0 {
                    let crit = (2.0 / -gk).cbrt();
                    if crit > 1.0 && crit < hi {
                        c = c.min(g_of(crit));
                    }
                }
                c
            }
        }
    }

    /// Lower bound on any deadline-meeting engine schedule's energy for
    /// worst-case (fault-free) work `w_wcet` over `n` tasks.
    fn opt_lb(&self, w_wcet: f64, n: f64) -> f64 {
        let overheads = n * (self.base * self.g_all_min).min(0.0)
            + n * (self.dt * (self.p_all_min + self.rho - self.iota)).min(0.0);
        if w_wcet <= 0.0 {
            return self.iota * self.m_f * self.d + overheads;
        }
        let budget = self.m_f * self.d * (1.0 + 1e-9) / w_wcet;
        self.iota * self.m_f * self.d + w_wcet * self.min_mean_g(budget) + overheads
    }
}

/// Extremes of `g(s) = (P+ρ−ι)/s` and `h(s) = (P+ρ)/s` over a point set.
#[derive(Debug, Clone, Copy)]
struct GH {
    g_min: f64,
    g_max: f64,
    h_min: f64,
    h_max: f64,
}

impl GH {
    fn over(points: &[OperatingPoint], rho: f64, iota: f64) -> GH {
        let mut r = GH {
            g_min: f64::INFINITY,
            g_max: f64::NEG_INFINITY,
            h_min: f64::INFINITY,
            h_max: f64::NEG_INFINITY,
        };
        for p in points {
            let s = p.speed.max(1e-12);
            let g = (p.power + rho - iota) / s;
            let h = (p.power + rho) / s;
            r.g_min = r.g_min.min(g);
            r.g_max = r.g_max.max(g);
            r.h_min = r.h_min.min(h);
            r.h_max = r.h_max.max(h);
        }
        r
    }
}

/// The platform's full admissible point set plus the interior critical
/// speeds of `g`/`h` for the continuous model (extrema candidates).
fn platform_points(setup: &Setup, rho: f64, iota: f64) -> Vec<OperatingPoint> {
    range_points(setup, setup.model.min_speed(), rho, iota)
}

/// Points reachable at or above `floor`: every discrete level in range,
/// or the continuous endpoints plus interior critical speeds.
fn range_points(setup: &Setup, floor: f64, rho: f64, iota: f64) -> Vec<OperatingPoint> {
    let model = &setup.model;
    if let Some(all) = model.discrete_points() {
        let pts: Vec<OperatingPoint> = all
            .into_iter()
            .filter(|p| p.speed >= floor - 1e-9)
            .collect();
        if pts.is_empty() {
            vec![model.max_point()]
        } else {
            pts
        }
    } else {
        // g' = 2s − (ρ−ι)/s² vanishes at s³ = (ρ−ι)/2 (only when ρ > ι);
        // h' at s³ = ρ/2. Both g and h are convex in s on (0, 1], so
        // endpoints + interior critical points carry the extremes.
        let mut speeds = vec![floor, 1.0];
        if rho > iota {
            speeds.push(((rho - iota) / 2.0).cbrt());
        }
        if rho > 0.0 {
            speeds.push((rho / 2.0).cbrt());
        }
        speeds
            .into_iter()
            .map(|s| model.quantize_up(s.clamp(floor, 1.0)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Per-scheme admissible-speed abstraction.
// ---------------------------------------------------------------------------

/// How often a scheme pays voltage transitions.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TransKind {
    /// Never changes speed (NPM).
    Never,
    /// One transition per processor that runs a task (SPM).
    Static,
    /// Up to one per dispatch (the dynamic schemes).
    PerDispatch,
}

/// A scheme's admissible-speed abstraction.
struct SchemeShape {
    scheme: Scheme,
    runs_pmp: bool,
    /// Lowest speed any execution can happen at (`SchemeParams::speed_floor`).
    floor: f64,
    /// `g`/`h` extremes over the admissible execution points.
    exec: GH,
    /// Same, over the points a PMP computation can be charged at
    /// (admissible ∪ the initial/containment full-speed point).
    pmp: GH,
    /// Minimum power among reachable points (transition pair floor).
    p_floor: f64,
    trans: TransKind,
}

impl SchemeShape {
    fn build(scheme: Scheme, setup: &Setup, ctx: &Ctx) -> SchemeShape {
        let params = SchemeParams::derive(scheme, &setup.plan, &setup.model, setup.overheads);
        let floor = params
            .speed_floor(&setup.model)
            .clamp(setup.model.min_speed(), 1.0);
        let (mut points, runs_pmp, trans) = match scheme {
            Scheme::Npm => (vec![setup.model.max_point()], false, TransKind::Never),
            Scheme::Spm => (
                vec![setup.model.quantize_up(floor)],
                false,
                TransKind::Static,
            ),
            Scheme::Gss | Scheme::Ss1 | Scheme::Ss2 | Scheme::As => (
                range_points(setup, floor, ctx.rho, ctx.iota),
                true,
                TransKind::PerDispatch,
            ),
        };
        // Under faults, containment and dropped speed changes can execute
        // work at the initial full-speed point regardless of the scheme.
        if ctx.faulty && !points.iter().any(|p| p.speed >= 1.0 - 1e-12) {
            points.push(setup.model.max_point());
        }
        let exec = GH::over(&points, ctx.rho, ctx.iota);
        let mut reach = points;
        if !reach.iter().any(|p| p.speed >= 1.0 - 1e-12) {
            reach.push(setup.model.max_point());
        }
        let pmp = GH::over(&reach, ctx.rho, ctx.iota);
        let p_floor = reach
            .iter()
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        SchemeShape {
            scheme,
            runs_pmp,
            floor,
            exec,
            pmp,
            p_floor,
            trans,
        }
    }

    /// `[count_lo, count_hi]` of charged voltage transitions for a path
    /// with `n` tasks.
    fn trans_counts(&self, n_lo: f64, n_hi: f64, ctx: &Ctx) -> (f64, f64) {
        match self.trans {
            TransKind::Never => (0.0, 0.0),
            TransKind::Static => {
                if self.floor >= 1.0 - 1e-12 {
                    (0.0, 0.0)
                } else if ctx.faulty {
                    // Dropped speed changes can force a re-transition on
                    // every dispatch, and containment adds one escalation
                    // per detection.
                    (n_lo.min(1.0), 2.0 * n_hi)
                } else {
                    // One transition per processor that runs a task; the
                    // very first dispatch always pays one.
                    (n_lo.min(1.0), n_hi.min(ctx.m_f))
                }
            }
            TransKind::PerDispatch => {
                if ctx.faulty {
                    (0.0, 2.0 * n_hi)
                } else {
                    (0.0, n_hi)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-section abstract state.
// ---------------------------------------------------------------------------

/// The abstract state of one section under one scheme: additive interval
/// quantities, pre-folded over the scheme's admissible speed corners.
#[derive(Debug, Clone, Copy, Default)]
struct SectionCost {
    /// Computation-task count.
    n: f64,
    /// Σ per-task minimum work (realization floor).
    w_lo: f64,
    /// Σ per-task maximum work (`wcet·overrun_factor`).
    w_hi: f64,
    /// Σ wcet (fault-free worst work, for the optimality anchor).
    wcet: f64,
    /// Largest single minimum work (serial makespan floor).
    max_w_lo: f64,
    /// Σ per-task lower/upper corners of the identity term `w·g(s)`.
    busy_lo: f64,
    busy_hi: f64,
    /// Σ per-task lower/upper corners of the meter term `w·h(s)`.
    mbusy_lo: f64,
    mbusy_hi: f64,
    /// Σ `w_hi / floor`: worst execution time (serialized bound).
    exec_hi: f64,
}

impl SectionCost {
    /// Chain composition: sums, except the serial floor which is a max.
    fn plus(&self, o: &SectionCost) -> SectionCost {
        SectionCost {
            n: self.n + o.n,
            w_lo: self.w_lo + o.w_lo,
            w_hi: self.w_hi + o.w_hi,
            wcet: self.wcet + o.wcet,
            max_w_lo: self.max_w_lo.max(o.max_w_lo),
            busy_lo: self.busy_lo + o.busy_lo,
            busy_hi: self.busy_hi + o.busy_hi,
            mbusy_lo: self.mbusy_lo + o.mbusy_lo,
            mbusy_hi: self.mbusy_hi + o.mbusy_hi,
            exec_hi: self.exec_hi + o.exec_hi,
        }
    }

    /// Component-wise OR-join toward the lower extreme.
    fn join_min(&self, o: &SectionCost) -> SectionCost {
        SectionCost {
            n: self.n.min(o.n),
            w_lo: self.w_lo.min(o.w_lo),
            w_hi: self.w_hi.min(o.w_hi),
            wcet: self.wcet.min(o.wcet),
            max_w_lo: self.max_w_lo.min(o.max_w_lo),
            busy_lo: self.busy_lo.min(o.busy_lo),
            busy_hi: self.busy_hi.min(o.busy_hi),
            mbusy_lo: self.mbusy_lo.min(o.mbusy_lo),
            mbusy_hi: self.mbusy_hi.min(o.mbusy_hi),
            exec_hi: self.exec_hi.min(o.exec_hi),
        }
    }

    /// Component-wise OR-join toward the upper extreme.
    fn join_max(&self, o: &SectionCost) -> SectionCost {
        SectionCost {
            n: self.n.max(o.n),
            w_lo: self.w_lo.max(o.w_lo),
            w_hi: self.w_hi.max(o.w_hi),
            wcet: self.wcet.max(o.wcet),
            max_w_lo: self.max_w_lo.max(o.max_w_lo),
            busy_lo: self.busy_lo.max(o.busy_lo),
            busy_hi: self.busy_hi.max(o.busy_hi),
            mbusy_lo: self.mbusy_lo.max(o.mbusy_lo),
            mbusy_hi: self.mbusy_hi.max(o.mbusy_hi),
            exec_hi: self.exec_hi.max(o.exec_hi),
        }
    }
}

/// Abstract state of every section under one scheme.
fn section_costs(
    g: &AndOrGraph,
    sections: &SectionGraph,
    shape: &SchemeShape,
    ctx: &Ctx,
) -> Vec<SectionCost> {
    sections
        .sections()
        .iter()
        .map(|sec| {
            let mut c = SectionCost::default();
            for &node in &sec.nodes {
                let kind = &g.node(node).kind;
                if !kind.is_computation() {
                    continue;
                }
                let wcet = kind.wcet();
                let acet = kind.acet();
                // Mirrors the realization sampler's clamp.
                let w_lo = (ctx.min_frac * wcet).min(acet).max(wcet * 1e-12).min(wcet);
                let w_hi = wcet * ctx.factor;
                c.n += 1.0;
                c.w_lo += w_lo;
                c.w_hi += w_hi;
                c.wcet += wcet;
                c.max_w_lo = c.max_w_lo.max(w_lo);
                // Corner of w·g over w ∈ [w_lo, w_hi], s ∈ admissible.
                c.busy_lo += if shape.exec.g_min >= 0.0 {
                    w_lo * shape.exec.g_min
                } else {
                    w_hi * shape.exec.g_min
                };
                c.busy_hi += if shape.exec.g_max >= 0.0 {
                    w_hi * shape.exec.g_max
                } else {
                    w_lo * shape.exec.g_max
                };
                // h ≥ 0 always, so the w corners are fixed.
                c.mbusy_lo += w_lo * shape.exec.h_min;
                c.mbusy_hi += w_hi * shape.exec.h_max;
                c.exec_hi += w_hi / shape.floor;
            }
            c
        })
        .collect()
}

fn chain_total(chain: &[SectionId], costs: &[SectionCost]) -> SectionCost {
    chain.iter().fold(SectionCost::default(), |acc, s| {
        match costs.get(s.index()) {
            Some(c) => acc.plus(c),
            None => acc,
        }
    })
}

// ---------------------------------------------------------------------------
// Assembly: abstract totals → one path's bounds.
// ---------------------------------------------------------------------------

/// Assembled bounds for one path (or one DAG-joined extreme pair).
struct PathBounds {
    energy: Interval,
    makespan: Interval,
    split: EnergySplit,
}

/// Assembles interval bounds from a lower-extreme and an upper-extreme
/// abstract total. Exact mode passes the same total twice; the DAG
/// fallback passes the component-wise joins.
fn assemble(lo_t: &SectionCost, hi_t: &SectionCost, sh: &SchemeShape, ctx: &Ctx) -> PathBounds {
    let m = ctx.m_f;
    let (c_lo, c_hi) = sh.trans_counts(lo_t.n, hi_t.n, ctx);
    let pmp_n_lo = if sh.runs_pmp { lo_t.n } else { 0.0 };
    let pmp_n_hi = if sh.runs_pmp { hi_t.n } else { 0.0 };
    let pmp_t_hi = pmp_n_hi * ctx.base / sh.floor;

    // Makespan: total work over m processors from below; the serialized
    // sum of every charged window from above, capped at the engine's
    // no-miss threshold when fault-free (Theorem 1 + Setup feasibility).
    let mk_lo = (lo_t.w_lo / m).max(lo_t.max_w_lo);
    let serial = hi_t.n * ctx.stall_hi + pmp_t_hi + c_hi * ctx.dt + hi_t.exec_hi;
    let mk_hi = if ctx.faulty {
        serial
    } else {
        serial.min(ctx.cap)
    };
    let h_lo = mk_lo.max(ctx.d);
    let h_hi = mk_hi.max(ctx.d);

    // Identity terms.
    let pmp_e_lo = ctx.base
        * sh.pmp.g_min
        * if sh.pmp.g_min < 0.0 {
            pmp_n_hi
        } else {
            pmp_n_lo
        };
    let pmp_e_hi = ctx.base
        * sh.pmp.g_max
        * if sh.pmp.g_max > 0.0 {
            pmp_n_hi
        } else {
            pmp_n_lo
        };
    let te_lo = ctx.dt * (sh.p_floor + ctx.rho - ctx.iota);
    let te_hi = ctx.dt * (1.0 + ctx.rho - ctx.iota);
    let trans_lo = if te_lo >= 0.0 {
        c_lo * te_lo
    } else {
        c_hi * te_lo
    };
    let trans_hi = if te_hi >= 0.0 {
        c_hi * te_hi
    } else {
        c_lo * te_hi
    };
    // Charged windows can spill past the horizon only under faults
    // (trailing escalations, overlapping stall accounting).
    let excess_hi = if ctx.faulty {
        ctx.iota * (m * ctx.dt + hi_t.n * ctx.stall_hi)
    } else {
        0.0
    };
    let energy = Interval {
        lo: ctx.iota * m * h_lo + lo_t.busy_lo + pmp_e_lo + trans_lo,
        hi: ctx.iota * m * h_hi + hi_t.busy_hi + pmp_e_hi + trans_hi + excess_hi,
    };

    // Meter split.
    let busy_t_hi = hi_t.exec_hi + pmp_t_hi;
    let split = EnergySplit {
        busy: Interval {
            lo: lo_t.mbusy_lo + pmp_n_lo * ctx.base * sh.pmp.h_min,
            hi: hi_t.mbusy_hi + pmp_n_hi * ctx.base * sh.pmp.h_max,
        },
        idle: Interval {
            lo: (ctx.iota * (m * h_lo - busy_t_hi - c_hi * ctx.dt)).max(0.0),
            hi: ctx.iota * m * h_hi + excess_hi,
        },
        speed_overhead: Interval {
            lo: c_lo * ctx.dt * (sh.p_floor + ctx.rho),
            hi: c_hi * ctx.dt * (1.0 + ctx.rho),
        },
        leakage: Interval {
            lo: ctx.rho * lo_t.w_lo,
            hi: ctx.rho * (busy_t_hi + c_hi * ctx.dt),
        },
        recovery: if ctx.faulty {
            Interval {
                lo: 0.0,
                hi: hi_t.exec_hi + hi_t.n * ctx.dt,
            }
        } else {
            Interval::ZERO
        },
    };
    PathBounds {
        energy,
        makespan: Interval {
            lo: mk_lo,
            hi: mk_hi,
        },
        split,
    }
}

// ---------------------------------------------------------------------------
// Join machinery.
// ---------------------------------------------------------------------------

/// Running hull over paths for one scheme, with energy witnesses.
struct SchemeAcc {
    bounds: Option<PathBounds>,
    witness_lo: Vec<String>,
    witness_hi: Vec<String>,
}

impl SchemeAcc {
    fn new() -> SchemeAcc {
        SchemeAcc {
            bounds: None,
            witness_lo: Vec::new(),
            witness_hi: Vec::new(),
        }
    }

    fn merge(&mut self, pb: PathBounds, witness: &[String]) {
        match &mut self.bounds {
            None => {
                self.witness_lo = witness.to_vec();
                self.witness_hi = witness.to_vec();
                self.bounds = Some(pb);
            }
            Some(acc) => {
                if pb.energy.lo < acc.energy.lo {
                    self.witness_lo = witness.to_vec();
                }
                if pb.energy.hi > acc.energy.hi {
                    self.witness_hi = witness.to_vec();
                }
                acc.energy = acc.energy.hull(pb.energy);
                acc.makespan = acc.makespan.hull(pb.makespan);
                acc.split.busy = acc.split.busy.hull(pb.split.busy);
                acc.split.idle = acc.split.idle.hull(pb.split.idle);
                acc.split.speed_overhead = acc.split.speed_overhead.hull(pb.split.speed_overhead);
                acc.split.leakage = acc.split.leakage.hull(pb.split.leakage);
                acc.split.recovery = acc.split.recovery.hull(pb.split.recovery);
            }
        }
    }
}

/// Component-wise min/max of the chain-composed cost over every OR-path,
/// by memoized recursion over the section DAG (the abstract OR-join).
fn dag_extremes(
    g: &AndOrGraph,
    sections: &SectionGraph,
    costs: &[SectionCost],
) -> (SectionCost, SectionCost) {
    let mut memo: HashMap<NodeId, (SectionCost, SectionCost)> = HashMap::new();
    from_section(g, sections, costs, sections.root(), &mut memo)
}

fn from_section(
    g: &AndOrGraph,
    sections: &SectionGraph,
    costs: &[SectionCost],
    s: SectionId,
    memo: &mut HashMap<NodeId, (SectionCost, SectionCost)>,
) -> (SectionCost, SectionCost) {
    let own = costs.get(s.index()).copied().unwrap_or_default();
    match sections.section(s).exit_or {
        None => (own, own),
        Some(or) => {
            let (suffix_min, suffix_max) = from_or(g, sections, costs, or, memo);
            (own.plus(&suffix_min), own.plus(&suffix_max))
        }
    }
}

fn from_or(
    g: &AndOrGraph,
    sections: &SectionGraph,
    costs: &[SectionCost],
    or: NodeId,
    memo: &mut HashMap<NodeId, (SectionCost, SectionCost)>,
) -> (SectionCost, SectionCost) {
    if let Some(&c) = memo.get(&or) {
        return c;
    }
    let n_branches = g.node(or).succs.len();
    let mut joined: Option<(SectionCost, SectionCost)> = None;
    for k in 0..n_branches {
        let below = match sections.branch_section(or, k) {
            Some(b) => from_section(g, sections, costs, b, memo),
            None => (SectionCost::default(), SectionCost::default()),
        };
        joined = Some(match joined {
            None => below,
            Some((lo, hi)) => (lo.join_min(&below.0), hi.join_max(&below.1)),
        });
    }
    let result = joined.unwrap_or_default();
    memo.insert(or, result);
    result
}

// ---------------------------------------------------------------------------
// Entry point.
// ---------------------------------------------------------------------------

/// Derives guaranteed energy/makespan intervals for every scheme over one
/// [`Setup`], emitting `PAS06xx` diagnostics against source label `src`.
pub fn analyze_bounds(setup: &Setup, cfg: &BoundsConfig, src: &str) -> BoundsAnalysis {
    let _span = pas_obs::profile::span(pas_obs::profile::names::CHECK_BOUNDS);
    let g = &setup.graph;
    let sections = &setup.sections;
    let mut report = Report::default();
    let ctx = Ctx::new(setup, cfg);
    let paths = count_scenarios(g, sections);
    let exact = paths <= ENUMERATION_THRESHOLD;

    let shapes: Vec<SchemeShape> = Scheme::ALL
        .iter()
        .map(|&s| SchemeShape::build(s, setup, &ctx))
        .collect();
    let costs: Vec<Vec<SectionCost>> = shapes
        .iter()
        .map(|sh| section_costs(g, sections, sh, &ctx))
        .collect();

    let mut accs: Vec<SchemeAcc> = shapes.iter().map(|_| SchemeAcc::new()).collect();
    let mut opt_lb = f64::INFINITY;

    if exact {
        enumeration::for_each_path(g, sections, |scenario, _p, chain| {
            let witness = enumeration::witness(g, scenario);
            for (shape, (table, acc)) in shapes.iter().zip(costs.iter().zip(accs.iter_mut())) {
                let tot = chain_total(chain, table);
                acc.merge(assemble(&tot, &tot, shape, &ctx), &witness);
            }
            // The optimality anchor is scheme-independent; fold it from
            // the first scheme's table (work fields are shared).
            if let Some(table) = costs.first() {
                let tot = chain_total(chain, table);
                opt_lb = opt_lb.min(ctx.opt_lb(tot.wcet, tot.n));
            }
        });
    } else {
        report.push(Diagnostic::new(
            Code::Pas0602,
            Loc::whole(src),
            format!(
                "graph has {paths} OR-paths (> {ENUMERATION_THRESHOLD}); bounds joined over the \
                 section DAG without per-path witnesses"
            ),
        ));
        for (shape, (table, acc)) in shapes.iter().zip(costs.iter().zip(accs.iter_mut())) {
            let (lo_t, hi_t) = dag_extremes(g, sections, table);
            acc.merge(assemble(&lo_t, &hi_t, shape, &ctx), &[]);
        }
        if let Some(table) = costs.first() {
            let (lo_t, hi_t) = dag_extremes(g, sections, table);
            // The mean-g hull is monotone in the time budget, so the
            // bilinear minimum over the work/budget box sits at a corner.
            let c_a = ctx.min_mean_g(ctx.m_f * ctx.d * (1.0 + 1e-9) / lo_t.wcet.max(1e-300));
            let c_b = ctx.min_mean_g(ctx.m_f * ctx.d * (1.0 + 1e-9) / hi_t.wcet.max(1e-300));
            let busy_lb = (lo_t.wcet * c_a)
                .min(lo_t.wcet * c_b)
                .min(hi_t.wcet * c_a)
                .min(hi_t.wcet * c_b);
            opt_lb = ctx.iota * ctx.m_f * ctx.d
                + busy_lb
                + hi_t.n * (ctx.base * ctx.g_all_min).min(0.0)
                + hi_t.n * (ctx.dt * (ctx.p_all_min + ctx.rho - ctx.iota)).min(0.0);
        }
    }
    if !opt_lb.is_finite() {
        opt_lb = ctx.iota * ctx.m_f * ctx.d;
    }

    let mut schemes = Vec::with_capacity(shapes.len());
    for (shape, acc) in shapes.iter().zip(accs) {
        let pb = match acc.bounds {
            Some(pb) => pb,
            // No path at all (degenerate graph): everything is zero work.
            None => assemble(
                &SectionCost::default(),
                &SectionCost::default(),
                shape,
                &ctx,
            ),
        };
        let name = shape.scheme.name().to_string();
        for (what, iv) in [
            ("energy", &pb.energy),
            ("makespan", &pb.makespan),
            ("busy", &pb.split.busy),
            ("idle", &pb.split.idle),
            ("speed-overhead", &pb.split.speed_overhead),
            ("leakage", &pb.split.leakage),
            ("recovery", &pb.split.recovery),
        ] {
            if !iv.well_formed() {
                report.push(Diagnostic::new(
                    Code::Pas0601,
                    Loc::whole(src),
                    format!(
                        "{name}: derived {what} interval [{}, {}] fails the soundness self-check",
                        iv.lo, iv.hi
                    ),
                ));
            }
        }
        let deadline_safe = pb.makespan.hi <= ctx.cap;
        if ctx.faulty && !deadline_safe {
            report.push(Diagnostic::new(
                Code::Pas0605,
                Loc::whole(src),
                format!(
                    "{name}: worst-case makespan {:.3} ms exceeds the {:.3} ms deadline under \
                     the fault envelope",
                    pb.makespan.hi, ctx.d
                ),
            ));
        }
        report.push(Diagnostic::new(
            Code::Pas0603,
            Loc::whole(src),
            format!(
                "{name}: frame energy in [{:.4}, {:.4}], makespan in [{:.4}, {:.4}] ms",
                pb.energy.lo, pb.energy.hi, pb.makespan.lo, pb.makespan.hi
            ),
        ));
        schemes.push(SchemeBounds {
            scheme: name,
            energy: pb.energy.normalized(),
            makespan: pb.makespan.normalized(),
            split: EnergySplit {
                busy: pb.split.busy.normalized(),
                idle: pb.split.idle.normalized(),
                speed_overhead: pb.split.speed_overhead.normalized(),
                leakage: pb.split.leakage.normalized(),
                recovery: pb.split.recovery.normalized(),
            },
            witness_lo: acc.witness_lo,
            witness_hi: acc.witness_hi,
            optimality_gap: pb.energy.hi - opt_lb,
            deadline_safe,
        });
    }

    if let Some(best) = schemes
        .iter()
        .min_by(|a, b| a.optimality_gap.total_cmp(&b.optimality_gap))
    {
        report.push(Diagnostic::new(
            Code::Pas0604,
            Loc::whole(src),
            format!(
                "theoretical minimum frame energy >= {:.4}; smallest worst-case gap {:.4} ({})",
                opt_lb, best.optimality_gap, best.scheme
            ),
        ));
    }

    BoundsAnalysis {
        report,
        deadline: setup.plan.deadline,
        num_procs: setup.plan.num_procs,
        paths,
        exact,
        opt_lower_bound: opt_lb,
        schemes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;
    use dvfs_power::{Overheads, ProcessorModel};

    fn setup_for(app: &Segment, model: ProcessorModel, m: usize, d: f64) -> Setup {
        let g = app.lower().expect("valid segment lowers");
        Setup::with_deadline_and_overheads(g, model, m, d, Overheads::none())
            .expect("feasible setup")
    }

    fn two_task_chain() -> Segment {
        Segment::seq([Segment::task("A", 10.0, 5.0), Segment::task("B", 6.0, 3.0)])
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(1.0, 3.0);
        assert!(iv.contains(2.0, 0.0));
        assert!(iv.contains(1.0, 1e-9));
        assert!(!iv.contains(3.5, 1e-9));
        assert_eq!(iv.width(), 2.0);
        assert_eq!(iv.hull(Interval::new(0.0, 2.0)), Interval::new(0.0, 3.0));
        assert!(Interval::new(1.0, 0.0 + 1.0 - 1e-12).well_formed());
        assert!(!Interval::new(1.0, 0.5).well_formed());
        assert!(!Interval::new(f64::NAN, 1.0).well_formed());
    }

    #[test]
    fn fault_envelope_from_plan_support() {
        assert_eq!(FaultEnvelope::from_plan(&FaultPlan::none()), None);
        let mut p = FaultPlan::none();
        p.overrun_prob = 0.1;
        p.overrun_factor = 1.5;
        let env = FaultEnvelope::from_plan(&p).expect("active");
        assert_eq!(env.overrun_factor, 1.5);
        assert_eq!(env.stall_ms, 0.0);
        let mut p = FaultPlan::none();
        p.speed_fail_prob = 0.2;
        let env = FaultEnvelope::from_plan(&p).expect("active");
        assert_eq!(env.overrun_factor, 1.0);
    }

    #[test]
    fn npm_interval_is_tight_on_a_serial_chain() {
        // 1 processor, no overheads, D > ΣWCET: NPM runs at full speed, so
        // E = ι·D + Σw·(1−ι) and makespan = Σw exactly at both corners.
        let s = setup_for(
            &two_task_chain(),
            ProcessorModel::continuous(0.05).expect("valid"),
            1,
            40.0,
        );
        let b = analyze_bounds(&s, &BoundsConfig::default(), "test");
        assert!(b.exact);
        assert_eq!(b.paths, 1);
        let npm = b.schemes.first().expect("NPM first");
        assert_eq!(npm.scheme, "NPM");
        let iota = s.idle_fraction;
        let w_lo = 0.1 + 0.06; // 1% of each WCET (below both ACETs).
        let w_hi = 16.0;
        let e_lo = iota * 40.0 + w_lo * (1.0 - iota);
        let e_hi = iota * 40.0 + w_hi * (1.0 - iota);
        assert!((npm.energy.lo - e_lo).abs() < 1e-9, "{:?}", npm.energy);
        assert!((npm.energy.hi - e_hi).abs() < 1e-9, "{:?}", npm.energy);
        assert!((npm.makespan.hi - w_hi).abs() < 1e-9, "{:?}", npm.makespan);
        assert!(npm.deadline_safe);
    }

    #[test]
    fn bounds_nest_fault_free_inside_faulty() {
        let s = setup_for(&two_task_chain(), ProcessorModel::xscale(), 2, 30.0);
        let ff = analyze_bounds(&s, &BoundsConfig::default(), "test");
        let faulty = analyze_bounds(
            &s,
            &BoundsConfig {
                min_exec_fraction: 0.01,
                fault: Some(FaultEnvelope {
                    overrun_factor: 2.0,
                    stall_ms: 1.0,
                }),
            },
            "test",
        );
        for (a, b) in ff.schemes.iter().zip(faulty.schemes.iter()) {
            assert!(b.energy.hi >= a.energy.hi - 1e-9, "{}", a.scheme);
            assert!(b.makespan.hi >= a.makespan.hi - 1e-9, "{}", a.scheme);
            assert!(b.energy.lo <= a.energy.lo + 1e-9, "{}", a.scheme);
        }
    }

    #[test]
    fn optimality_gap_is_nonnegative_and_anchored() {
        for model in [
            ProcessorModel::transmeta5400(),
            ProcessorModel::xscale(),
            ProcessorModel::continuous(0.1).expect("valid"),
        ] {
            let s = setup_for(&two_task_chain(), model, 2, 30.0);
            let b = analyze_bounds(&s, &BoundsConfig::default(), "test");
            for sb in &b.schemes {
                assert!(
                    sb.optimality_gap >= -1e-6,
                    "{}: gap {}",
                    sb.scheme,
                    sb.optimality_gap
                );
                assert!(
                    (sb.energy.hi - b.opt_lower_bound - sb.optimality_gap).abs() < 1e-9,
                    "{}",
                    sb.scheme
                );
            }
        }
    }

    #[test]
    fn or_paths_produce_witnesses_and_hulls() {
        let app = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 12.0, 6.0)),
                (0.5, Segment::task("C", 2.0, 1.0)),
            ]),
        ]);
        let s = setup_for(&app, ProcessorModel::xscale(), 1, 30.0);
        let b = analyze_bounds(&s, &BoundsConfig::default(), "test");
        assert!(b.exact);
        assert_eq!(b.paths, 2);
        let npm = b.schemes.first().expect("NPM");
        // The heavy branch witnesses the energy maximum; the light one the
        // minimum.
        assert!(npm.witness_hi.iter().any(|w| w.contains("branch 0")));
        assert!(npm.witness_lo.iter().any(|w| w.contains("branch 1")));
        assert!(npm.energy.lo < npm.energy.hi);
        assert!(b.report.diagnostics.iter().any(|d| d.code == Code::Pas0603));
        assert!(b.report.diagnostics.iter().all(|d| d.code != Code::Pas0601));
    }

    #[test]
    fn path_explosion_falls_back_to_dag_join() {
        // 13 sequential binary ORs → 2^13 = 8192 paths > 4096.
        let mut parts = Vec::new();
        for i in 0..13 {
            parts.push(Segment::branch([
                (0.5, Segment::task(format!("a{i}"), 2.0, 1.0)),
                (0.5, Segment::task(format!("b{i}"), 1.0, 0.5)),
            ]));
        }
        let s = setup_for(&Segment::seq(parts), ProcessorModel::xscale(), 2, 60.0);
        let b = analyze_bounds(&s, &BoundsConfig::default(), "test");
        assert!(!b.exact);
        assert_eq!(b.paths, 8192);
        assert!(b.report.diagnostics.iter().any(|d| d.code == Code::Pas0602));
        for sb in &b.schemes {
            assert!(sb.witness_lo.is_empty() && sb.witness_hi.is_empty());
            assert!(sb.energy.lo <= sb.energy.hi);
            assert!(sb.makespan.lo <= sb.makespan.hi);
        }
        // The DAG join is conservative: it must contain the all-heavy and
        // all-light chains' work.
        let npm = b.schemes.first().expect("NPM");
        assert!(npm.makespan.hi >= 13.0 * 2.0 - 1e-9);
    }

    #[test]
    fn faulty_makespan_warns_past_deadline() {
        let s = setup_for(&two_task_chain(), ProcessorModel::xscale(), 1, 17.0);
        let b = analyze_bounds(
            &s,
            &BoundsConfig {
                min_exec_fraction: 0.01,
                fault: Some(FaultEnvelope {
                    overrun_factor: 3.0,
                    stall_ms: 0.0,
                }),
            },
            "test",
        );
        let npm = b.schemes.first().expect("NPM");
        assert!(!npm.deadline_safe);
        assert!(b.report.diagnostics.iter().any(|d| d.code == Code::Pas0605));
    }

    #[test]
    fn min_mean_g_respects_the_time_budget() {
        let s = setup_for(&two_task_chain(), ProcessorModel::xscale(), 1, 32.0);
        let ctx = Ctx::new(&s, &BoundsConfig::default());
        // No budget to slow down: must pay the full-speed g.
        let full = 1.0 + ctx.rho - ctx.iota;
        assert!((ctx.min_mean_g(1.0) - full).abs() < 1e-12);
        // A generous budget reaches the platform-wide minimum g.
        assert!(ctx.min_mean_g(1e6) <= ctx.g_all_min + 1e-12);
        // Monotone non-increasing in the budget.
        let mut last = f64::INFINITY;
        for b in [1.0, 1.2, 1.5, 2.0, 3.0, 10.0] {
            let c = ctx.min_mean_g(b);
            assert!(c <= last + 1e-12);
            last = c;
        }
    }
}
