//! Fault-plan sanity checks (`PAS02xx`).
//!
//! The range checks mirror [`mp_sim::FaultPlan::validate`] (same
//! wording, so CLI users see consistent messages from either path) but
//! collect every violation, and add cross-checks against the workload the
//! plan targets.

use crate::diag::{Code, Diagnostic, Loc, Report};
use andor_graph::AndOrGraph;
use mp_sim::FaultPlan;

/// Checks one fault plan. When the workload it will be applied to is
/// known, pass it as `graph` to enable the target cross-checks
/// (PAS0205).
pub fn check_fault_plan(plan: &FaultPlan, graph: Option<&AndOrGraph>, src: &str) -> Report {
    let mut r = Report::new();
    for (field, p) in [
        ("overrun_prob", plan.overrun_prob),
        ("speed_fail_prob", plan.speed_fail_prob),
        ("stall_prob", plan.stall_prob),
    ] {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            r.push(Diagnostic::new(
                Code::Pas0201,
                Loc::at(src, field),
                format!("{field} = {p} is not a probability in [0, 1]"),
            ));
        }
    }
    if !plan.overrun_factor.is_finite() || plan.overrun_factor < 1.0 {
        r.push(Diagnostic::new(
            Code::Pas0202,
            Loc::at(src, "overrun_factor"),
            format!(
                "overrun_factor = {} must be finite and >= 1",
                plan.overrun_factor
            ),
        ));
    }
    if !plan.stall_ms.is_finite() || plan.stall_ms < 0.0 {
        r.push(Diagnostic::new(
            Code::Pas0203,
            Loc::at(src, "stall_ms"),
            format!("stall_ms = {} must be finite and >= 0", plan.stall_ms),
        ));
    }
    if r.has_errors() {
        return r;
    }
    if plan.stall_prob > 0.0 && plan.stall_ms == 0.0 {
        r.push(Diagnostic::new(
            Code::Pas0204,
            Loc::at(src, "stall_ms"),
            format!(
                "stall_prob = {} but stall_ms = 0: stalls can never occur",
                plan.stall_prob
            ),
        ));
    }
    if plan.is_none() {
        r.push(Diagnostic::new(
            Code::Pas0206,
            Loc::whole(src),
            "fault plan injects nothing (all probabilities are zero)",
        ));
    } else if let Some(g) = graph {
        let targets = g.nodes().iter().filter(|n| n.kind.is_computation()).count();
        if targets == 0 {
            r.push(Diagnostic::new(
                Code::Pas0205,
                Loc::whole(src),
                "fault plan targets a workload with no computation nodes; \
                 no fault can ever be injected",
            ));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_is_clean() {
        let plan = FaultPlan::overruns(0.2, 1.5, 7);
        assert!(check_fault_plan(&plan, None, "p.json").is_clean());
    }

    #[test]
    fn range_violations_all_reported() {
        let plan = FaultPlan {
            overrun_prob: 2.0,
            overrun_factor: 0.5,
            speed_fail_prob: -0.1,
            stall_prob: 0.3,
            stall_ms: -1.0,
            seed: 0,
        };
        let r = check_fault_plan(&plan, None, "p.json");
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::Pas0201, Code::Pas0201, Code::Pas0202, Code::Pas0203]
        );
    }

    #[test]
    fn degenerate_plans_warned() {
        let r = check_fault_plan(&FaultPlan::none(), None, "p.json");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::Pas0206);
        assert!(!r.has_errors() && !r.has_warnings());

        let mut stall_no_dur = FaultPlan::none();
        stall_no_dur.stall_prob = 0.4;
        let r = check_fault_plan(&stall_no_dur, None, "p.json");
        assert_eq!(r.diagnostics[0].code, Code::Pas0204);
    }
}
