//! Plan-artifact verification (`PAS04xx`).
//!
//! A `pas plan --out` artifact is a *claim*: "this canonical schedule,
//! these latest start times, these speculative parameters are what the
//! off-line phase produces for that workload on that platform, and they
//! meet the deadline". This module re-derives the whole artifact
//! independently and diffs every field, then re-proves the scheme-specific
//! bounds symbolically over OR-paths (the same enumeration the Theorem-1
//! verifier uses):
//!
//! * `PAS0401` — unsupported schema version;
//! * `PAS0402` — the plan does not fit the workload at all (table lengths
//!   disagree with the graph or its section decomposition);
//! * `PAS0403` — the canonical schedule (dispatch order or canonical
//!   start times) differs from re-derivation;
//! * `PAS0404` — a latest start time differs from re-derivation;
//! * `PAS0405` — the timing statistics (`Tw`, `Ta`, per-branch tables,
//!   section lengths, worst-remaining) differ from re-derivation;
//! * `PAS0406` — the stored scheme parameters differ from what the
//!   policies derive from the re-derived plan;
//! * `PAS0407` — SS(2)'s switch time θ falls outside `[0, D]` or violates
//!   the switch equation `θ·s₁ + (D−θ)·s₂ = Tᵃ` against the OR-path
//!   enumerated average;
//! * `PAS0408` — a speculative speed (SS(1)'s floor, AS's initial or
//!   per-branch speculation) undercuts the GSS-guaranteed floor — it
//!   assumes less remaining work than the enumeration proves;
//! * `PAS0409` — the plan's deadline is infeasible for the workload
//!   (enumerated worst case exceeds it), so no on-line scheme can honour
//!   the plan's guarantee.
//!
//! The verifier is deliberately *independent* of the serializer: it never
//! trusts a stored value it can recompute, which is what makes a clean
//! `pas check plan.json --against …` an end-to-end proof that the file on
//! disk still means what the off-line phase meant.

use crate::diag::{Code, Diagnostic, Loc, Report};
use crate::enumeration::{self, count_scenarios, ENUMERATION_THRESHOLD};
use crate::feasibility::push_plan_error;
use andor_graph::{AndOrGraph, SectionGraph};
use dvfs_power::ProcessorModel;
use pas_core::{
    pmp_reserve, OfflinePlan, PlanArtifact, PlanError, SchemeParams, PLAN_SCHEMA_VERSION,
};

/// Relative tolerance for all numeric plan comparisons. The serializer
/// round-trips `f64`s exactly, so honest artifacts compare bit-equal;
/// the tolerance only keeps the verifier robust to future formatting
/// changes.
const REL_TOL: f64 = 1e-9;

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Worst and probability-weighted average chain-sums of canonical section
/// lengths over every OR-path of `plan` — the symbolic quantities the
/// scheme bounds are checked against.
fn enumerate_stats(g: &AndOrGraph, sections: &SectionGraph, plan: &OfflinePlan) -> (f64, f64) {
    let mut worst = f64::NEG_INFINITY;
    let mut avg = 0.0_f64;
    enumeration::for_each_path(g, sections, |_scenario, p, chain| {
        worst = worst.max(enumeration::chain_sum(chain, &plan.section_worst_len));
        avg += p * enumeration::chain_sum(chain, &plan.section_avg_len);
    });
    if worst == f64::NEG_INFINITY {
        (0.0, 0.0)
    } else {
        (worst, avg)
    }
}

/// Verifies a deserialized plan artifact against an independently loaded
/// workload and platform. `plan_src` labels the artifact file in
/// diagnostics; `graph_src` labels the reference workload. The caller
/// must have already established graph cleanliness (`check_graph`) —
/// structural graph errors make every comparison here meaningless.
pub fn check_plan(
    artifact: &PlanArtifact,
    plan_src: &str,
    g: &AndOrGraph,
    graph_src: &str,
    model: &ProcessorModel,
) -> Report {
    let _span = pas_obs::profile::span_with(pas_obs::profile::names::CHECK_VERIFY_PLAN, || {
        plan_src.to_string()
    });
    let mut r = Report::new();
    if artifact.schema_version != PLAN_SCHEMA_VERSION {
        r.push(Diagnostic::new(
            Code::Pas0401,
            Loc::at(plan_src, "schema_version"),
            format!(
                "unsupported plan schema version {} (this build reads version {})",
                artifact.schema_version, PLAN_SCHEMA_VERSION
            ),
        ));
        return r;
    }
    r.merge(crate::platform_checks::check_overheads(
        &artifact.overheads,
        plan_src,
    ));
    let stored = &artifact.plan;
    if stored.num_procs == 0 {
        r.push(Diagnostic::new(
            Code::Pas0106,
            Loc::at(plan_src, "plan.num_procs"),
            "processor count must be positive",
        ));
    }
    if !(stored.deadline.is_finite() && stored.deadline > 0.0) {
        r.push(Diagnostic::new(
            Code::Pas0107,
            Loc::at(plan_src, "plan.deadline"),
            format!(
                "deadline {} ms must be finite and positive",
                stored.deadline
            ),
        ));
    }
    if artifact.params.scheme() != artifact.scheme {
        r.push(Diagnostic::new(
            Code::Pas0406,
            Loc::at(plan_src, "params"),
            format!(
                "artifact claims scheme {} but carries {} parameters",
                artifact.scheme.name(),
                artifact.params.scheme().name()
            ),
        ));
    }
    if r.has_errors() {
        return r;
    }

    let sections = match SectionGraph::build(g) {
        Ok(s) => s,
        Err(e) => {
            r.push(Diagnostic::new(
                Code::Pas0402,
                Loc::whole(plan_src),
                format!("workload {graph_src} has no section decomposition: {e}"),
            ));
            return r;
        }
    };
    if let Err(detail) = shape_check(stored, g, &sections) {
        r.push(Diagnostic::new(
            Code::Pas0402,
            Loc::whole(plan_src),
            format!("plan does not fit workload {graph_src}: {detail}"),
        ));
        return r;
    }

    // Independent re-derivation: the whole off-line phase, from scratch,
    // at the stored deadline with the stored overheads.
    let reserve = pmp_reserve(model, artifact.overheads);
    let rederived = match OfflinePlan::build_with_pmp_reserve(
        g,
        &sections,
        stored.num_procs,
        stored.deadline,
        reserve,
    ) {
        Ok(p) => p,
        Err(PlanError::Infeasible {
            worst_finish,
            deadline,
        }) => {
            r.push(Diagnostic::new(
                Code::Pas0409,
                Loc::whole(plan_src),
                format!(
                    "plan deadline {deadline:.3} ms is infeasible for {graph_src}: \
                     the re-derived worst case needs {worst_finish:.3} ms at f_max"
                ),
            ));
            return r;
        }
        Err(e) => {
            push_plan_error(&mut r, e, plan_src);
            return r;
        }
    };

    compare_schedule(stored, &rederived, plan_src, &mut r);
    compare_lst(stored, &rederived, g, plan_src, &mut r);
    compare_stats(stored, &rederived, plan_src, &mut r);
    compare_params(artifact, &rederived, model, plan_src, &mut r);
    scheme_bounds(artifact, &rederived, g, &sections, plan_src, &mut r);
    r
}

/// Structural fit of a plan to a graph; `Err(detail)` explains the first
/// disagreement. Mirrors `Setup::from_plan` so the verifier and the
/// runtime reject exactly the same artifacts.
fn shape_check(plan: &OfflinePlan, g: &AndOrGraph, sections: &SectionGraph) -> Result<(), String> {
    if plan.lst.len() != g.len() {
        return Err(format!(
            "{} latest-start entries vs {} graph nodes",
            plan.lst.len(),
            g.len()
        ));
    }
    let n_sections = sections.len();
    if plan.dispatch.per_section.len() != n_sections {
        return Err(format!(
            "{} dispatched section(s) vs {} in the decomposition",
            plan.dispatch.per_section.len(),
            n_sections
        ));
    }
    for (name, len) in [
        ("canonical_start_rel", plan.canonical_start_rel.len()),
        ("section_worst_len", plan.section_worst_len.len()),
        ("section_avg_len", plan.section_avg_len.len()),
        ("worst_after", plan.worst_after.len()),
    ] {
        if len != n_sections {
            return Err(format!(
                "table '{name}' covers {len} section(s), expected {n_sections}"
            ));
        }
    }
    for (sid, (order, starts)) in plan
        .dispatch
        .per_section
        .iter()
        .zip(plan.canonical_start_rel.iter())
        .enumerate()
    {
        if order.len() != starts.len() {
            return Err(format!(
                "section {sid} dispatches {} node(s) but records {} canonical start(s)",
                order.len(),
                starts.len()
            ));
        }
        if let Some(bad) = order.iter().find(|n| n.index() >= g.len()) {
            return Err(format!(
                "section {sid} dispatch names node {} but the graph has {} nodes",
                bad.index(),
                g.len()
            ));
        }
    }
    Ok(())
}

/// `PAS0403`: dispatch order and canonical start times.
fn compare_schedule(stored: &OfflinePlan, rederived: &OfflinePlan, src: &str, r: &mut Report) {
    for (sid, (so, ro)) in stored
        .dispatch
        .per_section
        .iter()
        .zip(rederived.dispatch.per_section.iter())
        .enumerate()
    {
        if so != ro {
            r.push(Diagnostic::new(
                Code::Pas0403,
                Loc::at(src, format!("plan.dispatch[{sid}]")),
                format!(
                    "section {sid} dispatch order {:?} differs from the re-derived LTF order {:?}",
                    so.iter().map(|n| n.index()).collect::<Vec<_>>(),
                    ro.iter().map(|n| n.index()).collect::<Vec<_>>()
                ),
            ));
            continue; // Start times are meaningless under a different order.
        }
        let ss = stored.canonical_start_rel.get(sid);
        let rs = rederived.canonical_start_rel.get(sid);
        if let (Some(ss), Some(rs)) = (ss, rs) {
            for (i, (a, b)) in ss.iter().zip(rs.iter()).enumerate() {
                if !approx_eq(*a, *b) {
                    r.push(Diagnostic::new(
                        Code::Pas0403,
                        Loc::at(src, format!("plan.canonical_start_rel[{sid}][{i}]")),
                        format!(
                            "canonical start {a} ms differs from the re-derived {b} ms \
                             (section {sid}, dispatch slot {i})"
                        ),
                    ));
                }
            }
        }
    }
}

/// `PAS0404`: latest start times, per node.
fn compare_lst(
    stored: &OfflinePlan,
    rederived: &OfflinePlan,
    g: &AndOrGraph,
    src: &str,
    r: &mut Report,
) {
    for (i, (s, d)) in stored.lst.iter().zip(rederived.lst.iter()).enumerate() {
        let name = g
            .iter()
            .nth(i)
            .map(|(_, n)| n.name.clone())
            .unwrap_or_default();
        match (s, d) {
            (Some(a), Some(b)) if !approx_eq(*a, *b) => r.push(Diagnostic::new(
                Code::Pas0404,
                Loc::at(src, format!("plan.lst[{i}]")),
                format!(
                    "latest start time of node {i} ('{name}') is {a} ms in the plan but \
                     re-derives to {b} ms — a tampered or stale LST breaks the Theorem-1 shift"
                ),
            )),
            (Some(_), None) | (None, Some(_)) => r.push(Diagnostic::new(
                Code::Pas0404,
                Loc::at(src, format!("plan.lst[{i}]")),
                format!(
                    "node {i} ('{name}') {} a latest start time in the plan but the \
                     re-derivation disagrees",
                    if s.is_some() { "has" } else { "lacks" }
                ),
            )),
            _ => {}
        }
    }
}

/// `PAS0405`: `Tw`/`Ta`, section lengths, remaining-time tables.
fn compare_stats(stored: &OfflinePlan, rederived: &OfflinePlan, src: &str, r: &mut Report) {
    fn diff(r: &mut Report, src: &str, path: String, a: f64, b: f64) {
        if !approx_eq(a, b) {
            r.push(Diagnostic::new(
                Code::Pas0405,
                Loc::at(src, path),
                format!("stored value {a} differs from the re-derived {b}"),
            ));
        }
    }
    diff(
        r,
        src,
        "plan.worst_total".into(),
        stored.worst_total,
        rederived.worst_total,
    );
    diff(
        r,
        src,
        "plan.avg_total".into(),
        stored.avg_total,
        rederived.avg_total,
    );
    for (name, sv, rv) in [
        (
            "section_worst_len",
            &stored.section_worst_len,
            &rederived.section_worst_len,
        ),
        (
            "section_avg_len",
            &stored.section_avg_len,
            &rederived.section_avg_len,
        ),
        ("worst_after", &stored.worst_after, &rederived.worst_after),
    ] {
        for (i, (a, b)) in sv.iter().zip(rv.iter()).enumerate() {
            diff(r, src, format!("plan.{name}[{i}]"), *a, *b);
        }
    }
    for (name, sm, rm) in [
        (
            "branch_worst",
            &stored.branch_worst,
            &rederived.branch_worst,
        ),
        ("branch_avg", &stored.branch_avg, &rederived.branch_avg),
    ] {
        let mut keys: Vec<_> = sm.keys().chain(rm.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let (or, k) = *key;
            match (sm.get(key), rm.get(key)) {
                (Some(a), Some(b)) => diff(r, src, format!("plan.{name}[{or},{k}]"), *a, *b),
                (a, b) => r.push(Diagnostic::new(
                    Code::Pas0405,
                    Loc::at(src, format!("plan.{name}[{or},{k}]")),
                    format!(
                        "entry ({or}, branch {k}) is {} the plan but {} the re-derivation",
                        if a.is_some() { "in" } else { "missing from" },
                        if b.is_some() { "in" } else { "missing from" },
                    ),
                )),
            }
        }
    }
}

/// `PAS0406`: the stored scheme parameters vs. what the policies derive
/// from the re-derived plan.
fn compare_params(
    artifact: &PlanArtifact,
    rederived: &OfflinePlan,
    model: &ProcessorModel,
    src: &str,
    r: &mut Report,
) {
    let expected = SchemeParams::derive(artifact.scheme, rederived, model, artifact.overheads);
    let fields: Vec<(&str, f64, f64)> = match (&artifact.params, &expected) {
        (SchemeParams::Npm, SchemeParams::Npm) | (SchemeParams::Gss, SchemeParams::Gss) => vec![],
        (SchemeParams::Spm { static_speed: a }, SchemeParams::Spm { static_speed: b }) => {
            vec![("static_speed", *a, *b)]
        }
        (SchemeParams::Ss1 { spec_speed: a }, SchemeParams::Ss1 { spec_speed: b }) => {
            vec![("spec_speed", *a, *b)]
        }
        (
            SchemeParams::Ss2 {
                low: al,
                high: ah,
                switch_time: at,
            },
            SchemeParams::Ss2 {
                low: bl,
                high: bh,
                switch_time: bt,
            },
        ) => vec![
            ("low", *al, *bl),
            ("high", *ah, *bh),
            ("switch_time", *at, *bt),
        ],
        (SchemeParams::As { initial_spec: a }, SchemeParams::As { initial_spec: b }) => {
            vec![("initial_spec", *a, *b)]
        }
        // Variant mismatch against the claimed scheme was reported before
        // re-derivation; nothing numeric to compare.
        _ => return,
    };
    for (field, a, b) in fields {
        if !approx_eq(a, b) {
            r.push(Diagnostic::new(
                Code::Pas0406,
                Loc::at(src, format!("params.{field}")),
                format!(
                    "{} parameter '{field}' is {a} in the artifact but re-derives to {b}",
                    artifact.scheme.name()
                ),
            ));
        }
    }
}

/// `PAS0407`/`PAS0408`/`PAS0409`: the scheme-specific bounds, proved over
/// the OR-path enumeration (exact below [`ENUMERATION_THRESHOLD`], with a
/// `PAS0303` note and the recursive totals above it).
fn scheme_bounds(
    artifact: &PlanArtifact,
    rederived: &OfflinePlan,
    g: &AndOrGraph,
    sections: &SectionGraph,
    src: &str,
    r: &mut Report,
) {
    let deadline = rederived.deadline;
    let scenarios = count_scenarios(g, sections);
    let (worst, avg) = if scenarios <= ENUMERATION_THRESHOLD {
        let _enum_span =
            pas_obs::profile::span_with(pas_obs::profile::names::OFFLINE_ENUMERATE, || {
                format!("{scenarios} paths")
            });
        enumerate_stats(g, sections, rederived)
    } else {
        r.push(Diagnostic::new(
            Code::Pas0303,
            Loc::whole(src),
            format!(
                "{scenarios} OR-paths exceed the enumeration threshold \
                 {ENUMERATION_THRESHOLD}; scheme bounds use the recursive totals"
            ),
        ));
        (rederived.worst_total, rederived.avg_total)
    };
    debug_assert!(
        scenarios > ENUMERATION_THRESHOLD || approx_eq(worst, rederived.worst_total),
        "enumerated worst {worst} disagrees with recursive Tw {}",
        rederived.worst_total
    );

    if worst > deadline * (1.0 + 1e-12) {
        r.push(Diagnostic::new(
            Code::Pas0409,
            Loc::whole(src),
            format!(
                "enumerated worst-case OR-path needs {worst:.3} ms at f_max but the plan \
                 deadline is {deadline:.3} ms"
            ),
        ));
    }

    // The GSS-guaranteed floor over the whole application: at least the
    // enumerated average work must fit below the deadline at the claimed
    // speculative speed, or the speculation starves the guarantee.
    let floor = avg / deadline;
    match &artifact.params {
        SchemeParams::Npm | SchemeParams::Gss | SchemeParams::Spm { .. } => {}
        SchemeParams::Ss1 { spec_speed } => {
            if *spec_speed < floor * (1.0 - REL_TOL) {
                r.push(Diagnostic::new(
                    Code::Pas0408,
                    Loc::at(src, "params.spec_speed"),
                    format!(
                        "SS(1) speculative speed {spec_speed:.6} undercuts the enumerated \
                         floor Ta/D = {floor:.6} — the speculation assumes less work than \
                         the OR-path average proves"
                    ),
                ));
            }
        }
        SchemeParams::Ss2 {
            low,
            high,
            switch_time,
        } => {
            check_ss2(*low, *high, *switch_time, avg, deadline, src, r);
        }
        SchemeParams::As { initial_spec } => {
            if *initial_spec < floor * (1.0 - REL_TOL) {
                r.push(Diagnostic::new(
                    Code::Pas0408,
                    Loc::at(src, "params.initial_spec"),
                    format!(
                        "AS initial speculation {initial_spec:.6} undercuts the enumerated \
                         floor Ta/D = {floor:.6}"
                    ),
                ));
            }
            // AS re-speculates from `branch_avg` at every OR: a branch
            // average above the branch worst would *over*-claim remaining
            // work was observed; below the re-derived average it
            // undercuts the floor at that PMP.
            let mut keys: Vec<_> = artifact.plan.branch_avg.keys().collect();
            keys.sort();
            for key in keys {
                let (or, k) = *key;
                let Some(a) = artifact.plan.branch_avg.get(key) else {
                    continue;
                };
                if let Some(w) = artifact.plan.branch_worst.get(key) {
                    if *a > *w * (1.0 + REL_TOL) + REL_TOL {
                        r.push(Diagnostic::new(
                            Code::Pas0408,
                            Loc::at(src, format!("plan.branch_avg[{or},{k}]")),
                            format!(
                                "branch average remaining {a} ms exceeds the branch worst \
                                 {w} ms — the speculation table is inconsistent"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// The SS(2) window and switch-equation checks against the enumerated
/// average `avg` (paper §4: `θ = (s₂·D − Tᵃ)/(s₂ − s₁)`, clamped to
/// `[0, D]`).
fn check_ss2(low: f64, high: f64, theta: f64, avg: f64, deadline: f64, src: &str, r: &mut Report) {
    if !(0.0 - REL_TOL..=deadline * (1.0 + REL_TOL) + REL_TOL).contains(&theta) {
        r.push(Diagnostic::new(
            Code::Pas0407,
            Loc::at(src, "params.switch_time"),
            format!(
                "SS(2) switch time θ = {theta} ms falls outside the valid window \
                 [0, {deadline}]"
            ),
        ));
        return;
    }
    if low > high + REL_TOL {
        r.push(Diagnostic::new(
            Code::Pas0407,
            Loc::at(src, "params.low"),
            format!("SS(2) low speed {low} exceeds the high speed {high}"),
        ));
        return;
    }
    let expected = if (high - low).abs() < 1e-12 {
        0.0
    } else {
        ((high * deadline - avg) / (high - low)).clamp(0.0, deadline)
    };
    if !approx_eq(theta, expected) {
        r.push(Diagnostic::new(
            Code::Pas0407,
            Loc::at(src, "params.switch_time"),
            format!(
                "SS(2) switch time θ = {theta} ms violates the switch equation \
                 θ·s₁ + (D−θ)·s₂ = Tᵃ over the enumerated average: expected \
                 θ = {expected} ms for s₁ = {low}, s₂ = {high}, Tᵃ = {avg} ms, \
                 D = {deadline} ms"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;
    use pas_core::{Scheme, Setup};

    fn setup(model: ProcessorModel) -> Setup {
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ]);
        Setup::for_load(app.lower().expect("fixture lowers"), model, 2, 0.5)
            .expect("feasible setup")
    }

    fn artifact(scheme: Scheme) -> (PlanArtifact, Setup) {
        let s = setup(ProcessorModel::transmeta5400());
        let a = PlanArtifact::from_setup(&s, scheme, "fixture", "transmeta");
        (a, s)
    }

    #[test]
    fn honest_artifacts_verify_cleanly_for_all_schemes() {
        for scheme in Scheme::ALL {
            let (a, s) = artifact(scheme);
            let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
            assert!(r.is_clean(), "{}: {}", scheme.name(), r.render_human());
        }
    }

    #[test]
    fn round_tripped_artifacts_verify_cleanly() {
        for scheme in Scheme::ALL {
            let (a, s) = artifact(scheme);
            let back =
                PlanArtifact::from_json(&a.to_json().expect("serializes")).expect("deserializes");
            let r = check_plan(&back, "plan.json", &s.graph, "fixture", &s.model);
            assert!(r.is_clean(), "{}: {}", scheme.name(), r.render_human());
        }
    }

    #[test]
    fn wrong_schema_version_is_pas0401() {
        let (mut a, s) = artifact(Scheme::Gss);
        a.schema_version = 99;
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Pas0401));
    }

    #[test]
    fn wrong_workload_is_pas0402() {
        let (a, s) = artifact(Scheme::Gss);
        let other = Segment::task("solo", 2.0, 1.0)
            .lower()
            .expect("fixture lowers");
        let r = check_plan(&a, "plan.json", &other, "other", &s.model);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Pas0402));
    }

    #[test]
    fn tampered_lst_is_pas0404() {
        let (mut a, s) = artifact(Scheme::Gss);
        let slot = a
            .plan
            .lst
            .iter()
            .position(|l| l.is_some())
            .expect("some node has an LST");
        if let Some(Some(l)) = a.plan.lst.get_mut(slot) {
            *l += 3.0;
        }
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0404),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn tampered_theta_is_pas0407() {
        let (mut a, s) = artifact(Scheme::Ss2);
        if let SchemeParams::Ss2 { switch_time, .. } = &mut a.params {
            *switch_time = -5.0;
        }
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0407),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn undercut_spec_speed_is_pas0408() {
        let (mut a, s) = artifact(Scheme::Ss1);
        if let SchemeParams::Ss1 { spec_speed } = &mut a.params {
            *spec_speed *= 0.5;
        }
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0408),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn tampered_worst_total_is_pas0405() {
        let (mut a, s) = artifact(Scheme::Npm);
        a.plan.worst_total *= 0.9;
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Pas0405));
    }

    #[test]
    fn shrunk_deadline_is_pas0409() {
        let (mut a, s) = artifact(Scheme::Gss);
        a.plan.deadline = a.plan.worst_total * 0.5;
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0409),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn reordered_dispatch_is_pas0403() {
        let app = Segment::par([Segment::task("X", 6.0, 3.0), Segment::task("Y", 4.0, 2.0)]);
        let s = Setup::for_load(
            app.lower().expect("fixture lowers"),
            ProcessorModel::transmeta5400(),
            2,
            0.5,
        )
        .expect("feasible setup");
        let mut a = PlanArtifact::from_setup(&s, Scheme::Gss, "fixture", "transmeta");
        let order = a
            .plan
            .dispatch
            .per_section
            .iter_mut()
            .find(|o| o.len() >= 2)
            .expect("a section with two nodes");
        order.swap(0, 1);
        let r = check_plan(&a, "plan.json", &s.graph, "fixture", &s.model);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::Pas0403),
            "{}",
            r.render_human()
        );
    }
}
