//! Auto-repair for the mechanical graph diagnostics (`pas check --fix`).
//!
//! Only defects with one obviously-correct repair are fixed:
//!
//! * duplicate edges (`PAS0005`) are dropped, keeping the first
//!   occurrence — for OR nodes the duplicate branch's probability is
//!   merged into the surviving branch so the distribution's mass is
//!   preserved;
//! * OR branch probabilities that are individually valid but do not sum
//!   to 1 (`PAS0009`) are renormalized by dividing through by the sum.
//!
//! Everything else (cycles, dangling endpoints, bad execution times…)
//! has no canonical repair and is left for the user. The repaired graph
//! is rebuilt through the same serde path `pas check` loads files with,
//! so a "fixed" graph is exactly what re-reading the written file yields.

use crate::graph_checks::OR_PROB_TOLERANCE;
use andor_graph::{AndOrGraph, Node, NodeKind};
use serde::Serialize;

/// Applies the mechanical repairs to `g`. Returns the repaired graph and
/// one human-readable line per fix applied; an empty list means the graph
/// was already clean with respect to the fixable diagnostics (the
/// returned graph is then identical to the input).
pub fn fix_graph(g: &AndOrGraph) -> Result<(AndOrGraph, Vec<String>), String> {
    let mut nodes: Vec<Node> = g.nodes().to_vec();
    let mut fixes = Vec::new();

    for (i, node) in nodes.iter_mut().enumerate() {
        dedupe_edges(i, node, &mut fixes);
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        normalize_probs(i, node, &mut fixes);
    }

    // Rebuild through serde — the same path `pas check` loads files with —
    // so the repaired graph is byte-for-byte what re-reading the written
    // file would produce.
    #[derive(Serialize)]
    struct Wire {
        nodes: Vec<Node>,
    }
    let json = serde_json::to_string(&Wire { nodes })
        .map_err(|e| format!("serializing repaired graph: {e}"))?;
    let fixed: AndOrGraph =
        serde_json::from_str(&json).map_err(|e| format!("rebuilding repaired graph: {e}"))?;
    Ok((fixed, fixes))
}

/// Drops duplicate entries from `succs` and `preds`, merging OR branch
/// probabilities of dropped duplicate successors into the survivor.
fn dedupe_edges(i: usize, node: &mut Node, fixes: &mut Vec<String>) {
    // Successors first: for OR nodes the probability vector is parallel
    // to `succs`, so both must be filtered in lockstep.
    let probs = match &node.kind {
        NodeKind::Or { probs } if probs.len() == node.succs.len() => Some(probs.clone()),
        _ => None,
    };
    let mut kept = Vec::with_capacity(node.succs.len());
    let mut kept_probs: Vec<f64> = Vec::new();
    for (k, &s) in node.succs.iter().enumerate() {
        match kept.iter().position(|&seen| seen == s) {
            None => {
                kept.push(s);
                if let Some(p) = &probs {
                    kept_probs.push(p.get(k).copied().unwrap_or(0.0));
                }
            }
            Some(first) => {
                if let (Some(p), Some(slot)) = (&probs, kept_probs.get_mut(first)) {
                    *slot += p.get(k).copied().unwrap_or(0.0);
                }
                fixes.push(format!(
                    "n{i} ('{}'): dropped duplicate edge to n{}{}",
                    node.name,
                    s.index(),
                    if probs.is_some() {
                        " (probability merged into the surviving branch)"
                    } else {
                        ""
                    }
                ));
            }
        }
    }
    if kept.len() < node.succs.len() {
        node.succs = kept;
        if probs.is_some() {
            if let NodeKind::Or { probs } = &mut node.kind {
                *probs = kept_probs;
            }
        }
    }
    // Predecessors: plain dedupe, first occurrence wins. The dropped
    // duplicate corresponds to the successor-side duplicate already
    // reported above, so no extra fix line.
    let mut seen = Vec::with_capacity(node.preds.len());
    node.preds.retain(|&p| {
        if seen.contains(&p) {
            false
        } else {
            seen.push(p);
            true
        }
    });
}

/// Renormalizes an OR node's branch probabilities when they are
/// individually valid but sum away from 1.
fn normalize_probs(i: usize, node: &mut Node, fixes: &mut Vec<String>) {
    let NodeKind::Or { probs } = &mut node.kind else {
        return;
    };
    if probs.is_empty() || probs.len() != node.succs.len() {
        return; // Arity mismatch (PAS0007) has no mechanical repair.
    }
    if !probs.iter().all(|p| p.is_finite() && *p > 0.0) {
        return; // Out-of-range probabilities (PAS0008) are not fixable.
    }
    let sum: f64 = probs.iter().sum();
    if !(sum.is_finite() && sum > 0.0) || (sum - 1.0).abs() <= OR_PROB_TOLERANCE {
        return;
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    fixes.push(format!(
        "n{i} ('{}'): renormalized OR branch probabilities (sum was {sum:.6})",
        node.name
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use crate::graph_checks::check_graph;

    fn graph(json: &str) -> AndOrGraph {
        serde_json::from_str(json).expect("test graph parses")
    }

    /// A, then OR over B/C with probabilities summing to 0.8.
    const BAD_PROBS: &str = r#"{"nodes": [
        {"name": "A", "kind": {"Computation": {"wcet": 2.0, "acet": 1.0}}, "preds": [], "succs": [1]},
        {"name": "or", "kind": {"Or": {"probs": [0.5, 0.3]}}, "preds": [0], "succs": [2, 3]},
        {"name": "B", "kind": {"Computation": {"wcet": 3.0, "acet": 1.5}}, "preds": [1], "succs": []},
        {"name": "C", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}}, "preds": [1], "succs": []}
    ]}"#;

    /// A with a duplicated edge to B.
    const DUP_EDGE: &str = r#"{"nodes": [
        {"name": "A", "kind": {"Computation": {"wcet": 2.0, "acet": 1.0}}, "preds": [], "succs": [1, 1]},
        {"name": "B", "kind": {"Computation": {"wcet": 3.0, "acet": 1.5}}, "preds": [0, 0], "succs": []}
    ]}"#;

    #[test]
    fn renormalizes_or_probabilities() {
        let g = graph(BAD_PROBS);
        assert!(check_graph(&g, "t")
            .diagnostics
            .iter()
            .any(|d| d.code == Code::Pas0009));
        let (fixed, fixes) = fix_graph(&g).expect("fix succeeds");
        assert_eq!(fixes.len(), 1, "{fixes:?}");
        assert!(
            fixes.iter().any(|f| f.contains("renormalized")),
            "{fixes:?}"
        );
        let r = check_graph(&fixed, "t");
        assert!(
            !r.diagnostics.iter().any(|d| d.code == Code::Pas0009),
            "{}",
            r.render_human()
        );
        // Relative weights preserved: 0.5/0.8 and 0.3/0.8.
        if let NodeKind::Or { probs } = &fixed.nodes()[1].kind {
            assert!((probs[0] - 0.625).abs() < 1e-12);
            assert!((probs[1] - 0.375).abs() < 1e-12);
        } else {
            panic!("node 1 should stay an OR");
        }
    }

    #[test]
    fn drops_duplicate_edges_both_sides() {
        let g = graph(DUP_EDGE);
        assert!(check_graph(&g, "t")
            .diagnostics
            .iter()
            .any(|d| d.code == Code::Pas0005));
        let (fixed, fixes) = fix_graph(&g).expect("fix succeeds");
        assert!(!fixes.is_empty());
        assert_eq!(fixed.nodes()[0].succs.len(), 1);
        assert_eq!(fixed.nodes()[1].preds.len(), 1);
        let r = check_graph(&fixed, "t");
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn clean_graph_is_untouched() {
        let g = andor_graph::Segment::seq([
            andor_graph::Segment::task("A", 2.0, 1.0),
            andor_graph::Segment::task("B", 3.0, 2.0),
        ])
        .lower()
        .expect("fixture lowers");
        let before = serde_json::to_string(&g).expect("serializes");
        let (fixed, fixes) = fix_graph(&g).expect("fix succeeds");
        assert!(fixes.is_empty());
        assert_eq!(serde_json::to_string(&fixed).expect("serializes"), before);
    }

    #[test]
    fn duplicate_or_branch_merges_probability() {
        // OR with branches [B, B] at 0.6/0.4: dedupe keeps one branch at
        // probability 1.0.
        let g = graph(
            r#"{"nodes": [
            {"name": "or", "kind": {"Or": {"probs": [0.6, 0.4]}}, "preds": [], "succs": [1, 1]},
            {"name": "B", "kind": {"Computation": {"wcet": 3.0, "acet": 1.5}}, "preds": [0, 0], "succs": []}
        ]}"#,
        );
        let (fixed, fixes) = fix_graph(&g).expect("fix succeeds");
        assert!(!fixes.is_empty());
        if let NodeKind::Or { probs } = &fixed.nodes()[0].kind {
            assert_eq!(probs.len(), 1);
            assert!((probs[0] - 1.0).abs() < 1e-12);
        } else {
            panic!("node 0 should stay an OR");
        }
    }
}
