//! Graph well-formedness checks (`PAS00xx`).
//!
//! These mirror `AndOrGraph::validate` and `SectionGraph::build` but
//! differ in two ways that matter for a front-end: they *collect every
//! problem* instead of failing on the first, and they operate defensively
//! on the raw node array so that a graph deserialized from hostile JSON
//! (serde bypasses validation) can be inspected without panicking.

use crate::diag::{Code, Diagnostic, Loc, Report};
use andor_graph::{AndOrGraph, Node, NodeId, NodeKind, SectionGraph};
use std::collections::VecDeque;

/// Relative tolerance for OR branch-probability sums (matches the
/// validator in `andor-graph`).
pub const OR_PROB_TOLERANCE: f64 = 1e-6;

fn node_label(i: usize, node: &Node) -> String {
    format!("n{i} ('{}')", node.name)
}

fn loc(src: &str, i: usize) -> Loc {
    Loc::at(src, format!("nodes[{i}]"))
}

/// Runs every graph check against `g`, labelling diagnostics with `src`
/// (a file path or builtin workload name).
pub fn check_graph(g: &AndOrGraph, src: &str) -> Report {
    let mut r = Report::new();
    let nodes = g.nodes();
    let n = nodes.len();
    if n == 0 {
        r.push(Diagnostic::new(
            Code::Pas0001,
            Loc::whole(src),
            "graph has no nodes",
        ));
        return r;
    }

    // Pass 1: per-node local checks. `topo_safe` stays true only while the
    // adjacency lists are a consistent, loop-free edge set — the
    // precondition for the topology passes below.
    let mut topo_safe = true;
    for (i, node) in nodes.iter().enumerate() {
        check_adjacency(&mut r, src, nodes, i, node, &mut topo_safe);
        check_kind(&mut r, src, i, node);
        if n > 1 && node.preds.is_empty() && node.succs.is_empty() {
            r.push(Diagnostic::new(
                Code::Pas0013,
                loc(src, i),
                format!(
                    "node {} is isolated (no predecessors or successors)",
                    node_label(i, node)
                ),
            ));
        }
    }

    if topo_safe {
        check_topology(&mut r, src, nodes);
    }

    // Section-structure consistency (the paper's OR-seriality restriction)
    // is only meaningful once everything above is clean: `SectionGraph`
    // assumes a validated graph.
    if !r.has_errors() {
        if let Err(e) = SectionGraph::build(g) {
            r.push(Diagnostic::new(
                Code::Pas0011,
                Loc::whole(src),
                e.to_string(),
            ));
        }
    }
    r
}

/// Dangling endpoints (PAS0002), asymmetric adjacency (PAS0003), self
/// loops (PAS0004), duplicate edges (PAS0005).
fn check_adjacency(
    r: &mut Report,
    src: &str,
    nodes: &[Node],
    i: usize,
    node: &Node,
    topo_safe: &mut bool,
) {
    let n = nodes.len();
    let me = NodeId(i as u32);
    let mut seen_succs: Vec<NodeId> = Vec::new();
    for &s in &node.succs {
        if s.index() >= n {
            r.push(Diagnostic::new(
                Code::Pas0002,
                loc(src, i),
                format!(
                    "node {} lists successor {s}, but the graph has only {n} nodes",
                    node_label(i, node)
                ),
            ));
            *topo_safe = false;
            continue;
        }
        if s == me {
            r.push(Diagnostic::new(
                Code::Pas0004,
                loc(src, i),
                format!("self loop on {}", node_label(i, node)),
            ));
            *topo_safe = false;
            continue;
        }
        if seen_succs.contains(&s) {
            r.push(Diagnostic::new(
                Code::Pas0005,
                loc(src, i),
                format!("duplicate edge {me} -> {s}"),
            ));
            *topo_safe = false;
        }
        seen_succs.push(s);
        let other = nodes.get(s.index());
        if other.is_some_and(|o| !o.preds.contains(&me)) {
            r.push(Diagnostic::new(
                Code::Pas0003,
                loc(src, i),
                format!("edge {me} -> {s} is asymmetric: {s} does not list {me} as a predecessor"),
            ));
            *topo_safe = false;
        }
    }
    for &p in &node.preds {
        if p.index() >= n {
            r.push(Diagnostic::new(
                Code::Pas0002,
                loc(src, i),
                format!(
                    "node {} lists predecessor {p}, but the graph has only {n} nodes",
                    node_label(i, node)
                ),
            ));
            *topo_safe = false;
            continue;
        }
        let other = nodes.get(p.index());
        if p != me && other.is_some_and(|o| !o.succs.contains(&me)) {
            r.push(Diagnostic::new(
                Code::Pas0003,
                loc(src, i),
                format!(
                    "node {} lists predecessor {p}, but {p} does not list {me} as a successor",
                    node_label(i, node)
                ),
            ));
            *topo_safe = false;
        }
    }
}

/// Execution-time (PAS0006) and OR-probability (PAS0007/0008/0009) checks.
fn check_kind(r: &mut Report, src: &str, i: usize, node: &Node) {
    match &node.kind {
        NodeKind::Computation { wcet, acet } => {
            let ok = wcet.is_finite() && acet.is_finite() && *acet > 0.0 && *acet <= *wcet;
            if !ok {
                r.push(Diagnostic::new(
                    Code::Pas0006,
                    loc(src, i),
                    format!(
                        "node {}: execution times must satisfy 0 < acet <= wcet and be finite \
                         (wcet = {wcet}, acet = {acet})",
                        node_label(i, node)
                    ),
                ));
            }
        }
        NodeKind::And => {}
        NodeKind::Or { probs } => {
            if probs.len() != node.succs.len() {
                r.push(Diagnostic::new(
                    Code::Pas0007,
                    loc(src, i),
                    format!(
                        "OR node {} has {} branch probabilities for {} successors",
                        node_label(i, node),
                        probs.len(),
                        node.succs.len()
                    ),
                ));
            }
            let mut all_in_range = true;
            for (k, &p) in probs.iter().enumerate() {
                if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                    all_in_range = false;
                    r.push(Diagnostic::new(
                        Code::Pas0008,
                        loc(src, i),
                        format!(
                            "OR node {} branch {k}: probability {p} is outside (0, 1]",
                            node_label(i, node)
                        ),
                    ));
                }
            }
            if all_in_range && !probs.is_empty() {
                let sum: f64 = probs.iter().sum();
                if (sum - 1.0).abs() > OR_PROB_TOLERANCE {
                    r.push(Diagnostic::new(
                        Code::Pas0009,
                        loc(src, i),
                        format!(
                            "OR node {}: branch probabilities sum to {sum:.6}, expected 1 \
                             (tolerance {OR_PROB_TOLERANCE})",
                            node_label(i, node)
                        ),
                    ));
                }
            }
        }
    }
}

/// Cycle detection (PAS0010) and source-reachability (PAS0012) via Kahn's
/// algorithm. Only called with consistent adjacency lists.
fn check_topology(r: &mut Report, src: &str, nodes: &[Node]) {
    let n = nodes.len();
    let mut indeg: Vec<usize> = nodes.iter().map(|node| node.preds.len()).collect();
    let mut queue: VecDeque<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut processed = vec![false; n];
    let mut count = 0usize;
    while let Some(i) = queue.pop_front() {
        if let Some(p) = processed.get_mut(i) {
            *p = true;
        }
        count += 1;
        if let Some(node) = nodes.get(i) {
            for &s in &node.succs {
                if let Some(d) = indeg.get_mut(s.index()) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s.index());
                    }
                }
            }
        }
    }
    if count == n {
        return;
    }
    let stuck = n - count;
    let example = processed.iter().position(|&done| !done).unwrap_or(0);
    let name = nodes.get(example).map(|n| n.name.as_str()).unwrap_or("?");
    r.push(Diagnostic::new(
        Code::Pas0010,
        Loc::whole(src),
        format!(
            "graph contains a cycle ({stuck} node(s) cannot be topologically ordered, \
             e.g. n{example} ('{name}'))"
        ),
    ));
    // Forward BFS from the true sources: cycle members with no path from
    // any source are additionally unreachable (they would never become
    // ready even if the cycle were broken downstream).
    let mut reachable = vec![false; n];
    let mut bfs: VecDeque<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| node.preds.is_empty())
        .map(|(i, _)| i)
        .collect();
    for &i in &bfs {
        if let Some(x) = reachable.get_mut(i) {
            *x = true;
        }
    }
    while let Some(i) = bfs.pop_front() {
        if let Some(node) = nodes.get(i) {
            for &s in &node.succs {
                if let Some(x) = reachable.get_mut(s.index()) {
                    if !*x {
                        *x = true;
                        bfs.push_back(s.index());
                    }
                }
            }
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        if !reachable.get(i).copied().unwrap_or(true) {
            r.push(Diagnostic::new(
                Code::Pas0012,
                loc(src, i),
                format!(
                    "node {} is unreachable from every source node",
                    node_label(i, node)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn valid_graph_is_clean() {
        let g = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("valid segment lowers");
        let r = check_graph(&g, "test");
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn bad_probability_sum_detected() {
        // Deserialize a hand-written graph whose OR probs sum to 0.9 —
        // serde bypasses validation, exactly the path `pas check` guards.
        let json = r#"{"nodes": [
            {"name": "A", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}},
             "preds": [], "succs": [1]},
            {"name": "O", "kind": {"Or": {"probs": [0.3, 0.6]}},
             "preds": [0], "succs": [2, 3]},
            {"name": "B", "kind": {"Computation": {"wcet": 5.0, "acet": 3.0}},
             "preds": [1], "succs": []},
            {"name": "C", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}},
             "preds": [1], "succs": []}
        ]}"#;
        let g: AndOrGraph = serde_json::from_str(json).expect("parses");
        let r = check_graph(&g, "t.json");
        assert_eq!(codes(&r), vec!["PAS0009"]);
        assert!(r.diagnostics[0].message.contains("sum to 0.900000"));
    }

    #[test]
    fn cycle_and_unreachable_detected() {
        let json = r#"{"nodes": [
            {"name": "A", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}},
             "preds": [], "succs": []},
            {"name": "B", "kind": {"Computation": {"wcet": 5.0, "acet": 3.0}},
             "preds": [2], "succs": [2]},
            {"name": "C", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}},
             "preds": [1], "succs": [1]}
        ]}"#;
        let g: AndOrGraph = serde_json::from_str(json).expect("parses");
        let r = check_graph(&g, "t.json");
        // A is also isolated (a warning); the cycle B <-> C is an error
        // and its members are unreachable from the only source.
        assert_eq!(codes(&r), vec!["PAS0013", "PAS0010", "PAS0012", "PAS0012"]);
    }

    #[test]
    fn dangling_edge_masks_topology_checks() {
        let json = r#"{"nodes": [
            {"name": "A", "kind": {"Computation": {"wcet": 4.0, "acet": 2.0}},
             "preds": [], "succs": [7]}
        ]}"#;
        let g: AndOrGraph = serde_json::from_str(json).expect("parses");
        let r = check_graph(&g, "t.json");
        assert_eq!(codes(&r), vec!["PAS0002"]);
    }

    #[test]
    fn empty_graph_detected() {
        let g: AndOrGraph = serde_json::from_str(r#"{"nodes": []}"#).expect("parses");
        assert_eq!(codes(&check_graph(&g, "t.json")), vec!["PAS0001"]);
    }
}
