//! A span-based wall-clock profiler for the offline phase.
//!
//! The simulator's event stream answers "where does the *energy* go";
//! this module answers "where does the *millisecond* go" for the code
//! that runs before any simulation: OR-path enumeration, canonical
//! schedule construction, speed assignment, plan serialization and the
//! PAS04xx re-derivation. It is the scoreboard the sharding work on the
//! ROADMAP reports against.
//!
//! Design constraints, in order:
//!
//! * **Near-zero cost when disabled.** [`span`] is a single relaxed
//!   atomic load returning an inert guard; no clock is read, no string
//!   is built (labels are closures, evaluated only when enabled).
//! * **No output perturbation.** The profiler is a pure side channel:
//!   enabling it must never change a `PlanArtifact` byte or a golden
//!   trace (enforced by property tests at the workspace root).
//! * **Thread-safe.** Spans nest per thread (a thread-local depth
//!   counter) and finished spans land in one global buffer tagged with
//!   a stable per-thread index, so future rayon sharding reports
//!   per-shard spans without API changes.
//!
//! Usage:
//!
//! ```
//! use pas_obs::profile;
//!
//! profile::enable();
//! {
//!     let _outer = profile::span("offline.build");
//!     let _inner = profile::span_with("offline.canonical_schedule", || "ltf".to_string());
//!     // ... timed work ...
//! }
//! let spans = profile::take();
//! profile::disable();
//! assert_eq!(spans.len(), 2);
//! let rendered = profile::render_tree(&spans);
//! assert!(rendered.contains("offline.build"));
//! ```

use serde::Value;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The stable span-name catalog. Every span the workspace emits uses one
/// of these names, and `docs/observability.md` documents each exactly
/// once (enforced by `tests/docs_sync.rs`).
pub mod names {
    /// Root span of `pas plan`: everything between argument validation
    /// and the rendered answer.
    pub const CLI_PLAN: &str = "cli.plan";
    /// Root span of `pas check`: diagnostics plus plan verification.
    pub const CLI_CHECK: &str = "cli.check";
    /// `Setup` construction for one (workload, platform, load) point:
    /// probe plan, deadline derivation and the final offline plan.
    pub const OFFLINE_SETUP: &str = "offline.setup";
    /// The relaxed-deadline probe plan built to measure the critical
    /// path before the real deadline is known.
    pub const OFFLINE_PROBE: &str = "offline.probe_plan";
    /// One `OfflinePlan::build_with_pmp_reserve` call end to end.
    pub const OFFLINE_BUILD: &str = "offline.build";
    /// Round 1: per-section canonical LTF schedules (worst + average).
    pub const OFFLINE_CANONICAL: &str = "offline.canonical_schedule";
    /// The reverse recursion filling `worst_after` / `branch_worst`.
    pub const OFFLINE_REMAINING: &str = "offline.remaining_times";
    /// Round 2: the latest-start-time shift.
    pub const OFFLINE_LST: &str = "offline.lst_shift";
    /// Theorem-1 OR-path enumeration over execution scenarios.
    pub const OFFLINE_ENUMERATE: &str = "offline.enumerate_paths";
    /// Policy instantiation against a finished plan (one per scheme);
    /// hoisted out of Monte-Carlo realization loops so it is counted
    /// once in the offline breakdown, not per run.
    pub const OFFLINE_POLICIES: &str = "offline.policies";
    /// Per-scheme speed-assignment parameter derivation.
    pub const ARTIFACT_SPEEDS: &str = "artifact.speed_assignment";
    /// `PlanArtifact` JSON serialization.
    pub const ARTIFACT_SERIALIZE: &str = "artifact.serialize";
    /// SHA-256 content digest of the serialized artifact.
    pub const ARTIFACT_DIGEST: &str = "artifact.digest";
    /// The full PAS04xx plan re-derivation and comparison in
    /// `pas-analyze`.
    pub const CHECK_VERIFY_PLAN: &str = "check.verify_plan";
    /// The PAS06xx symbolic energy/timing bounds derivation
    /// (`pas check --bounds`), all six schemes over one workload.
    pub const CHECK_BOUNDS: &str = "check.bounds";
    /// `pas serve` request lifecycle: raw-line parse and request-id
    /// minting at ingest.
    pub const REQ_INGEST: &str = "req.ingest";
    /// `pas serve` request lifecycle: time spent queued before a worker
    /// picked the job up.
    pub const REQ_QUEUE_WAIT: &str = "req.queue_wait";
    /// `pas serve` request lifecycle: parameter validation and workload
    /// ingest inside the handler.
    pub const REQ_VALIDATE: &str = "req.validate";
    /// `pas serve` request lifecycle: the content-addressed plan-cache
    /// probe.
    pub const REQ_CACHE_LOOKUP: &str = "req.cache_lookup";
    /// `pas serve` request lifecycle: handler execution (plan derivation,
    /// simulation, or debug fault).
    pub const REQ_EXEC: &str = "req.exec";
    /// `pas serve` request lifecycle: response envelope construction and
    /// reply delivery.
    pub const REQ_RESPOND: &str = "req.respond";

    /// Every span name the workspace emits.
    pub const ALL: &[&str] = &[
        CLI_PLAN,
        CLI_CHECK,
        OFFLINE_SETUP,
        OFFLINE_PROBE,
        OFFLINE_BUILD,
        OFFLINE_CANONICAL,
        OFFLINE_REMAINING,
        OFFLINE_LST,
        OFFLINE_ENUMERATE,
        OFFLINE_POLICIES,
        ARTIFACT_SPEEDS,
        ARTIFACT_SERIALIZE,
        ARTIFACT_DIGEST,
        CHECK_VERIFY_PLAN,
        CHECK_BOUNDS,
        REQ_INGEST,
        REQ_QUEUE_WAIT,
        REQ_VALIDATE,
        REQ_CACHE_LOOKUP,
        REQ_EXEC,
        REQ_RESPOND,
    ];
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, from [`names`].
    pub name: &'static str,
    /// Optional free-form label (scheme name, workload, ...).
    pub detail: Option<String>,
    /// Stable per-thread index (0 is the first thread that profiled).
    pub thread: usize,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: usize,
    /// Start offset in milliseconds since the profiler epoch.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds.
    pub dur_ms: f64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_index() -> usize {
    THREAD_INDEX.with(|idx| match idx.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            idx.set(Some(i));
            i
        }
    })
}

/// Turns span recording on (and pins the epoch on first use).
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns span recording off. Already-collected spans stay until
/// [`take`]n.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Claims the profiler for one session. The profiler is process-global
/// (`enable`/`take` see every thread), so two concurrent users — say a
/// test harness running profiled commands in parallel — would steal
/// each other's spans. Hold the returned guard across the whole
/// `enable()` … `take()` window to serialize sessions; single-session
/// processes may skip it.
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static SESSION: Mutex<()> = Mutex::new(());
    SESSION
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Drains every finished span collected so far, ordered by
/// `(thread, start)` so nesting can be rebuilt.
pub fn take() -> Vec<SpanRecord> {
    let mut records = std::mem::take(
        &mut *RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    records.sort_by(|a, b| {
        a.thread
            .cmp(&b.thread)
            .then(a.start_ms.total_cmp(&b.start_ms))
            .then(a.depth.cmp(&b.depth))
    });
    records
}

/// Opens a span named `name`. The span closes (and is recorded) when
/// the returned guard drops. When profiling is disabled this is one
/// atomic load and returns an inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    open(name, None)
}

/// Opens a span with a lazily-built label — `detail` runs only when
/// profiling is enabled, so hot paths pay nothing for rich labels.
pub fn span_with<F: FnOnce() -> String>(name: &'static str, detail: F) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    open_enabled(name, Some(detail()))
}

fn open(name: &'static str, detail: Option<String>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    open_enabled(name, detail)
}

fn open_enabled(name: &'static str, detail: Option<String>) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            detail,
            thread: thread_index(),
            depth,
            start_ms: epoch().elapsed().as_secs_f64() * 1e3,
            opened: Instant::now(),
        }),
    }
}

struct ActiveSpan {
    name: &'static str,
    detail: Option<String>,
    thread: usize,
    depth: usize,
    start_ms: f64,
    opened: Instant,
}

/// RAII guard returned by [`span`]: records the span on drop.
#[must_use = "a span measures nothing unless the guard lives across the work"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ms = active.opened.elapsed().as_secs_f64() * 1e3;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(SpanRecord {
                name: active.name,
                detail: active.detail,
                thread: active.thread,
                depth: active.depth,
                start_ms: active.start_ms,
                dur_ms,
            });
    }
}

/// A span with its children, rebuilt from the flat record list.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Spans opened while this one was open, on the same thread.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The sum of the direct children's durations (ms).
    pub fn child_ms(&self) -> f64 {
        self.children.iter().map(|c| c.record.dur_ms).sum()
    }
}

/// Rebuilds the per-thread span forest from [`take`]'s flat list.
/// Records must be ordered by `(thread, start)` — [`take`] guarantees
/// this.
pub fn tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let mut thread = usize::MAX;
    fn unwind(stack: &mut Vec<SpanNode>, roots: &mut Vec<SpanNode>, to_depth: usize) {
        while stack.len() > to_depth {
            let done = stack.pop().expect("non-empty stack");
            match stack.last_mut() {
                Some(parent) => parent.children.push(done),
                None => roots.push(done),
            }
        }
    }
    for rec in records {
        if rec.thread != thread {
            unwind(&mut stack, &mut roots, 0);
            thread = rec.thread;
        }
        unwind(&mut stack, &mut roots, rec.depth);
        stack.push(SpanNode {
            record: rec.clone(),
            children: Vec::new(),
        });
    }
    unwind(&mut stack, &mut roots, 0);
    roots
}

/// Renders the span forest as an indented text summary — one line per
/// span with its duration and, for parents, the share covered by
/// children.
pub fn render_tree(records: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    fn render(out: &mut String, node: &SpanNode, indent: usize) {
        let label = match &node.record.detail {
            Some(d) => format!("{} [{d}]", node.record.name),
            None => node.record.name.to_string(),
        };
        let pad = "  ".repeat(indent);
        let _ = write!(
            out,
            "{pad}{label:<width$} {:>10.3} ms",
            node.record.dur_ms,
            width = 44usize.saturating_sub(pad.len())
        );
        if !node.children.is_empty() {
            let _ = write!(out, "  (children {:.3} ms)", node.child_ms());
        }
        let _ = writeln!(out);
        for child in &node.children {
            render(out, child, indent + 1);
        }
    }
    for root in tree(records) {
        render(&mut out, &root, 0);
    }
    out
}

/// Aggregates spans by name: `(name, calls, total_ms)`, sorted by name.
/// This is the deterministic *shape* the bench report records (the
/// times themselves are machine-dependent).
pub fn aggregate(records: &[SpanRecord]) -> Vec<(String, u64, f64)> {
    let mut by_name: std::collections::BTreeMap<&str, (u64, f64)> = Default::default();
    for rec in records {
        let slot = by_name.entry(rec.name).or_insert((0, 0.0));
        slot.0 += 1;
        slot.1 += rec.dur_ms;
    }
    by_name
        .into_iter()
        .map(|(name, (calls, total))| (name.to_string(), calls, total))
        .collect()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ms_to_us(t: f64) -> Value {
    Value::Float(t * 1000.0)
}

/// Renders spans as Chrome trace-event JSON (duration events, one lane
/// per profiled thread), loadable in Perfetto next to the simulator's
/// own traces. Same conventions as [`crate::export::chrome_trace`]:
/// `ts`/`dur` in microseconds, `pid` 0, `displayTimeUnit` ms.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut events = Vec::new();
    let threads: std::collections::BTreeSet<usize> = records.iter().map(|r| r.thread).collect();
    for t in threads {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(t as u64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("offline {t}")))]),
            ),
        ]));
    }
    for rec in records {
        let mut args = vec![("depth", Value::UInt(rec.depth as u64))];
        if let Some(d) = &rec.detail {
            args.push(("detail", Value::Str(d.clone())));
        }
        events.push(obj(vec![
            ("name", Value::Str(rec.name.to_string())),
            ("cat", Value::Str("offline".to_string())),
            ("ph", Value::Str("X".to_string())),
            ("ts", ms_to_us(rec.start_ms)),
            ("dur", ms_to_us(rec.dur_ms)),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(rec.thread as u64)),
            ("args", obj(args)),
        ]));
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("span trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is global state: serialize the tests that toggle it
    // and filter drained spans to the current thread.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        exclusive()
    }

    fn my_spans() -> Vec<SpanRecord> {
        let me = thread_index();
        take().into_iter().filter(|r| r.thread == me).collect()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = locked();
        disable();
        let _ = my_spans();
        {
            let _g = span(names::OFFLINE_BUILD);
        }
        assert!(my_spans().is_empty());
    }

    #[test]
    fn spans_nest_and_rebuild_as_a_tree() {
        let _lock = locked();
        enable();
        let _ = my_spans();
        {
            let _root = span(names::OFFLINE_BUILD);
            {
                let _c1 = span(names::OFFLINE_CANONICAL);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _c2 = span_with(names::OFFLINE_LST, || "round 2".to_string());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let spans = my_spans();
        disable();
        assert_eq!(spans.len(), 3);
        let forest = tree(&spans);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.record.name, names::OFFLINE_BUILD);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].record.detail.as_deref(), Some("round 2"));
        // The root covers its children: children fit inside the root's
        // wall time, and (with only timed work inside) account for most
        // of it.
        assert!(root.record.dur_ms >= root.child_ms() - 1e-6);
        assert!(
            root.record.dur_ms - root.child_ms() < 50.0,
            "root {} ms vs children {} ms",
            root.record.dur_ms,
            root.child_ms()
        );
        let rendered = render_tree(&spans);
        assert!(rendered.contains("offline.build"), "{rendered}");
        assert!(
            rendered.contains("  offline.canonical_schedule"),
            "{rendered}"
        );
        assert!(rendered.contains("(children"), "{rendered}");
    }

    #[test]
    fn aggregate_counts_calls_per_name() {
        let _lock = locked();
        enable();
        let _ = my_spans();
        for _ in 0..3 {
            let _g = span(names::ARTIFACT_DIGEST);
        }
        let spans = my_spans();
        disable();
        let agg = aggregate(&spans);
        let digest = agg
            .iter()
            .find(|(n, _, _)| n == names::ARTIFACT_DIGEST)
            .expect("aggregated");
        assert_eq!(digest.1, 3);
        assert!(digest.2 >= 0.0);
    }

    #[test]
    fn chrome_export_is_valid_trace_json() {
        let _lock = locked();
        enable();
        let _ = my_spans();
        {
            let _g = span_with(names::OFFLINE_ENUMERATE, || "16 paths".to_string());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = my_spans();
        disable();
        let doc = chrome_trace(&spans);
        let v: Value = serde_json::from_str(&doc).expect("parses");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("M")));
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("duration event");
        assert_eq!(
            x.get("name").and_then(Value::as_str),
            Some(names::OFFLINE_ENUMERATE)
        );
        assert!(x.get("ts").and_then(Value::as_f64).is_some());
        assert!(x.get("dur").and_then(Value::as_f64).unwrap_or(-1.0) >= 0.0);
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("detail"))
                .and_then(Value::as_str),
            Some("16 paths")
        );
    }

    #[test]
    fn every_catalog_name_is_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for name in names::ALL {
            assert!(seen.insert(*name), "duplicate span name {name}");
        }
    }
}
