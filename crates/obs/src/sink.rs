//! Streaming sinks: incremental exporters and bounded live aggregates.
//!
//! The [`crate::EventLog`] observer buffers the whole run; everything in
//! this module instead consumes each [`SimEvent`] as it is emitted and
//! keeps O(1) event memory:
//!
//! * [`JsonlSink`] writes one JSON line per event straight into any
//!   [`std::io::Write`] — its output is byte-for-byte the buffered
//!   [`crate::export::to_jsonl`] dump.
//! * [`ChromeSink`] streams a Chrome trace-event document, emitting each
//!   renderable event the moment it arrives and the per-processor lane
//!   metadata at [`ChromeSink::finish`].
//! * [`RingLog`] is the bounded ring/windowed aggregator behind live
//!   summaries: the last `capacity` events plus running per-kind counts.
//! * [`Fanout`] and [`Filtered`] compose observers, so one run can feed a
//!   file sink, a metrics registry and a ledger simultaneously with the
//!   CLI's kind/processor filters applied only where wanted.
//!
//! I/O errors inside `on_event` (which cannot return them) are latched and
//! surfaced by `finish()`; after the first error a sink stops writing.
//! The latch keeps the *first* error only, annotated with the 1-based
//! stream position of the event that failed — later failures (including
//! flush errors at `finish`) never overwrite it, so the surfaced error
//! always names the point where the output actually diverged. A latched
//! sink inside a [`Fanout`] goes quiet without disturbing its siblings:
//! healthy sinks keep streaming every event.

use crate::event::{EventKind, SimEvent};
use crate::export::{chrome_event, thread_metadata};
use crate::observer::Observer;
use andor_graph::NodeId;
use serde::Value;
use std::collections::VecDeque;
use std::io::{self, Write};

/// First-error latch shared by the streaming sinks: records the first
/// I/O failure with the stream position it happened at and ignores every
/// later one.
#[derive(Debug, Default)]
struct ErrorLatch {
    err: Option<io::Error>,
}

impl ErrorLatch {
    /// True once an error has been latched (the sink should go quiet).
    fn is_latched(&self) -> bool {
        self.err.is_some()
    }

    /// Latches `e` with context, unless an earlier error already won.
    /// `event_no` is the 1-based position of the event whose write
    /// failed.
    fn latch(&mut self, event_no: u64, e: io::Error) {
        if self.err.is_none() {
            self.err = Some(io::Error::new(
                e.kind(),
                format!("streaming event #{event_no}: {e}"),
            ));
        }
    }

    /// Takes the latched error, if any.
    fn take(&mut self) -> Option<io::Error> {
        self.err.take()
    }
}

/// Streams events as JSON Lines into a writer, one line per event.
///
/// Feeding it the same stream as [`crate::export::to_jsonl`] produces
/// byte-identical output (the parity is property-tested).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    written: u64,
    err: ErrorLatch,
}

impl<W: Write> JsonlSink<W> {
    /// A sink over `w`. Nothing is written until the first event.
    pub fn new(w: W) -> Self {
        Self {
            w,
            written: 0,
            err: ErrorLatch::default(),
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the writer, or the first latched I/O error
    /// (annotated with the stream position of the event whose write
    /// failed).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.err.is_latched() {
            return;
        }
        let line = serde_json::to_string(event).expect("events serialize");
        match self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            Ok(()) => self.written += 1,
            Err(e) => self.err.latch(self.written + 1, e),
        }
    }
}

/// Streams a Chrome trace-event document into a writer.
///
/// Each renderable event is converted (via [`chrome_event`]) and written
/// as it arrives; [`ChromeSink::finish`] appends the per-processor
/// `thread_name` metadata (legal anywhere in the trace-event format) and
/// closes the document. `name_of` labels tasks, as in
/// [`crate::export::chrome_trace`].
pub struct ChromeSink<W: Write, F: Fn(NodeId) -> String> {
    w: W,
    name_of: F,
    started: bool,
    any: bool,
    procs: usize,
    written: u64,
    err: ErrorLatch,
}

impl<W: Write, F: Fn(NodeId) -> String> ChromeSink<W, F> {
    /// A sink over `w`. Nothing is written until the first event (or
    /// `finish`, which always produces a valid document).
    pub fn new(w: W, name_of: F) -> Self {
        Self {
            w,
            name_of,
            started: false,
            any: false,
            procs: 0,
            written: 0,
            err: ErrorLatch::default(),
        }
    }

    /// Trace-event objects successfully written so far (excluding the
    /// metadata written by `finish`).
    pub fn events_written(&self) -> u64 {
        self.written
    }

    fn write_value(&mut self, v: &Value) -> io::Result<()> {
        if !self.started {
            self.w.write_all(b"{\"traceEvents\":[")?;
            self.started = true;
        }
        if self.any {
            self.w.write_all(b",")?;
        }
        let body = serde_json::to_string(v).expect("trace objects serialize");
        self.w.write_all(body.as_bytes())?;
        self.any = true;
        Ok(())
    }

    /// Writes the lane metadata and the document tail, flushes, and
    /// returns the writer (or the first latched I/O error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        for p in 0..self.procs {
            let meta = thread_metadata(p);
            self.write_value(&meta)?;
        }
        if !self.started {
            self.w.write_all(b"{\"traceEvents\":[")?;
        }
        self.w.write_all(b"],\"displayTimeUnit\":\"ms\"}")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write, F: Fn(NodeId) -> String> Observer for ChromeSink<W, F> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.err.is_latched() {
            return;
        }
        if let Some(p) = event.proc() {
            self.procs = self.procs.max(p + 1);
        }
        if let Some(v) = chrome_event(event, &self.name_of) {
            match self.write_value(&v) {
                Ok(()) => self.written += 1,
                Err(e) => self.err.latch(self.written + 1, e),
            }
        }
    }
}

/// A fixed-capacity sliding window over any stream of items: the last
/// `capacity` items verbatim, plus a running count of everything ever
/// pushed. This is the allocation-bounded core shared by [`RingLog`]
/// (simulation events), the structured logger's in-memory tail
/// ([`crate::log`]) and `pas serve`'s flight recorder — memory stays
/// O(capacity) however long the stream.
#[derive(Debug, Clone)]
pub struct Window<T> {
    cap: usize,
    buf: VecDeque<T>,
    seen: u64,
}

impl<T> Window<T> {
    /// A window holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            cap: capacity.max(1),
            buf: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            seen: 0,
        }
    }

    /// The configured window size.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no item was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Total items pushed over the whole stream.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The highest buffer occupancy reached — `min(seen, capacity)`.
    pub fn peak_occupancy(&self) -> usize {
        (self.seen.min(self.cap as u64)) as usize
    }

    /// Pushes an item, evicting the oldest when the window is full.
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(item);
    }

    /// The retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

/// A bounded window over the stream: the last `capacity` events verbatim,
/// plus running per-kind counts and the latest event time over the
/// *whole* stream. This is the live-summary aggregate for streaming runs
/// — a [`Window`] of events plus the per-kind tallies.
#[derive(Debug, Clone)]
pub struct RingLog {
    win: Window<SimEvent>,
    counts: Vec<u64>,
    end_time: f64,
}

impl RingLog {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            win: Window::new(capacity),
            counts: vec![0; EventKind::ALL.len()],
            end_time: 0.0,
        }
    }

    /// The configured window size.
    pub fn capacity(&self) -> usize {
        self.win.capacity()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.win.len()
    }

    /// True when no event was seen yet.
    pub fn is_empty(&self) -> bool {
        self.win.is_empty()
    }

    /// Total events seen over the whole stream.
    pub fn seen(&self) -> u64 {
        self.win.seen()
    }

    /// The highest buffer occupancy reached — `min(seen, capacity)`, the
    /// quantity `pas bench` records as the peak event memory of a
    /// streaming consumer.
    pub fn peak_occupancy(&self) -> usize {
        self.win.peak_occupancy()
    }

    /// Count of `kind` over the whole stream (not just the window).
    pub fn count(&self, kind: EventKind) -> u64 {
        let idx = EventKind::ALL.iter().position(|k| *k == kind);
        idx.map_or(0, |i| self.counts[i])
    }

    /// Latest event time seen.
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// The retained window, oldest first.
    pub fn window(&self) -> impl Iterator<Item = &SimEvent> {
        self.win.iter()
    }
}

impl Observer for RingLog {
    fn on_event(&mut self, event: &SimEvent) {
        self.end_time = self.end_time.max(event.time());
        if let Some(i) = EventKind::ALL.iter().position(|k| *k == event.kind()) {
            self.counts[i] += 1;
        }
        self.win.push(event.clone());
    }
}

/// Fans each event out to several observers, in order.
#[derive(Default)]
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// An empty fanout.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a sink (builder style).
    pub fn with(mut self, sink: &'a mut dyn Observer) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Observer for Fanout<'_> {
    fn on_event(&mut self, event: &SimEvent) {
        for s in &mut self.sinks {
            s.on_event(event);
        }
    }
}

/// Forwards only events passing a kind/processor filter, counting both
/// sides — the CLI's `--kinds`/`--proc` narrowing for streaming exports.
#[derive(Debug)]
pub struct Filtered<O: Observer> {
    inner: O,
    kinds: Option<Vec<EventKind>>,
    proc: Option<usize>,
    seen: u64,
    passed: u64,
}

impl<O: Observer> Filtered<O> {
    /// Wraps `inner`; `None` filters pass everything.
    pub fn new(inner: O, kinds: Option<Vec<EventKind>>, proc: Option<usize>) -> Self {
        Self {
            inner,
            kinds,
            proc,
            seen: 0,
            passed: 0,
        }
    }

    /// Events observed (before filtering).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events forwarded to the inner sink.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Observer> Observer for Filtered<O> {
    fn on_event(&mut self, event: &SimEvent) {
        self.seen += 1;
        let kind_ok = self
            .kinds
            .as_ref()
            .is_none_or(|ks| ks.contains(&event.kind()));
        let proc_ok = self.proc.is_none_or(|p| event.proc() == Some(p));
        if kind_ok && proc_ok {
            self.passed += 1;
            self.inner.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{chrome_trace, node_label, to_jsonl};
    use crate::observer::EventLog;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::TaskDispatch {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                wcet: 10.0,
                speed: 1.0,
                pmp_ms: 0.0,
                pmp_energy: 0.0,
                pmp_leakage: 0.0,
            },
            SimEvent::TaskComplete {
                t: 20.0,
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                exec_ms: 20.0,
                speed: 0.5,
                energy: 2.5,
                leakage: 0.0,
                recovery_premium: 0.0,
            },
            SimEvent::OrBranchTaken {
                t: 20.0,
                or: NodeId(1),
                branch: 1,
            },
            SimEvent::IdleEnd {
                t: 26.0,
                proc: 1,
                duration_ms: 6.0,
                energy: 0.3,
            },
        ]
    }

    #[test]
    fn jsonl_sink_matches_buffered_export() {
        let events = sample_events();
        let mut sink = JsonlSink::new(Vec::new());
        for ev in &events {
            sink.on_event(ev);
        }
        assert_eq!(sink.events_written(), events.len() as u64);
        let bytes = sink.finish().expect("no I/O error on Vec");
        assert_eq!(String::from_utf8(bytes).unwrap(), to_jsonl(&events));
    }

    #[test]
    fn chrome_sink_emits_the_buffered_objects() {
        let events = sample_events();
        let mut sink = ChromeSink::new(Vec::new(), node_label);
        for ev in &events {
            sink.on_event(ev);
        }
        let streamed = String::from_utf8(sink.finish().expect("finishes")).unwrap();
        let doc: Value = serde_json::from_str(&streamed).expect("valid JSON");
        let list = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        // Same objects as the buffered renderer, metadata at the end
        // instead of the front (both legal placements).
        let buffered: Value =
            serde_json::from_str(&chrome_trace(&events, node_label)).expect("valid JSON");
        let buffered = buffered
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        assert_eq!(list.len(), buffered.len());
        for entry in buffered {
            assert!(list.contains(entry), "missing {entry:?}");
        }
    }

    #[test]
    fn chrome_sink_with_no_events_is_still_valid_json() {
        let sink = ChromeSink::new(Vec::new(), node_label);
        let out = String::from_utf8(sink.finish().expect("finishes")).unwrap();
        let doc: Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Value::as_array)
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn ring_log_is_bounded_but_counts_everything() {
        let mut ring = RingLog::new(2);
        for ev in sample_events() {
            ring.on_event(&ev);
        }
        assert_eq!(ring.seen(), 4);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.peak_occupancy(), 2);
        assert_eq!(ring.count(EventKind::TaskDispatch), 1);
        assert_eq!(ring.count(EventKind::IdleEnd), 1);
        assert!((ring.end_time() - 26.0).abs() < 1e-12);
        // Only the two newest events remain in the window.
        let kinds: Vec<EventKind> = ring.window().map(SimEvent::kind).collect();
        assert_eq!(kinds, vec![EventKind::OrBranchTaken, EventKind::IdleEnd]);
    }

    #[test]
    fn window_evicts_oldest_but_counts_everything() {
        let mut w = Window::new(3);
        assert!(w.is_empty());
        for i in 0..5u32 {
            w.push(i);
        }
        assert_eq!(w.seen(), 5);
        assert_eq!(w.len(), 3);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.peak_occupancy(), 3);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        // Degenerate capacity still holds one item.
        let mut one = Window::new(0);
        one.push('a');
        one.push('b');
        assert_eq!(one.capacity(), 1);
        assert_eq!(one.iter().copied().collect::<Vec<_>>(), vec!['b']);
    }

    #[test]
    fn fanout_and_filter_compose() {
        let mut log = EventLog::new();
        let mut filtered = Filtered::new(
            EventLog::new(),
            Some(vec![EventKind::TaskComplete]),
            Some(0),
        );
        {
            let mut fan = Fanout::new().with(&mut log).with(&mut filtered);
            for ev in sample_events() {
                fan.on_event(&ev);
            }
        }
        assert_eq!(log.len(), 4);
        assert_eq!(filtered.seen(), 4);
        assert_eq!(filtered.passed(), 1);
        assert_eq!(filtered.into_inner().len(), 1);
    }

    /// A fallible-writer test double: every write call consults a script
    /// of planned failures `(call_no, message)` — call numbers are
    /// 1-based over `write` invocations — and succeeds otherwise.
    /// Successful bytes are retained so partial output stays inspectable.
    #[derive(Debug)]
    struct FlakyWriter {
        calls: u32,
        failures: Vec<(u32, &'static str)>,
        ok_bytes: Vec<u8>,
    }

    impl FlakyWriter {
        fn failing_at(failures: Vec<(u32, &'static str)>) -> Self {
            Self {
                calls: 0,
                failures,
                ok_bytes: Vec::new(),
            }
        }
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if let Some((_, msg)) = self.failures.iter().find(|(n, _)| *n == self.calls) {
                Err(io::Error::other(*msg))
            } else {
                self.ok_bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        // One event = one line write + one newline write; failing from
        // call 3 on kills event #2.
        let mut sink = JsonlSink::new(FlakyWriter::failing_at(vec![
            (3, "disk full"),
            (4, "disk full"),
            (5, "disk full"),
        ]));
        for ev in sample_events() {
            sink.on_event(&ev);
        }
        assert_eq!(sink.events_written(), 1);
        assert!(sink.finish().is_err());
    }

    #[test]
    fn latch_reports_the_first_error_with_context() {
        // Two distinct transient failures: only the FIRST must surface,
        // annotated with the stream position of the event that failed.
        let mut sink = JsonlSink::new(FlakyWriter::failing_at(vec![
            (3, "transient EIO"),
            (5, "disk full"),
        ]));
        for ev in sample_events() {
            sink.on_event(&ev);
        }
        // Event 1 streamed (calls 1+2); event 2's line write (call 3)
        // latched; events 3 and 4 were dropped without touching the
        // writer again.
        assert_eq!(sink.events_written(), 1);
        let err = sink.finish().expect_err("latched");
        let msg = err.to_string();
        assert!(msg.contains("event #2"), "context names the event: {msg}");
        assert!(msg.contains("transient EIO"), "first error wins: {msg}");
        assert!(!msg.contains("disk full"), "later error suppressed: {msg}");
    }

    #[test]
    fn chrome_sink_latch_reports_first_error_with_context() {
        // Call 1 writes the document head, call 2 the first trace
        // object; failing call 2 kills trace object #1.
        let mut sink = ChromeSink::new(
            FlakyWriter::failing_at(vec![(2, "quota exceeded")]),
            node_label,
        );
        for ev in sample_events() {
            sink.on_event(&ev);
        }
        assert_eq!(sink.events_written(), 0);
        let err = sink.finish().expect_err("latched");
        let msg = err.to_string();
        assert!(msg.contains("event #1"), "{msg}");
        assert!(msg.contains("quota exceeded"), "{msg}");
    }

    #[test]
    fn fanout_keeps_healthy_sinks_streaming_when_a_sibling_latches() {
        let events = sample_events();
        let mut broken = JsonlSink::new(FlakyWriter::failing_at(vec![(1, "gone")]));
        let mut healthy = JsonlSink::new(Vec::new());
        {
            let mut fan = Fanout::new().with(&mut broken).with(&mut healthy);
            for ev in &events {
                fan.on_event(ev);
            }
        }
        // The broken sibling latched on its very first write...
        assert_eq!(broken.events_written(), 0);
        assert!(broken.finish().is_err());
        // ...while the healthy sink streamed the entire run unharmed.
        assert_eq!(healthy.events_written(), events.len() as u64);
        let bytes = healthy.finish().expect("no I/O error on Vec");
        assert_eq!(String::from_utf8(bytes).unwrap(), to_jsonl(&events));
    }
}
