#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # pas-obs — observability for the AND/OR scheduling stack
//!
//! The engine in `mp-sim` computes energy and timing as end-of-run
//! aggregates; this crate makes the *path* to those aggregates visible.
//! It defines:
//!
//! * [`SimEvent`] — a typed event stream covering every schedule action
//!   the engine takes (dispatches, completions, speed changes, slack
//!   reclamation, OR branching, speculation updates, fault
//!   injection/detection/recovery, idle windows). Every event that costs
//!   energy carries its exact attribution, split into dynamic and leakage
//!   components, so downstream accounting is pure summation.
//! * [`Observer`] — the sink trait the engine feeds. Wiring is
//!   zero-overhead when disabled: without an observer (and outside debug
//!   builds) the engine skips event construction entirely.
//! * [`EventLog`] — the trivial record-everything observer.
//! * [`MetricsRegistry`] — counters, gauges and time-weighted histograms
//!   derived from the stream (speed-change counts, slack-reclamation
//!   totals, per-processor busy/idle time, fault tallies).
//! * [`EnergyLedger`] — attributes every joule to
//!   {busy, idle, speed-change overhead, leakage, fault recovery} and
//!   checks the total against `RunResult::total_energy()` to within
//!   1e-9 relative error. The engine enforces this invariant on every
//!   debug-build run.
//! * [`SectionedLedger`] — the same attribution sliced per program
//!   section / OR branch taken, segmented by the
//!   [`SimEvent::OrBranchTaken`] boundaries in the stream; slices sum to
//!   the global total within the same tolerance.
//! * [`export`] — JSONL event dumps, Chrome trace-event / Perfetto JSON,
//!   and CSV metrics.
//! * [`profile`] — a span-based wall-clock profiler for the offline
//!   phase (`pas plan --profile`), with its own Chrome-trace exporter.
//! * [`log`] — a process-global structured JSONL logger (levels,
//!   correlation ids, bounded in-memory ring) behind the same
//!   disabled-by-default gate as the profiler; `pas serve --log` wires
//!   it.
//! * streaming sinks ([`JsonlSink`], [`ChromeSink`], [`RingLog`],
//!   [`Fanout`], [`Filtered`]) — incremental consumers with O(1) event
//!   memory, for runs too long to buffer — all sharing the bounded
//!   [`Window`] ring.
//!
//! The crate is deliberately independent of the engine: events are plain
//! data, so exporters and accounting can run in-process (streaming) or
//! after the fact from a serialized log.
//!
//! # Examples
//!
//! Events are plain data — any [`Observer`] can be driven by hand, and
//! the derived views (registry, ledger) are pure summation over the
//! stream:
//!
//! ```
//! use andor_graph::NodeId;
//! use pas_obs::{EnergyLedger, MetricsRegistry, Observer, SimEvent};
//!
//! let events = [
//!     SimEvent::TaskDispatch {
//!         t: 0.0, node: NodeId(0), proc: 0, wcet: 8.0, speed: 1.0,
//!         pmp_ms: 0.0, pmp_energy: 0.0, pmp_leakage: 0.0,
//!     },
//!     SimEvent::TaskComplete {
//!         t: 5.0, node: NodeId(0), proc: 0, start: 0.0, exec_ms: 5.0,
//!         speed: 1.0, energy: 5.0, leakage: 0.0, recovery_premium: 0.0,
//!     },
//! ];
//! let mut registry = MetricsRegistry::new();
//! let mut ledger = EnergyLedger::new();
//! for e in &events {
//!     registry.on_event(e);
//!     ledger.on_event(e);
//! }
//! assert_eq!(registry.counter("tasks.dispatched"), 1);
//! assert_eq!(ledger.total(), 5.0);
//! assert!(ledger.verify(5.0).is_ok());
//! ```
//!
//! Round-tripping a stream through the JSONL export:
//!
//! ```
//! use pas_obs::export;
//! # use andor_graph::NodeId;
//! # use pas_obs::SimEvent;
//! # let events = vec![SimEvent::SlackReclaimed {
//! #     t: 0.0, node: NodeId(0), proc: 0, reclaimed_ms: 2.0,
//! # }];
//! let text = export::to_jsonl(&events);
//! assert_eq!(export::from_jsonl(&text).unwrap(), events);
//! ```

mod event;
mod ledger;
mod metrics;
mod observer;
mod sink;

pub mod export;
pub mod log;
pub mod profile;

pub use event::{EventKind, FaultKind, SimEvent};
pub use ledger::{EnergyLedger, LedgerMismatch, SectionKey, SectionSlice, SectionedLedger};
pub use metrics::{MetricsRegistry, TimeWeightedHist};
pub use observer::{EventLog, NullObserver, Observer};
pub use sink::{ChromeSink, Fanout, Filtered, JsonlSink, RingLog, Window};

/// Relative tolerance of the ledger-vs-meter invariant: the ledger total
/// must match the engine's `total_energy()` to within `LEDGER_TOLERANCE *
/// max(1, |total|)` (the two sum the same terms in different orders, so
/// only rounding noise may separate them).
pub const LEDGER_TOLERANCE: f64 = 1e-9;
