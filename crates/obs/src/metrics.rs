//! Counters, gauges and time-weighted histograms over the event stream.

use crate::event::{FaultKind, SimEvent};
use crate::observer::Observer;
use std::collections::BTreeMap;

/// A histogram of a piecewise-constant signal, weighted by how long the
/// signal held each value. Used for per-processor speed profiles: the
/// time-weighted mean of the busy-speed histogram is the average speed
/// the processor did useful work at.
#[derive(Debug, Default, Clone)]
pub struct TimeWeightedHist {
    spans: Vec<(f64, f64)>,   // (value, duration)
    open: Option<(f64, f64)>, // (since, value)
}

impl TimeWeightedHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a closed span: the signal held `value` for `duration`.
    pub fn add_span(&mut self, value: f64, duration: f64) {
        if duration > 0.0 {
            self.spans.push((value, duration));
        }
    }

    /// Samples the signal at time `t`: closes the open span (if any) at
    /// `t` and opens a new one holding `value`.
    pub fn sample(&mut self, t: f64, value: f64) {
        if let Some((since, v)) = self.open.take() {
            self.add_span(v, t - since);
        }
        self.open = Some((t, value));
    }

    /// Closes the open span (if any) at time `t`.
    pub fn finish(&mut self, t: f64) {
        if let Some((since, v)) = self.open.take() {
            self.add_span(v, t - since);
        }
    }

    /// The recorded `(value, duration)` spans.
    pub fn spans(&self) -> &[(f64, f64)] {
        &self.spans
    }

    /// Total recorded duration.
    pub fn total_time(&self) -> f64 {
        self.spans.iter().map(|(_, d)| d).sum()
    }

    /// Time-weighted mean value (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        self.spans.iter().map(|(v, d)| v * d).sum::<f64>() / total
    }

    /// Total duration the signal held `value` (within `1e-12`).
    pub fn time_at(&self, value: f64) -> f64 {
        self.spans
            .iter()
            .filter(|(v, _)| (v - value).abs() < 1e-12)
            .map(|(_, d)| d)
            .sum()
    }
}

/// A registry of named metrics derived from the event stream.
///
/// Feed it as an [`Observer`] during a run, or build it after the fact
/// with [`MetricsRegistry::from_events`] — both produce identical
/// contents, because events are the single source of truth.
///
/// Metric names are stable strings: `events.<kind>` counters tally the
/// stream itself, and the derived families are
/// `speed_changes.{total,failed,p<i>}`,
/// `slack_reclaimed_ms.{total,p<i>}`, `faults.{injected,detected,
/// recovered}` (+ `faults.injected.<kind>`), `tasks.dispatched`,
/// `or_branches`, `busy_ms.p<i>`, `idle_ms.p<i>`,
/// `energy.{idle,recovery}` and the `busy_speed.p<i>` histograms.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, TimeWeightedHist>,
    end_time: f64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a registry from a recorded stream.
    pub fn from_events(events: &[SimEvent]) -> Self {
        let mut reg = Self::new();
        for ev in events {
            reg.on_event(ev);
        }
        reg
    }

    /// Increments counter `name` by `by`.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Adds `by` to gauge `name`.
    pub fn add_gauge(&mut self, name: &str, by: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The histogram `name`, creating it empty on first use.
    pub fn hist_mut(&mut self, name: &str) -> &mut TimeWeightedHist {
        self.hists.entry(name.to_string()).or_default()
    }

    /// Counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order — the iteration behind `pas serve`'s
    /// health snapshot and the CSV export.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauge `name` (0 when never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram `name`, if it exists.
    pub fn hist(&self, name: &str) -> Option<&TimeWeightedHist> {
        self.hists.get(name)
    }

    /// Latest event time seen (the run horizon once the engine's final
    /// idle windows are in).
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// Total voltage/frequency transitions commanded, including recovery
    /// escalations — comparable to the engine's
    /// `EnergyMeter::speed_changes()` (Table 2's per-scheme counts).
    pub fn speed_changes(&self) -> u64 {
        self.counter("speed_changes.total") + self.counter("faults.recovered")
    }

    /// Total slack turned into stretched execution (ms).
    pub fn slack_reclaimed_ms(&self) -> f64 {
        self.gauge("slack_reclaimed_ms.total")
    }

    /// Renders every metric as CSV (`metric,kind,value`), histograms as
    /// their time-weighted mean and total duration.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("{name},counter,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name},gauge,{v}\n"));
        }
        for (name, h) in &self.hists {
            out.push_str(&format!("{name}.mean,hist,{}\n", h.mean()));
            out.push_str(&format!("{name}.time,hist,{}\n", h.total_time()));
        }
        out
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, event: &SimEvent) {
        self.end_time = self.end_time.max(event.time());
        self.inc(&format!("events.{}", event.kind().name()), 1);
        match event {
            SimEvent::TaskDispatch { .. } => self.inc("tasks.dispatched", 1),
            SimEvent::TaskComplete {
                proc,
                exec_ms,
                speed,
                ..
            } => {
                self.add_gauge(&format!("busy_ms.p{proc}"), *exec_ms);
                let speed = *speed;
                let exec_ms = *exec_ms;
                self.hist_mut(&format!("busy_speed.p{proc}"))
                    .add_span(speed, exec_ms);
            }
            SimEvent::SpeedChange { proc, failed, .. } => {
                self.inc("speed_changes.total", 1);
                self.inc(&format!("speed_changes.p{proc}"), 1);
                if *failed {
                    self.inc("speed_changes.failed", 1);
                }
            }
            SimEvent::SlackReclaimed {
                proc, reclaimed_ms, ..
            } => {
                self.add_gauge("slack_reclaimed_ms.total", *reclaimed_ms);
                self.add_gauge(&format!("slack_reclaimed_ms.p{proc}"), *reclaimed_ms);
            }
            SimEvent::OrBranchTaken { .. } => self.inc("or_branches", 1),
            SimEvent::SpeculationUpdate { spec_speed, .. } => {
                self.set_gauge("speculation.last_speed", *spec_speed);
            }
            SimEvent::FaultInjected { kind, .. } => {
                self.inc("faults.injected", 1);
                let sub = match kind {
                    FaultKind::Overrun { .. } => "overrun",
                    FaultKind::SpeedFailure => "speed-failure",
                    FaultKind::Stall { .. } => "stall",
                };
                self.inc(&format!("faults.injected.{sub}"), 1);
            }
            SimEvent::FaultDetected { .. } => self.inc("faults.detected", 1),
            SimEvent::FaultRecovered {
                energy, leakage, ..
            } => {
                self.inc("faults.recovered", 1);
                self.add_gauge("energy.recovery", energy + leakage);
            }
            SimEvent::IdleStart { .. } => {}
            SimEvent::IdleEnd {
                proc,
                duration_ms,
                energy,
                ..
            } => {
                self.add_gauge(&format!("idle_ms.p{proc}"), *duration_ms);
                self.add_gauge("energy.idle", *energy);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::NodeId;

    #[test]
    fn hist_mean_is_time_weighted() {
        let mut h = TimeWeightedHist::new();
        h.add_span(1.0, 1.0);
        h.add_span(0.5, 3.0);
        assert!((h.mean() - (1.0 + 1.5) / 4.0).abs() < 1e-12);
        assert!((h.total_time() - 4.0).abs() < 1e-12);
        assert!((h.time_at(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hist_sample_closes_open_spans() {
        let mut h = TimeWeightedHist::new();
        h.sample(0.0, 1.0);
        h.sample(2.0, 0.5);
        h.finish(6.0);
        assert!((h.time_at(1.0) - 2.0).abs() < 1e-12);
        assert!((h.time_at(0.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn registry_tallies_events() {
        let events = vec![
            SimEvent::SpeedChange {
                t: 0.0,
                proc: 0,
                from_speed: 1.0,
                to_speed: 0.5,
                duration_ms: 0.0,
                energy: 0.0,
                leakage: 0.0,
                failed: false,
            },
            SimEvent::SlackReclaimed {
                t: 0.0,
                node: NodeId(1),
                proc: 0,
                reclaimed_ms: 4.0,
            },
            SimEvent::SpeedChange {
                t: 5.0,
                proc: 1,
                from_speed: 0.5,
                to_speed: 1.0,
                duration_ms: 0.0,
                energy: 0.0,
                leakage: 0.0,
                failed: true,
            },
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.speed_changes(), 2);
        assert_eq!(reg.counter("speed_changes.p0"), 1);
        assert_eq!(reg.counter("speed_changes.failed"), 1);
        assert!((reg.slack_reclaimed_ms() - 4.0).abs() < 1e-12);
        assert_eq!(reg.counter("events.speed-change"), 2);
        assert!((reg.end_time() - 5.0).abs() < 1e-12);
        let csv = reg.to_csv();
        assert!(csv.starts_with("metric,kind,value\n"), "{csv}");
        assert!(csv.contains("speed_changes.total,counter,2"), "{csv}");
    }
}
