//! The typed simulation event stream.

use andor_graph::NodeId;
use serde::{Deserialize, Serialize};

/// The category of an injected fault, as carried by
/// [`SimEvent::FaultInjected`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The task's execution time was forced to `wcet * factor`.
    Overrun {
        /// Multiple of the worst case the task actually ran for.
        factor: f64,
    },
    /// A commanded voltage/frequency transition paid its time and energy
    /// but silently left the operating point unchanged.
    SpeedFailure,
    /// The processor hung for `ms` milliseconds (drawing idle power)
    /// before dispatching the task.
    Stall {
        /// Stall duration (ms).
        ms: f64,
    },
}

/// One schedule action taken by the engine.
///
/// Times are milliseconds on the simulation clock; energies are the
/// engine's normalized units (max dynamic power × ms). Every event that
/// costs energy carries its full attribution, with the dynamic component
/// and the static/leakage component (`rho × active time`) split out, so
/// an [`crate::EnergyLedger`] reconstructs `total_energy()` by summation
/// alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A computation task was handed to a processor. Emitted at the
    /// dispatch time, before any stall, speed change or execution; the
    /// PMP (power-management-point) bookkeeping the policy ran at
    /// dispatch is costed here.
    TaskDispatch {
        /// Dispatch time (ms).
        t: f64,
        /// The task.
        node: NodeId,
        /// Processor index it was assigned to.
        proc: usize,
        /// The task's worst-case execution time at full speed (ms).
        wcet: f64,
        /// Normalized speed the processor was running when dispatched
        /// (before any transition commanded for this task).
        speed: f64,
        /// Time spent computing the policy's speed decision (ms; zero
        /// when the policy skipped the PMP).
        pmp_ms: f64,
        /// Dynamic energy of the PMP window.
        pmp_energy: f64,
        /// Leakage energy of the PMP window.
        pmp_leakage: f64,
    },
    /// A computation task finished executing.
    TaskComplete {
        /// Completion time (ms).
        t: f64,
        /// The task.
        node: NodeId,
        /// Processor index it ran on.
        proc: usize,
        /// Dispatch time (ms) — includes subsequent overhead windows.
        start: f64,
        /// Wall-clock execution time (ms) at the executed speed.
        exec_ms: f64,
        /// Normalized speed it executed at.
        speed: f64,
        /// Dynamic energy of the execution window.
        energy: f64,
        /// Leakage energy of the execution window.
        leakage: f64,
        /// Portion of `energy` above what the policy requested, paid
        /// because fault containment forced a higher operating point.
        /// Attributed to recovery, not busy work.
        recovery_premium: f64,
    },
    /// A voltage/frequency transition was commanded.
    SpeedChange {
        /// Time the transition began (ms).
        t: f64,
        /// Processor index.
        proc: usize,
        /// Normalized speed before the transition.
        from_speed: f64,
        /// Normalized speed commanded.
        to_speed: f64,
        /// Transition latency (ms).
        duration_ms: f64,
        /// Dynamic energy of the transition window.
        energy: f64,
        /// Leakage energy of the transition window.
        leakage: f64,
        /// True when an injected speed-change failure left the operating
        /// point at `from_speed` despite paying the overhead.
        failed: bool,
    },
    /// A task was dispatched below full speed: the policy turned slack
    /// into stretched execution. `reclaimed_ms` is the extra wall-clock
    /// the task may use versus running its worst case at full speed.
    SlackReclaimed {
        /// Dispatch time (ms).
        t: f64,
        /// The task.
        node: NodeId,
        /// Processor index.
        proc: usize,
        /// `wcet / speed - wcet` (ms).
        reclaimed_ms: f64,
    },
    /// An OR node fired and selected a branch.
    OrBranchTaken {
        /// Fire time (ms) — all processors synchronize here.
        t: f64,
        /// The OR node.
        or: NodeId,
        /// Index of the branch taken.
        branch: usize,
    },
    /// A speculative policy (re)computed its speculated speed.
    SpeculationUpdate {
        /// Time of the update (ms); `0` for the initial speculation.
        t: f64,
        /// The speculated normalized speed.
        spec_speed: f64,
    },
    /// A fault from the run's [fault set](../mp_sim/struct.FaultSet.html)
    /// was injected at this task's dispatch.
    FaultInjected {
        /// Dispatch time of the affected task (ms).
        t: f64,
        /// The affected task.
        node: NodeId,
        /// Processor index.
        proc: usize,
        /// What was injected.
        kind: FaultKind,
    },
    /// The engine's overrun detector tripped at a task's completion.
    FaultDetected {
        /// Detection time (= the task's completion, ms).
        t: f64,
        /// The overrunning task.
        node: NodeId,
        /// Processor index.
        proc: usize,
    },
    /// Recovery escalated a processor to the maximum operating point
    /// (the escalation transition's cost is attributed to recovery).
    FaultRecovered {
        /// Time the escalation transition began (ms).
        t: f64,
        /// Processor index.
        proc: usize,
        /// Dynamic energy of the escalation transition.
        energy: f64,
        /// Leakage energy of the escalation transition.
        leakage: f64,
    },
    /// A processor went idle (no ready work, or stalled by a fault).
    IdleStart {
        /// Time the idle window opened (ms).
        t: f64,
        /// Processor index.
        proc: usize,
    },
    /// The idle window closed; its energy is costed here.
    IdleEnd {
        /// Time the idle window closed (ms).
        t: f64,
        /// Processor index.
        proc: usize,
        /// Window length (ms).
        duration_ms: f64,
        /// Idle energy of the window (idle power × duration).
        energy: f64,
    },
}

/// The discriminant of a [`SimEvent`], for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// [`SimEvent::TaskDispatch`].
    TaskDispatch,
    /// [`SimEvent::TaskComplete`].
    TaskComplete,
    /// [`SimEvent::SpeedChange`].
    SpeedChange,
    /// [`SimEvent::SlackReclaimed`].
    SlackReclaimed,
    /// [`SimEvent::OrBranchTaken`].
    OrBranchTaken,
    /// [`SimEvent::SpeculationUpdate`].
    SpeculationUpdate,
    /// [`SimEvent::FaultInjected`].
    FaultInjected,
    /// [`SimEvent::FaultDetected`].
    FaultDetected,
    /// [`SimEvent::FaultRecovered`].
    FaultRecovered,
    /// [`SimEvent::IdleStart`].
    IdleStart,
    /// [`SimEvent::IdleEnd`].
    IdleEnd,
}

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 11] = [
        EventKind::TaskDispatch,
        EventKind::TaskComplete,
        EventKind::SpeedChange,
        EventKind::SlackReclaimed,
        EventKind::OrBranchTaken,
        EventKind::SpeculationUpdate,
        EventKind::FaultInjected,
        EventKind::FaultDetected,
        EventKind::FaultRecovered,
        EventKind::IdleStart,
        EventKind::IdleEnd,
    ];

    /// The stable kebab-case name (CLI filter syntax, metric names).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskDispatch => "dispatch",
            EventKind::TaskComplete => "complete",
            EventKind::SpeedChange => "speed-change",
            EventKind::SlackReclaimed => "slack",
            EventKind::OrBranchTaken => "or-branch",
            EventKind::SpeculationUpdate => "speculation",
            EventKind::FaultInjected => "fault-injected",
            EventKind::FaultDetected => "fault-detected",
            EventKind::FaultRecovered => "fault-recovered",
            EventKind::IdleStart => "idle-start",
            EventKind::IdleEnd => "idle-end",
        }
    }

    /// Parses a kind from its [`EventKind::name`].
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl SimEvent {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            SimEvent::TaskDispatch { .. } => EventKind::TaskDispatch,
            SimEvent::TaskComplete { .. } => EventKind::TaskComplete,
            SimEvent::SpeedChange { .. } => EventKind::SpeedChange,
            SimEvent::SlackReclaimed { .. } => EventKind::SlackReclaimed,
            SimEvent::OrBranchTaken { .. } => EventKind::OrBranchTaken,
            SimEvent::SpeculationUpdate { .. } => EventKind::SpeculationUpdate,
            SimEvent::FaultInjected { .. } => EventKind::FaultInjected,
            SimEvent::FaultDetected { .. } => EventKind::FaultDetected,
            SimEvent::FaultRecovered { .. } => EventKind::FaultRecovered,
            SimEvent::IdleStart { .. } => EventKind::IdleStart,
            SimEvent::IdleEnd { .. } => EventKind::IdleEnd,
        }
    }

    /// The simulation time the event is stamped with (ms).
    pub fn time(&self) -> f64 {
        match self {
            SimEvent::TaskDispatch { t, .. }
            | SimEvent::TaskComplete { t, .. }
            | SimEvent::SpeedChange { t, .. }
            | SimEvent::SlackReclaimed { t, .. }
            | SimEvent::OrBranchTaken { t, .. }
            | SimEvent::SpeculationUpdate { t, .. }
            | SimEvent::FaultInjected { t, .. }
            | SimEvent::FaultDetected { t, .. }
            | SimEvent::FaultRecovered { t, .. }
            | SimEvent::IdleStart { t, .. }
            | SimEvent::IdleEnd { t, .. } => *t,
        }
    }

    /// The processor the event concerns, if it is processor-scoped
    /// (section-boundary and speculation events are global).
    pub fn proc(&self) -> Option<usize> {
        match self {
            SimEvent::TaskDispatch { proc, .. }
            | SimEvent::TaskComplete { proc, .. }
            | SimEvent::SpeedChange { proc, .. }
            | SimEvent::SlackReclaimed { proc, .. }
            | SimEvent::FaultInjected { proc, .. }
            | SimEvent::FaultDetected { proc, .. }
            | SimEvent::FaultRecovered { proc, .. }
            | SimEvent::IdleStart { proc, .. }
            | SimEvent::IdleEnd { proc, .. } => Some(*proc),
            SimEvent::OrBranchTaken { .. } | SimEvent::SpeculationUpdate { .. } => None,
        }
    }

    /// Total energy this event attributes (dynamic + leakage), zero for
    /// purely informational events.
    pub fn energy(&self) -> f64 {
        match self {
            SimEvent::TaskDispatch {
                pmp_energy,
                pmp_leakage,
                ..
            } => pmp_energy + pmp_leakage,
            SimEvent::TaskComplete {
                energy, leakage, ..
            }
            | SimEvent::SpeedChange {
                energy, leakage, ..
            }
            | SimEvent::FaultRecovered {
                energy, leakage, ..
            } => energy + leakage,
            SimEvent::IdleEnd { energy, .. } => *energy,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn accessors_cover_every_variant() {
        let ev = SimEvent::OrBranchTaken {
            t: 3.0,
            or: NodeId(7),
            branch: 1,
        };
        assert_eq!(ev.kind(), EventKind::OrBranchTaken);
        assert_eq!(ev.time(), 3.0);
        assert_eq!(ev.proc(), None);
        assert_eq!(ev.energy(), 0.0);

        let ev = SimEvent::IdleEnd {
            t: 5.0,
            proc: 2,
            duration_ms: 4.0,
            energy: 0.2,
        };
        assert_eq!(ev.proc(), Some(2));
        assert!((ev.energy() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn event_energy_sums_dynamic_and_leakage() {
        let ev = SimEvent::SpeedChange {
            t: 1.0,
            proc: 0,
            from_speed: 1.0,
            to_speed: 0.5,
            duration_ms: 0.1,
            energy: 0.1,
            leakage: 0.02,
            failed: false,
        };
        assert!((ev.energy() - 0.12).abs() < 1e-15);
    }
}
