//! The observer trait and basic sinks.

use crate::event::SimEvent;

/// A sink for [`SimEvent`]s.
///
/// The engine calls [`Observer::on_event`] synchronously at each schedule
/// action, in emission order (non-decreasing event time per processor).
/// Implementations must not assume a global total order across
/// processors: events of concurrent dispatches interleave.
pub trait Observer {
    /// Called once per event.
    fn on_event(&mut self, event: &SimEvent);
}

/// An observer that discards everything (useful to benchmark the
/// emission overhead itself).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &SimEvent) {}
}

/// Records every event in order.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<SimEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Consumes the log, returning the events.
    pub fn into_events(self) -> Vec<SimEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.on_event(&SimEvent::IdleStart { t: 0.0, proc: 0 });
        log.on_event(&SimEvent::IdleEnd {
            t: 2.0,
            proc: 0,
            duration_ms: 2.0,
            energy: 0.1,
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].kind(), EventKind::IdleStart);
        assert_eq!(log.into_events()[1].kind(), EventKind::IdleEnd);
    }

    #[test]
    fn null_observer_is_a_sink() {
        let mut null = NullObserver;
        null.on_event(&SimEvent::IdleStart { t: 0.0, proc: 0 });
    }
}
