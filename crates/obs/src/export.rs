//! Export layers over a recorded event stream: JSONL dumps, Chrome
//! trace-event (Perfetto) JSON, CSV metrics.

use crate::event::{FaultKind, SimEvent};
use crate::metrics::MetricsRegistry;
use andor_graph::NodeId;
use serde::Value;

/// Serializes a stream as JSON Lines — one event object per line, in
/// emission order. The inverse of [`from_jsonl`].
pub fn to_jsonl(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("events serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines dump back into events (blank lines are skipped).
pub fn from_jsonl(s: &str) -> Result<Vec<SimEvent>, serde_json::Error> {
    s.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Renders the registry derived from `events` as CSV.
pub fn metrics_csv(events: &[SimEvent]) -> String {
    MetricsRegistry::from_events(events).to_csv()
}

/// The fallback task label when no graph is at hand: `n<index>`.
pub fn node_label(node: NodeId) -> String {
    format!("n{}", node.0)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ms_to_us(t: f64) -> Value {
    Value::Float(t * 1000.0)
}

fn duration_event(
    name: String,
    cat: &str,
    start_ms: f64,
    dur_ms: f64,
    proc: usize,
    args: Vec<(&str, Value)>,
) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", ms_to_us(start_ms)),
        ("dur", ms_to_us(dur_ms)),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(proc as u64)),
        ("args", obj(args)),
    ])
}

fn instant_event(name: String, cat: &str, t_ms: f64, proc: Option<usize>) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("ts", ms_to_us(t_ms)),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(proc.unwrap_or(0) as u64)),
        (
            "s",
            Value::Str(if proc.is_some() { "t" } else { "g" }.to_string()),
        ),
    ])
}

fn counter_event(name: String, t_ms: f64, key: &str, value: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str("C".to_string())),
        ("ts", ms_to_us(t_ms)),
        ("pid", Value::UInt(0)),
        ("args", obj(vec![(key, Value::Float(value))])),
    ])
}

/// The `thread_name` metadata event naming processor `p`'s lane.
pub fn thread_metadata(p: usize) -> Value {
    obj(vec![
        ("name", Value::Str("thread_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(p as u64)),
        ("args", obj(vec![("name", Value::Str(format!("cpu {p}")))])),
    ])
}

/// Converts one event into its Chrome trace-event object, or `None` for
/// kinds the Chrome rendering elides (dispatches, slack reclamation, idle
/// starts — their information is carried by the matching completion/idle
/// window). Shared by the buffered [`chrome_trace`] renderer and the
/// streaming [`crate::ChromeSink`], so the two emit identical objects.
pub fn chrome_event<F: Fn(NodeId) -> String + ?Sized>(ev: &SimEvent, name_of: &F) -> Option<Value> {
    match ev {
        SimEvent::TaskComplete {
            t,
            node,
            proc,
            start,
            speed,
            energy,
            leakage,
            ..
        } => Some(duration_event(
            name_of(*node),
            "task",
            *start,
            t - start,
            *proc,
            vec![
                ("speed", Value::Float(*speed)),
                ("energy", Value::Float(energy + leakage)),
            ],
        )),
        SimEvent::IdleEnd {
            t,
            proc,
            duration_ms,
            energy,
        } => Some(duration_event(
            "idle".to_string(),
            "idle",
            t - duration_ms,
            *duration_ms,
            *proc,
            vec![("energy", Value::Float(*energy))],
        )),
        SimEvent::SpeedChange {
            t, proc, to_speed, ..
        } => Some(counter_event(
            format!("speed.p{proc}"),
            *t,
            "speed",
            *to_speed,
        )),
        SimEvent::OrBranchTaken { t, or, branch } => Some(instant_event(
            format!("{} -> branch {branch}", name_of(*or)),
            "branch",
            *t,
            None,
        )),
        SimEvent::SpeculationUpdate { t, spec_speed } => Some(counter_event(
            "speculation".to_string(),
            *t,
            "spec_speed",
            *spec_speed,
        )),
        SimEvent::FaultInjected {
            t,
            node,
            proc,
            kind,
        } => {
            let label = match kind {
                FaultKind::Overrun { factor } => {
                    format!("fault: overrun x{factor} @ {}", name_of(*node))
                }
                FaultKind::SpeedFailure => {
                    format!("fault: speed failure @ {}", name_of(*node))
                }
                FaultKind::Stall { ms } => {
                    format!("fault: stall {ms}ms @ {}", name_of(*node))
                }
            };
            Some(instant_event(label, "fault", *t, Some(*proc)))
        }
        SimEvent::FaultDetected { t, node, proc } => Some(instant_event(
            format!("overrun detected @ {}", name_of(*node)),
            "fault",
            *t,
            Some(*proc),
        )),
        SimEvent::FaultRecovered { t, proc, .. } => Some(instant_event(
            "recovery: escalate to f_max".to_string(),
            "fault",
            *t,
            Some(*proc),
        )),
        SimEvent::TaskDispatch { .. }
        | SimEvent::SlackReclaimed { .. }
        | SimEvent::IdleStart { .. } => None,
    }
}

/// Renders a stream as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`. Task executions and idle windows become duration
/// ("X") events on one thread lane per processor, speed changes become
/// counter ("C") tracks, and branch/speculation/fault events become
/// instants. `name_of` labels tasks (pass the graph's node names, or
/// [`node_label`]).
pub fn chrome_trace<F: Fn(NodeId) -> String>(events: &[SimEvent], name_of: F) -> String {
    let mut trace_events = Vec::new();
    // Name the per-processor lanes first (metadata events).
    let procs = events
        .iter()
        .filter_map(SimEvent::proc)
        .max()
        .map(|p| p + 1);
    for p in 0..procs.unwrap_or(0) {
        trace_events.push(thread_metadata(p));
    }
    trace_events.extend(events.iter().filter_map(|ev| chrome_event(ev, &name_of)));
    let doc = obj(vec![
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("trace document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::TaskDispatch {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                wcet: 10.0,
                speed: 1.0,
                pmp_ms: 0.0,
                pmp_energy: 0.0,
                pmp_leakage: 0.0,
            },
            SimEvent::SpeedChange {
                t: 0.0,
                proc: 0,
                from_speed: 1.0,
                to_speed: 0.5,
                duration_ms: 0.1,
                energy: 0.1,
                leakage: 0.0,
                failed: false,
            },
            SimEvent::SlackReclaimed {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                reclaimed_ms: 10.0,
            },
            SimEvent::TaskComplete {
                t: 20.1,
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                exec_ms: 20.0,
                speed: 0.5,
                energy: 2.5,
                leakage: 0.0,
                recovery_premium: 0.0,
            },
            SimEvent::OrBranchTaken {
                t: 20.1,
                or: NodeId(1),
                branch: 0,
            },
            SimEvent::FaultInjected {
                t: 20.1,
                node: NodeId(2),
                proc: 1,
                kind: FaultKind::Overrun { factor: 1.5 },
            },
            SimEvent::IdleEnd {
                t: 26.0,
                proc: 1,
                duration_ms: 5.9,
                energy: 0.295,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let dump = to_jsonl(&events);
        assert_eq!(dump.lines().count(), events.len());
        let back = from_jsonl(&dump).expect("jsonl parses");
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let events = sample_events();
        let dump = format!("\n{}\n\n", to_jsonl(&events));
        assert_eq!(from_jsonl(&dump).expect("blank lines ok"), events);
        assert!(from_jsonl("{not json}").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let events = sample_events();
        let doc = chrome_trace(&events, node_label);
        let value: Value = serde_json::from_str(&doc).expect("chrome trace parses as JSON");
        let list = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!list.is_empty());
        for entry in list {
            assert!(entry.get("ph").and_then(Value::as_str).is_some(), "{doc}");
            // Metadata events carry no ts; all others must.
            if entry.get("ph").and_then(Value::as_str) != Some("M") {
                assert!(entry.get("ts").and_then(Value::as_f64).is_some(), "{doc}");
            }
        }
        // One X event per completed task/idle window, lanes named for
        // both processors, instants for the branch and the fault.
        let phases: Vec<&str> = list
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 1);
        assert!(doc.contains("\"n0\""), "{doc}");
        // ts is microseconds: the 20.1 ms task becomes a ~20100 us span.
        let task_dur = list
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("task"))
            .and_then(|e| e.get("dur"))
            .and_then(Value::as_f64)
            .expect("task duration event");
        assert!((task_dur - 20_100.0).abs() < 1e-6, "{task_dur}");
    }

    #[test]
    fn metrics_csv_from_events() {
        let csv = metrics_csv(&sample_events());
        assert!(csv.contains("tasks.dispatched,counter,1"), "{csv}");
        assert!(csv.contains("slack_reclaimed_ms.total,gauge,10"), "{csv}");
    }
}
