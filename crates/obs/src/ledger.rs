//! The energy ledger: every joule attributed to a category, with the
//! total checked against the engine's meter.

use crate::event::SimEvent;
use crate::observer::Observer;
use crate::LEDGER_TOLERANCE;
use std::fmt;

/// Per-category energy attribution for one run.
///
/// Categories are disjoint and complete over the engine's charging
/// sites:
///
/// * `busy` — dynamic energy of task execution at the point the policy
///   requested, plus PMP bookkeeping windows;
/// * `idle` — idle power over stalls, dispatch gaps and the tail out to
///   the run horizon;
/// * `speed_overhead` — dynamic energy of commanded voltage/frequency
///   transitions (successful or injected-failed);
/// * `leakage` — static power over every active window (execution, PMP,
///   transitions);
/// * `recovery` — escalation transitions plus the premium of running
///   contained tasks above the requested point.
///
/// The sum equals `RunResult::total_energy()` to within
/// [`LEDGER_TOLERANCE`]; [`EnergyLedger::verify`] checks it, and the
/// engine enforces it on every debug-build run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EnergyLedger {
    /// Task execution + PMP dynamic energy (recovery premium excluded).
    pub busy: f64,
    /// Idle-power energy.
    pub idle: f64,
    /// Voltage/frequency transition dynamic energy.
    pub speed_overhead: f64,
    /// Static/leakage energy over active windows.
    pub leakage: f64,
    /// Fault-recovery energy (escalations + containment premiums).
    pub recovery: f64,
}

/// The ledger total diverged from the engine's meter — an accounting bug
/// in one of the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerMismatch {
    /// Sum over the ledger's categories.
    pub ledger_total: f64,
    /// The engine's `total_energy()`.
    pub expected: f64,
}

impl fmt::Display for LedgerMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy ledger total {} diverges from meter total {} by {:e} \
             (tolerance {:e} relative)",
            self.ledger_total,
            self.expected,
            (self.ledger_total - self.expected).abs(),
            LEDGER_TOLERANCE
        )
    }
}

impl std::error::Error for LedgerMismatch {}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger from a recorded stream.
    pub fn from_events(events: &[SimEvent]) -> Self {
        let mut ledger = Self::new();
        for ev in events {
            ledger.on_event(ev);
        }
        ledger
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        self.busy + self.idle + self.speed_overhead + self.leakage + self.recovery
    }

    /// Checks the ledger against the engine's total, within
    /// [`LEDGER_TOLERANCE`] relative error.
    pub fn verify(&self, expected: f64) -> Result<(), LedgerMismatch> {
        let total = self.total();
        if (total - expected).abs() <= LEDGER_TOLERANCE * expected.abs().max(1.0) {
            Ok(())
        } else {
            Err(LedgerMismatch {
                ledger_total: total,
                expected,
            })
        }
    }
}

impl Observer for EnergyLedger {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::TaskDispatch {
                pmp_energy,
                pmp_leakage,
                ..
            } => {
                self.busy += pmp_energy;
                self.leakage += pmp_leakage;
            }
            SimEvent::TaskComplete {
                energy,
                leakage,
                recovery_premium,
                ..
            } => {
                self.busy += energy - recovery_premium;
                self.recovery += recovery_premium;
                self.leakage += leakage;
            }
            SimEvent::SpeedChange {
                energy, leakage, ..
            } => {
                self.speed_overhead += energy;
                self.leakage += leakage;
            }
            SimEvent::FaultRecovered {
                energy, leakage, ..
            } => {
                self.recovery += energy;
                self.leakage += leakage;
            }
            SimEvent::IdleEnd { energy, .. } => self.idle += energy,
            SimEvent::SlackReclaimed { .. }
            | SimEvent::OrBranchTaken { .. }
            | SimEvent::SpeculationUpdate { .. }
            | SimEvent::FaultInjected { .. }
            | SimEvent::FaultDetected { .. }
            | SimEvent::IdleStart { .. } => {}
        }
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy ledger (total {:.6}):", self.total())?;
        writeln!(f, "  busy            {:.6}", self.busy)?;
        writeln!(f, "  idle            {:.6}", self.idle)?;
        writeln!(f, "  speed overhead  {:.6}", self.speed_overhead)?;
        writeln!(f, "  leakage         {:.6}", self.leakage)?;
        write!(f, "  fault recovery  {:.6}", self.recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::NodeId;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::TaskDispatch {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                wcet: 10.0,
                speed: 1.0,
                pmp_ms: 0.5,
                pmp_energy: 0.5,
                pmp_leakage: 0.05,
            },
            SimEvent::SpeedChange {
                t: 0.5,
                proc: 0,
                from_speed: 1.0,
                to_speed: 0.5,
                duration_ms: 0.2,
                energy: 0.2,
                leakage: 0.02,
                failed: false,
            },
            SimEvent::TaskComplete {
                t: 20.7,
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                exec_ms: 20.0,
                speed: 0.5,
                energy: 2.5,
                leakage: 0.1,
                recovery_premium: 0.5,
            },
            SimEvent::FaultRecovered {
                t: 20.7,
                proc: 0,
                energy: 0.3,
                leakage: 0.03,
            },
            SimEvent::IdleEnd {
                t: 25.0,
                proc: 0,
                duration_ms: 4.0,
                energy: 0.2,
            },
        ]
    }

    #[test]
    fn categories_split_the_attribution() {
        let ledger = EnergyLedger::from_events(&sample_events());
        assert!((ledger.busy - (0.5 + 2.5 - 0.5)).abs() < 1e-12);
        assert!((ledger.recovery - (0.5 + 0.3)).abs() < 1e-12);
        assert!((ledger.speed_overhead - 0.2).abs() < 1e-12);
        assert!((ledger.leakage - (0.05 + 0.02 + 0.1 + 0.03)).abs() < 1e-12);
        assert!((ledger.idle - 0.2).abs() < 1e-12);
    }

    #[test]
    fn verify_accepts_the_true_total_and_rejects_others() {
        let ledger = EnergyLedger::from_events(&sample_events());
        let total: f64 = sample_events().iter().map(|e| e.energy()).sum();
        assert!((ledger.total() - total).abs() < 1e-12);
        ledger.verify(total).expect("true total verifies");
        let err = ledger.verify(total + 0.01).unwrap_err();
        assert!(err.to_string().contains("diverges"), "{err}");
    }

    #[test]
    fn display_breaks_down_categories() {
        let text = EnergyLedger::from_events(&sample_events()).to_string();
        for label in [
            "busy",
            "idle",
            "speed overhead",
            "leakage",
            "fault recovery",
        ] {
            assert!(text.contains(label), "{text}");
        }
    }
}
