//! The energy ledger: every joule attributed to a category, with the
//! total checked against the engine's meter.

use crate::event::SimEvent;
use crate::observer::Observer;
use crate::LEDGER_TOLERANCE;
use andor_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-category energy attribution for one run.
///
/// Categories are disjoint and complete over the engine's charging
/// sites:
///
/// * `busy` — dynamic energy of task execution at the point the policy
///   requested, plus PMP bookkeeping windows;
/// * `idle` — idle power over stalls, dispatch gaps and the tail out to
///   the run horizon;
/// * `speed_overhead` — dynamic energy of commanded voltage/frequency
///   transitions (successful or injected-failed);
/// * `leakage` — static power over every active window (execution, PMP,
///   transitions);
/// * `recovery` — escalation transitions plus the premium of running
///   contained tasks above the requested point.
///
/// The sum equals `RunResult::total_energy()` to within
/// [`LEDGER_TOLERANCE`]; [`EnergyLedger::verify`] checks it, and the
/// engine enforces it on every debug-build run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Task execution + PMP dynamic energy (recovery premium excluded).
    pub busy: f64,
    /// Idle-power energy.
    pub idle: f64,
    /// Voltage/frequency transition dynamic energy.
    pub speed_overhead: f64,
    /// Static/leakage energy over active windows.
    pub leakage: f64,
    /// Fault-recovery energy (escalations + containment premiums).
    pub recovery: f64,
}

/// The ledger total diverged from the engine's meter — an accounting bug
/// in one of the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerMismatch {
    /// Sum over the ledger's categories.
    pub ledger_total: f64,
    /// The engine's `total_energy()`.
    pub expected: f64,
}

impl fmt::Display for LedgerMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy ledger total {} diverges from meter total {} by {:e} \
             (tolerance {:e} relative)",
            self.ledger_total,
            self.expected,
            (self.ledger_total - self.expected).abs(),
            LEDGER_TOLERANCE
        )
    }
}

impl std::error::Error for LedgerMismatch {}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger from a recorded stream.
    pub fn from_events(events: &[SimEvent]) -> Self {
        let mut ledger = Self::new();
        for ev in events {
            ledger.on_event(ev);
        }
        ledger
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        self.busy + self.idle + self.speed_overhead + self.leakage + self.recovery
    }

    /// Checks the ledger against the engine's total, within
    /// [`LEDGER_TOLERANCE`] relative error.
    pub fn verify(&self, expected: f64) -> Result<(), LedgerMismatch> {
        let total = self.total();
        if (total - expected).abs() <= LEDGER_TOLERANCE * expected.abs().max(1.0) {
            Ok(())
        } else {
            Err(LedgerMismatch {
                ledger_total: total,
                expected,
            })
        }
    }
}

impl Observer for EnergyLedger {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::TaskDispatch {
                pmp_energy,
                pmp_leakage,
                ..
            } => {
                self.busy += pmp_energy;
                self.leakage += pmp_leakage;
            }
            SimEvent::TaskComplete {
                energy,
                leakage,
                recovery_premium,
                ..
            } => {
                self.busy += energy - recovery_premium;
                self.recovery += recovery_premium;
                self.leakage += leakage;
            }
            SimEvent::SpeedChange {
                energy, leakage, ..
            } => {
                self.speed_overhead += energy;
                self.leakage += leakage;
            }
            SimEvent::FaultRecovered {
                energy, leakage, ..
            } => {
                self.recovery += energy;
                self.leakage += leakage;
            }
            SimEvent::IdleEnd { energy, .. } => self.idle += energy,
            SimEvent::SlackReclaimed { .. }
            | SimEvent::OrBranchTaken { .. }
            | SimEvent::SpeculationUpdate { .. }
            | SimEvent::FaultInjected { .. }
            | SimEvent::FaultDetected { .. }
            | SimEvent::IdleStart { .. } => {}
        }
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy ledger (total {:.6}):", self.total())?;
        writeln!(f, "  busy            {:.6}", self.busy)?;
        writeln!(f, "  idle            {:.6}", self.idle)?;
        writeln!(f, "  speed overhead  {:.6}", self.speed_overhead)?;
        writeln!(f, "  leakage         {:.6}", self.leakage)?;
        write!(f, "  fault recovery  {:.6}", self.recovery)
    }
}

/// Identifies one program-section slice of a run.
///
/// The stream itself carries the section structure: execution is a chain
/// of sections (OR-seriality), every boundary emits
/// [`SimEvent::OrBranchTaken`], and `SectionGraph::branch_section(or,
/// branch)` maps a key back to its `SectionId`. `Root` is the slice
/// before the first boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SectionKey {
    /// The root section (everything before the first OR fires).
    Root,
    /// The section entered when `or` resolved to `branch`.
    Branch {
        /// The OR node that fired.
        or: NodeId,
        /// The branch index it took.
        branch: usize,
    },
}

impl fmt::Display for SectionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionKey::Root => write!(f, "root"),
            SectionKey::Branch { or, branch } => write!(f, "n{}.b{branch}", or.0),
        }
    }
}

/// One section's share of the run: a key plus a full per-category ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionSlice {
    /// Which section (OR branch) the energy below was spent in.
    pub key: SectionKey,
    /// Per-category attribution within this section.
    pub ledger: EnergyLedger,
}

/// An [`EnergyLedger`] sliced per program section / OR branch taken.
///
/// Feeds on the same stream as the flat ledger; every event is charged to
/// the global totals *and* to the slice of the section it happened in,
/// segmented by the [`SimEvent::OrBranchTaken`] boundaries. Two
/// invariants hold (both checked by [`SectionedLedger::verify`], and by
/// the engine on every debug-build run):
///
/// 1. the global totals match `RunResult::total_energy()` within
///    [`LEDGER_TOLERANCE`];
/// 2. the slices sum to the global totals within the same tolerance
///    (they partition the stream, so this is exact up to rounding).
///
/// Attribution convention: the engine emits one aggregate idle window per
/// processor *after* the last section completes (dispatch gaps plus the
/// tail out to the horizon), so that lump lands in the final slice;
/// stall-idle inside a section stays in its section. Over a multi-frame
/// stream the slices keep growing in stream order — use
/// [`SectionedLedger::merged`] to aggregate equal keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionedLedger {
    total: EnergyLedger,
    slices: Vec<SectionSlice>,
}

impl Default for SectionedLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl SectionedLedger {
    /// An empty ledger, positioned in the root section.
    pub fn new() -> Self {
        Self {
            total: EnergyLedger::new(),
            slices: vec![SectionSlice {
                key: SectionKey::Root,
                ledger: EnergyLedger::new(),
            }],
        }
    }

    /// Builds a sectioned ledger from a recorded stream.
    pub fn from_events(events: &[SimEvent]) -> Self {
        let mut ledger = Self::new();
        for ev in events {
            ledger.on_event(ev);
        }
        ledger
    }

    /// The global per-category totals (equal to the flat
    /// [`EnergyLedger`] over the same stream).
    pub fn total(&self) -> &EnergyLedger {
        &self.total
    }

    /// The per-section slices, in stream order (root first).
    pub fn slices(&self) -> &[SectionSlice] {
        &self.slices
    }

    /// Slices with equal keys merged (multi-frame streams revisit
    /// sections), sorted root-first then by `(or, branch)`.
    pub fn merged(&self) -> Vec<SectionSlice> {
        let mut out: Vec<SectionSlice> = Vec::new();
        for slice in &self.slices {
            match out.iter_mut().find(|s| s.key == slice.key) {
                Some(existing) => {
                    existing.ledger.busy += slice.ledger.busy;
                    existing.ledger.idle += slice.ledger.idle;
                    existing.ledger.speed_overhead += slice.ledger.speed_overhead;
                    existing.ledger.leakage += slice.ledger.leakage;
                    existing.ledger.recovery += slice.ledger.recovery;
                }
                None => out.push(slice.clone()),
            }
        }
        out.sort_by_key(|s| s.key);
        out
    }

    /// Checks both invariants: the global total against the engine's
    /// `total_energy()`, and the slice sum against the global total.
    pub fn verify(&self, expected: f64) -> Result<(), LedgerMismatch> {
        self.total.verify(expected)?;
        self.verify_sections()
    }

    /// Checks that the per-section slices sum to the global total within
    /// [`LEDGER_TOLERANCE`].
    pub fn verify_sections(&self) -> Result<(), LedgerMismatch> {
        let sum: f64 = self.slices.iter().map(|s| s.ledger.total()).sum();
        let expected = self.total.total();
        if (sum - expected).abs() <= LEDGER_TOLERANCE * expected.abs().max(1.0) {
            Ok(())
        } else {
            Err(LedgerMismatch {
                ledger_total: sum,
                expected,
            })
        }
    }
}

impl Observer for SectionedLedger {
    fn on_event(&mut self, event: &SimEvent) {
        if let SimEvent::OrBranchTaken { or, branch, .. } = event {
            self.slices.push(SectionSlice {
                key: SectionKey::Branch {
                    or: *or,
                    branch: *branch,
                },
                ledger: EnergyLedger::new(),
            });
        }
        self.total.on_event(event);
        self.slices
            .last_mut()
            .expect("slices start non-empty")
            .ledger
            .on_event(event);
    }
}

impl fmt::Display for SectionedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.total)?;
        writeln!(f, "\nper-section slices ({}):", self.slices.len())?;
        writeln!(
            f,
            "  {:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "section", "total", "busy", "idle", "overhead", "leakage", "recovery"
        )?;
        for (i, slice) in self.slices.iter().enumerate() {
            let l = &slice.ledger;
            let newline = if i + 1 == self.slices.len() { "" } else { "\n" };
            write!(
                f,
                "  {:<12} {:>12.6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}{newline}",
                slice.key.to_string(),
                l.total(),
                l.busy,
                l.idle,
                l.speed_overhead,
                l.leakage,
                l.recovery
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::NodeId;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::TaskDispatch {
                t: 0.0,
                node: NodeId(0),
                proc: 0,
                wcet: 10.0,
                speed: 1.0,
                pmp_ms: 0.5,
                pmp_energy: 0.5,
                pmp_leakage: 0.05,
            },
            SimEvent::SpeedChange {
                t: 0.5,
                proc: 0,
                from_speed: 1.0,
                to_speed: 0.5,
                duration_ms: 0.2,
                energy: 0.2,
                leakage: 0.02,
                failed: false,
            },
            SimEvent::TaskComplete {
                t: 20.7,
                node: NodeId(0),
                proc: 0,
                start: 0.0,
                exec_ms: 20.0,
                speed: 0.5,
                energy: 2.5,
                leakage: 0.1,
                recovery_premium: 0.5,
            },
            SimEvent::FaultRecovered {
                t: 20.7,
                proc: 0,
                energy: 0.3,
                leakage: 0.03,
            },
            SimEvent::IdleEnd {
                t: 25.0,
                proc: 0,
                duration_ms: 4.0,
                energy: 0.2,
            },
        ]
    }

    #[test]
    fn categories_split_the_attribution() {
        let ledger = EnergyLedger::from_events(&sample_events());
        assert!((ledger.busy - (0.5 + 2.5 - 0.5)).abs() < 1e-12);
        assert!((ledger.recovery - (0.5 + 0.3)).abs() < 1e-12);
        assert!((ledger.speed_overhead - 0.2).abs() < 1e-12);
        assert!((ledger.leakage - (0.05 + 0.02 + 0.1 + 0.03)).abs() < 1e-12);
        assert!((ledger.idle - 0.2).abs() < 1e-12);
    }

    #[test]
    fn verify_accepts_the_true_total_and_rejects_others() {
        let ledger = EnergyLedger::from_events(&sample_events());
        let total: f64 = sample_events().iter().map(|e| e.energy()).sum();
        assert!((ledger.total() - total).abs() < 1e-12);
        ledger.verify(total).expect("true total verifies");
        let err = ledger.verify(total + 0.01).unwrap_err();
        assert!(err.to_string().contains("diverges"), "{err}");
    }

    fn sectioned_events() -> Vec<SimEvent> {
        let mut events = sample_events();
        events.push(SimEvent::OrBranchTaken {
            t: 25.0,
            or: NodeId(7),
            branch: 1,
        });
        events.push(SimEvent::TaskComplete {
            t: 30.0,
            node: NodeId(8),
            proc: 1,
            start: 25.0,
            exec_ms: 5.0,
            speed: 1.0,
            energy: 1.25,
            leakage: 0.0,
            recovery_premium: 0.0,
        });
        events
    }

    #[test]
    fn sections_partition_the_stream() {
        let events = sectioned_events();
        let ledger = SectionedLedger::from_events(&events);
        let flat = EnergyLedger::from_events(&events);
        assert_eq!(*ledger.total(), flat);
        assert_eq!(ledger.slices().len(), 2);
        assert_eq!(ledger.slices()[0].key, SectionKey::Root);
        assert_eq!(
            ledger.slices()[1].key,
            SectionKey::Branch {
                or: NodeId(7),
                branch: 1
            }
        );
        // Everything before the boundary lands in root, the last task in
        // the branch slice.
        assert!((ledger.slices()[1].ledger.busy - 1.25).abs() < 1e-12);
        assert!((ledger.slices()[0].ledger.total() + 1.25 - flat.total()).abs() < 1e-12);
        ledger.verify_sections().expect("slices sum to total");
        ledger.verify(flat.total()).expect("both invariants hold");
        assert!(ledger.verify(flat.total() + 0.5).is_err());
    }

    #[test]
    fn merged_aggregates_repeated_keys() {
        // Two frames back to back: the same branch slice appears twice.
        let mut events = sectioned_events();
        events.extend(sectioned_events());
        let ledger = SectionedLedger::from_events(&events);
        assert_eq!(ledger.slices().len(), 3); // root, b1, b1 (frame 2 root merges into trailing b1)
        let merged = ledger.merged();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].key, SectionKey::Root);
        let sum: f64 = merged.iter().map(|s| s.ledger.total()).sum();
        assert!((sum - ledger.total().total()).abs() < 1e-12);
    }

    #[test]
    fn sectioned_display_lists_slices() {
        let text = SectionedLedger::from_events(&sectioned_events()).to_string();
        assert!(text.contains("per-section slices"), "{text}");
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("n7.b1"), "{text}");
    }

    #[test]
    fn display_breaks_down_categories() {
        let text = EnergyLedger::from_events(&sample_events()).to_string();
        for label in [
            "busy",
            "idle",
            "speed overhead",
            "leakage",
            "fault recovery",
        ] {
            assert!(text.contains(label), "{text}");
        }
    }
}
