//! Process-global structured logger for long-lived processes.
//!
//! The span profiler ([`crate::profile`]) answers "where did the
//! millisecond go"; this module answers "what was the process *doing*" —
//! one JSON object per line, machine-parseable, with severity levels,
//! monotonic + wall-clock timestamps, free-form key=value fields and a
//! correlation id threaded through every record emitted while a request
//! is being served.
//!
//! Design constraints mirror the profiler's:
//!
//! * **Near-zero cost when disabled.** Logging is off by default;
//!   [`emit`] is one relaxed atomic load on the disabled path, and
//!   nothing in the workspace writes a byte unless [`init`] ran. The
//!   logger is a pure side channel: enabling it never changes a
//!   `PlanArtifact` byte or a golden trace (enforced by property tests
//!   at the workspace root).
//! * **Allocation-bounded.** Besides the optional sink, records land in
//!   a bounded in-memory ring (a [`Window`], the same windowing that
//!   backs [`crate::RingLog`]) whose tail feeds crash reports — memory
//!   stays O(ring capacity) however long the process runs.
//! * **Torn-line-free.** Each record is serialized to one line and
//!   written with a single `write_all` while holding the logger mutex,
//!   so concurrent emitters can never interleave bytes mid-line
//!   (property-tested at the workspace root).
//!
//! Usage (the `pas serve --log` wiring):
//!
//! ```
//! use pas_obs::log::{self, Level};
//! use serde::Value;
//!
//! let _session = log::exclusive();
//! log::init(None, Level::Debug, 16); // ring only, no sink
//! log::emit(
//!     Level::Info,
//!     "doc.example",
//!     "listening",
//!     vec![("transport", Value::Str("tcp".into()))],
//! );
//! assert_eq!(log::recent().len(), 1);
//! log::shutdown();
//! ```

use crate::sink::Window;
use serde::Value;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log severity, ordered `Trace < Debug < Info < Warn < Error`. Records
/// below the level passed to [`init`] are dropped at the emit site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Finest-grained diagnostics (per-event noise).
    Trace,
    /// Per-request diagnostics (cache hits, answered requests).
    Debug,
    /// Lifecycle milestones (endpoints up, shutdown).
    Info,
    /// Degraded-but-handled conditions (sheds, timeouts, stale serves).
    Warn,
    /// Contained failures (worker panics, crash-report dumps).
    Error,
}

impl Level {
    /// Every level, most to least verbose.
    pub const ALL: &'static [Level] = &[
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// The wire name (`"trace"` … `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a wire name back into a level (the `--log-level` values).
    pub fn parse(s: &str) -> Option<Level> {
        Level::ALL.iter().copied().find(|l| l.as_str() == s)
    }

    fn rank(self) -> u8 {
        match self {
            Level::Trace => 0,
            Level::Debug => 1,
            Level::Info => 2,
            Level::Warn => 3,
            Level::Error => 4,
        }
    }
}

/// One structured log record — what a JSONL line deserializes back into,
/// and what the in-memory ring retains for crash reports.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Process-global sequence number (1-based, gap-free per session).
    pub seq: u64,
    /// Wall-clock time, integer milliseconds since the Unix epoch.
    pub t_wall_ms: u64,
    /// Monotonic milliseconds since the logger session started.
    pub t_mono_ms: f64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`"serve.net"`, `"serve.pool"`, ...).
    pub target: &'static str,
    /// Human-readable message.
    pub msg: String,
    /// Correlation id of the request being served, when one is bound
    /// (see [`with_corr`]).
    pub corr_id: Option<String>,
    /// Free-form key=value fields, in emit order.
    pub fields: Vec<(String, Value)>,
}

impl LogRecord {
    /// The record as a JSON value — the exact object written as one
    /// JSONL line (keys in fixed order; `corr_id` omitted when absent).
    pub fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("t_wall_ms".to_string(), Value::UInt(self.t_wall_ms)),
            ("t_mono_ms".to_string(), Value::Float(self.t_mono_ms)),
            (
                "level".to_string(),
                Value::Str(self.level.as_str().to_string()),
            ),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("msg".to_string(), Value::Str(self.msg.clone())),
        ];
        if let Some(id) = &self.corr_id {
            entries.push(("corr_id".to_string(), Value::Str(id.clone())));
        }
        entries.push(("fields".to_string(), Value::Object(self.fields.clone())));
        Value::Object(entries)
    }
}

struct LoggerState {
    sink: Option<Box<dyn Write + Send>>,
    ring: Window<LogRecord>,
    next_seq: u64,
    epoch: Instant,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static MIN_RANK: AtomicU8 = AtomicU8::new(2);
static STATE: Mutex<Option<LoggerState>> = Mutex::new(None);

thread_local! {
    static CORR: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Default capacity of the bounded in-memory record ring.
pub const DEFAULT_RING_CAP: usize = 256;

fn state() -> MutexGuard<'static, Option<LoggerState>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Claims the logger for one session. Like [`crate::profile::exclusive`]:
/// the logger is process-global, so concurrent users (parallel tests)
/// would interleave sessions. Hold the guard across the whole
/// `init()` … `shutdown()` window; single-session processes may skip it.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static SESSION: Mutex<()> = Mutex::new(());
    SESSION.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns the logger on. `sink` is where JSONL lines go (`None` keeps
/// records in the ring only), `level` is the minimum severity emitted,
/// `ring_cap` bounds the in-memory tail that crash reports snapshot.
pub fn init(sink: Option<Box<dyn Write + Send>>, level: Level, ring_cap: usize) {
    let mut st = state();
    *st = Some(LoggerState {
        sink,
        ring: Window::new(ring_cap),
        next_seq: 0,
        epoch: Instant::now(),
    });
    MIN_RANK.store(level.rank(), Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Turns the logger off, flushing and dropping the sink. Idempotent.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Release);
    let mut st = state();
    if let Some(mut s) = st.take() {
        if let Some(w) = s.sink.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Whether the logger is on at all.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a record at `level` would be emitted — the cheap guard for
/// call sites that build expensive fields.
pub fn enabled_at(level: Level) -> bool {
    is_enabled() && level.rank() >= MIN_RANK.load(Ordering::Relaxed)
}

/// Binds `id` as the current thread's correlation id until the returned
/// guard drops. Nested binds shadow (innermost wins); every record
/// emitted on this thread meanwhile carries the id.
pub fn with_corr(id: &str) -> CorrGuard {
    CORR.with(|c| c.borrow_mut().push(id.to_string()));
    CorrGuard { _priv: () }
}

/// The correlation id currently bound on this thread, if any.
pub fn current_corr() -> Option<String> {
    CORR.with(|c| c.borrow().last().cloned())
}

/// RAII guard returned by [`with_corr`]: unbinds the id on drop.
#[must_use = "the correlation id unbinds when the guard drops"]
pub struct CorrGuard {
    _priv: (),
}

impl Drop for CorrGuard {
    fn drop(&mut self) {
        CORR.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Emits one record. On the disabled (or below-level) path this is at
/// most two relaxed atomic loads; enabled, the record is serialized to
/// one JSON line and written with a single `write_all` under the logger
/// mutex — concurrent emitters serialize whole lines, never bytes.
pub fn emit(level: Level, target: &'static str, msg: &str, fields: Vec<(&str, Value)>) {
    if !enabled_at(level) {
        return;
    }
    let corr_id = current_corr();
    let t_wall_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut st = state();
    let Some(s) = st.as_mut() else {
        return;
    };
    s.next_seq += 1;
    let record = LogRecord {
        seq: s.next_seq,
        t_wall_ms,
        t_mono_ms: s.epoch.elapsed().as_secs_f64() * 1e3,
        level,
        target,
        msg: msg.to_string(),
        corr_id,
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    if let Some(w) = s.sink.as_mut() {
        let mut line = serde_json::to_string(&record.to_value()).expect("records serialize");
        line.push('\n');
        if w.write_all(line.as_bytes()).is_err() {
            // A dead sink stops receiving lines; the ring keeps the
            // tail so crash reports still have context.
            s.sink = None;
        }
    }
    s.ring.push(record);
}

/// Snapshot of the bounded ring, oldest first — the "last N records"
/// tail that crash reports embed. Empty when the logger is off.
pub fn recent() -> Vec<LogRecord> {
    let st = state();
    st.as_ref()
        .map(|s| s.ring.iter().cloned().collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Cloneable in-memory sink for capturing emitted bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            )
            .expect("utf-8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_logger_emits_nothing() {
        let _session = exclusive();
        shutdown();
        emit(Level::Error, "test", "dropped", vec![]);
        assert!(!is_enabled());
        assert!(recent().is_empty());
    }

    #[test]
    fn levels_order_parse_and_roundtrip() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()), Some(*l));
        }
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn records_serialize_with_required_fields_and_filter_by_level() {
        let _session = exclusive();
        let buf = SharedBuf::default();
        init(Some(Box::new(buf.clone())), Level::Info, 8);
        emit(Level::Debug, "test", "below threshold", vec![]);
        emit(
            Level::Warn,
            "test",
            "shed",
            vec![("queue_depth", Value::UInt(4))],
        );
        shutdown();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "{text}");
        let v: Value = serde_json::from_str(lines[0]).expect("line parses");
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(v.get("target").and_then(Value::as_str), Some("test"));
        assert_eq!(v.get("msg").and_then(Value::as_str), Some("shed"));
        assert!(v.get("t_wall_ms").and_then(Value::as_u64).is_some());
        assert!(v.get("t_mono_ms").and_then(Value::as_f64).is_some());
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("queue_depth"))
                .and_then(Value::as_u64),
            Some(4)
        );
        assert!(v.get("corr_id").is_none(), "no corr bound");
    }

    #[test]
    fn correlation_ids_thread_and_nest() {
        let _session = exclusive();
        init(None, Level::Trace, 8);
        assert_eq!(current_corr(), None);
        {
            let _outer = with_corr("req-1");
            emit(Level::Info, "test", "outer", vec![]);
            {
                let _inner = with_corr("req-2");
                assert_eq!(current_corr().as_deref(), Some("req-2"));
                emit(Level::Info, "test", "inner", vec![]);
            }
            assert_eq!(current_corr().as_deref(), Some("req-1"));
        }
        assert_eq!(current_corr(), None);
        let tail = recent();
        shutdown();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].corr_id.as_deref(), Some("req-1"));
        assert_eq!(tail[1].corr_id.as_deref(), Some("req-2"));
    }

    #[test]
    fn ring_is_bounded_and_seq_is_gap_free() {
        let _session = exclusive();
        init(None, Level::Trace, 3);
        for i in 0..7u64 {
            emit(Level::Info, "test", &format!("m{i}"), vec![]);
        }
        let tail = recent();
        shutdown();
        assert_eq!(tail.len(), 3);
        let seqs: Vec<u64> = tail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        assert_eq!(tail[2].msg, "m6");
    }

    #[test]
    fn dead_sink_goes_quiet_but_ring_survives() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let _session = exclusive();
        init(Some(Box::new(Dead)), Level::Trace, 8);
        emit(Level::Info, "test", "first", vec![]);
        emit(Level::Info, "test", "second", vec![]);
        let tail = recent();
        shutdown();
        assert_eq!(tail.len(), 2, "ring keeps records after sink death");
    }
}
