#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! Sampling and summary statistics for the power-aware scheduling workspace.
//!
//! The ICPP'02 evaluation draws per-task actual execution times from a normal
//! distribution around the task's average-case execution time and reports each
//! data point as the mean of 1000 simulation runs. This crate provides the
//! statistical machinery that requires:
//!
//! * [`normal`] — a Box–Muller normal sampler plus the clipped variant used for
//!   execution times (values are truncated to `(lo, hi]` so a sample can never
//!   exceed the worst case or be non-positive).
//! * [`summary`] — streaming mean/variance (Welford) and confidence intervals
//!   for aggregating Monte-Carlo replications.
//! * [`table`] — a small result-table builder that renders the series for a
//!   figure as aligned text, markdown, or CSV.
//!
//! Everything is deterministic given a seeded [`rand::Rng`].

pub mod histogram;
pub mod normal;
pub mod plot;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use normal::{ClippedNormal, Normal};
pub use plot::to_svg;
pub use summary::{ci95_half_width, Summary};
pub use table::{Series, Table};
