//! Result tables: the series behind one figure, rendered as text/markdown/CSV.
//!
//! Every experiment binary in `pas-experiments` produces one [`Table`]: an
//! x-axis (load, α, `S_min` ratio, ...) and one y-series per scheduling
//! scheme, mirroring how the paper plots "normalized energy vs X, one curve
//! per scheme".

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named curve: `y[i]` corresponds to the table's `x[i]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Curve label, e.g. `"GSS"` or `"SS(2)"`.
    pub name: String,
    /// Y values, parallel to the owning table's x-axis.
    pub values: Vec<f64>,
}

/// A figure's worth of data: a shared x-axis plus one series per scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table title (figure id), e.g. `"Fig 4a: ATR, 2 CPUs, Transmeta"`.
    pub title: String,
    /// X-axis label, e.g. `"load"`.
    pub x_label: String,
    /// X-axis values.
    pub x: Vec<f64>,
    /// One series per curve.
    pub series: Vec<Series>,
}

impl Table {
    /// Creates an empty table over the given x-axis.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, x: Vec<f64>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            x,
            series: Vec::new(),
        }
    }

    /// Appends a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the x-axis length — a
    /// mismatched series would silently misalign the rendered figure.
    pub fn push_series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.x.len(),
            "series length must match x-axis length"
        );
        self.series.push(Series {
            name: name.into(),
            values,
        });
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "| {x:.3} |");
            for s in &self.series {
                let _ = write!(out, " {:.4} |", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as an aligned plain-text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>12}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x:>12.3}");
            for s in &self.series {
                let _ = write!(out, "{:>12.4}", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", "load", vec![0.1, 0.2]);
        t.push_series("GSS", vec![0.5, 0.6]);
        t.push_series("SPM", vec![0.7, 0.8]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("| load | GSS | SPM |"));
        assert!(md.contains("0.100"));
        assert!(md.contains("0.8000"));
    }

    #[test]
    fn csv_round_trips_lengths() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "load,GSS,SPM");
        assert_eq!(lines[1].split(',').count(), 3);
    }

    #[test]
    fn text_renders_header_and_rows() {
        let txt = sample().to_text();
        assert!(txt.starts_with("Fig X"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn series_lookup() {
        let t = sample();
        assert!(t.series("GSS").is_some());
        assert!(t.series("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_panics() {
        let mut t = Table::new("t", "x", vec![1.0]);
        t.push_series("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.x, t.x);
    }
}
