//! Minimal SVG line-chart rendering for result tables.
//!
//! The experiment binaries can emit each figure as a standalone SVG
//! (`--svg` flag), so the reproduced curves can be compared against the
//! paper's plots visually, not just numerically. Hand-rolled on purpose:
//! no plotting dependency, deterministic output, safe to snapshot in
//! tests.

use crate::table::Table;
use std::fmt::Write as _;

/// Default categorical palette (color-blind-safe-ish, 8 entries cycled).
const PALETTE: [&str; 8] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#222222",
];

/// Renders the table as an SVG line chart.
///
/// Layout: margins for axis labels and a right-hand legend; x spans the
/// table's x range; y spans `[0, max(y)·1.05]` (normalized-energy figures
/// naturally include 0). NaN values break the polyline (segments are
/// skipped).
pub fn to_svg(table: &Table, width: u32, height: u32) -> String {
    let (w, h) = (width as f64, height as f64);
    let (ml, mr, mt, mb) = (56.0, 128.0, 28.0, 44.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);

    let x_min = table.x.first().copied().unwrap_or(0.0);
    let x_max = table.x.last().copied().unwrap_or(1.0);
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_max = table
        .series
        .iter()
        .flat_map(|s| s.values.iter())
        .filter(|v| v.is_finite())
        .fold(0.0_f64, |a, &b| a.max(b))
        .max(f64::MIN_POSITIVE)
        * 1.05;

    let px = |x: f64| ml + (x - x_min) / x_span * pw;
    let py = |y: f64| mt + (1.0 - y / y_max) * ph;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="Helvetica,Arial,sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    // Title.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="16" text-anchor="middle" font-size="12">{}</text>"#,
        ml + pw / 2.0,
        escape(&table.title)
    );
    // Axes.
    let _ = writeln!(
        out,
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        mt + ph,
        ml + pw,
        mt + ph
    );
    let _ = writeln!(
        out,
        r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
        mt + ph
    );
    // X ticks at every table x value (they are sparse).
    for &x in &table.x {
        let cx = px(x);
        let _ = writeln!(
            out,
            r#"<line x1="{cx:.1}" y1="{}" x2="{cx:.1}" y2="{}" stroke="black"/>"#,
            mt + ph,
            mt + ph + 4.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{cx:.1}" y="{}" text-anchor="middle">{}</text>"#,
            mt + ph + 16.0,
            trim_num(x)
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        ml + pw / 2.0,
        mt + ph + 34.0,
        escape(&table.x_label)
    );
    // Y ticks: 5 divisions.
    for i in 0..=5 {
        let y = y_max * i as f64 / 5.0;
        let cy = py(y);
        let _ = writeln!(
            out,
            r#"<line x1="{}" y1="{cy:.1}" x2="{ml}" y2="{cy:.1}" stroke="black"/>"#,
            ml - 4.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
            ml - 8.0,
            cy + 3.5,
            trim_num(y)
        );
        if i > 0 {
            let _ = writeln!(
                out,
                r##"<line x1="{ml}" y1="{cy:.1}" x2="{}" y2="{cy:.1}" stroke="#dddddd"/>"##,
                ml + pw
            );
        }
    }
    // Series.
    for (si, series) in table.series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let mut d = String::new();
        let mut pen_down = false;
        for (&x, &y) in table.x.iter().zip(&series.values) {
            if !y.is_finite() {
                pen_down = false;
                continue;
            }
            let cmd = if pen_down { 'L' } else { 'M' };
            let _ = write!(d, "{cmd}{:.1},{:.1} ", px(x), py(y));
            pen_down = true;
        }
        let _ = writeln!(
            out,
            r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            d.trim_end()
        );
        for (&x, &y) in table.x.iter().zip(&series.values) {
            if y.is_finite() {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
        }
        // Legend entry.
        let ly = mt + 14.0 * si as f64;
        let _ = writeln!(
            out,
            r#"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="1.8"/>"#,
            ml + pw + 10.0,
            ml + pw + 30.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{:.1}">{}</text>"#,
            ml + pw + 36.0,
            ly + 3.5,
            escape(&series.name)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn trim_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig demo", "load", vec![0.1, 0.5, 1.0]);
        t.push_series("GSS", vec![0.7, 0.5, 0.7]);
        t.push_series("NPM", vec![1.0, 1.0, 1.0]);
        t
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = to_svg(&sample(), 640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One path per series, one legend label each.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">GSS<"));
        assert!(svg.contains(">NPM<"));
        assert!(svg.contains("Fig demo"));
    }

    #[test]
    fn nan_values_break_the_line() {
        let mut t = Table::new("t", "x", vec![0.0, 1.0, 2.0]);
        t.push_series("s", vec![1.0, f64::NAN, 2.0]);
        let svg = to_svg(&t, 400, 300);
        // Two move commands: the pen lifts over the NaN.
        let path_line = svg.lines().find(|l| l.contains("<path")).unwrap();
        assert_eq!(path_line.matches('M').count(), 2, "{path_line}");
        // Only two markers.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut t = Table::new("a < b & c", "x", vec![0.0]);
        t.push_series("s<1>", vec![1.0]);
        let svg = to_svg(&t, 400, 300);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(to_svg(&sample(), 640, 400), to_svg(&sample(), 640, 400));
    }
}
