//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Accumulates count, mean, variance, min and max of a stream of `f64`
/// observations in O(1) memory using Welford's numerically stable update.
///
/// # Examples
///
/// ```
/// use pas_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% normal-approximation confidence interval of the
    /// mean. Zero with fewer than two observations.
    pub fn ci95(&self) -> f64 {
        ci95_half_width(self.sd(), self.count)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Half-width of a 95% confidence interval for a mean estimated from `n`
/// observations with sample standard deviation `sd`, using the normal
/// approximation (`z = 1.96`). Appropriate for the 1000-replication
/// experiment points in this workspace.
pub fn ci95_half_width(sd: f64, n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    1.96 * sd / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(313);
        let mut sa: Summary = a.iter().copied().collect();
        let sb: Summary = b.iter().copied().collect();
        sa.merge(&sb);
        let all: Summary = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let w1 = ci95_half_width(2.0, 100);
        let w2 = ci95_half_width(2.0, 10_000);
        assert!(w2 < w1);
        assert!((w1 / w2 - 10.0).abs() < 1e-9);
    }
}
