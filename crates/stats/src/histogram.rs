//! Fixed-bin histograms with quantile estimation.
//!
//! Used by the comparison tooling to report distributional quantities
//! (e.g. the 95th-percentile energy of a scheme, not just its mean — tail
//! behavior matters when frames share a power budget).

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range with equal-width bins. Out-of-range
/// observations clamp into the edge bins, so counts are never lost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// Returns `None` if `bins == 0`, the bounds are non-finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Records one observation (clamped into range).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// True when `x` falls outside `[lo, hi]` — callers that must not
    /// lose the information that [`Histogram::add`] will clamp check
    /// this first (NaN never compares outside, so it reports `false`
    /// and clamps silently, as before).
    pub fn out_of_range(&self, x: f64) -> bool {
        x < self.lo || x > self.hi
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Estimates the `q`-quantile (`0 <= q <= 1`) by linear interpolation
    /// within the bin containing the target rank. Returns `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let within = if c == 0 {
                    0.0
                } else {
                    (target - cum) / c as f64
                };
                return Some(self.bin_lo(i) + width * within.clamp(0.0, 1.0));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics on mismatched range or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Renders a compact ASCII bar chart (one row per bin, `width`-char
    /// bars scaled to the fullest bin).
    pub fn to_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * width) / max as usize;
            let _ = writeln!(out, "{:>10.3} | {} {}", self.bin_lo(i), "#".repeat(bar), c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 0.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 4).is_some());
    }

    #[test]
    fn counts_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.5);
        h.add(9.99);
        h.add(5.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.out_of_range(-5.0));
        assert!(h.out_of_range(99.0));
        assert!(!h.out_of_range(0.5));
        assert!(!h.out_of_range(0.0));
        assert!(!h.out_of_range(1.0));
        h.add(-5.0);
        h.add(99.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..1000 {
            h.add(i as f64 / 10.0);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median={median}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() < 2.0, "p95={p95}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 2).unwrap();
        a.add(0.1);
        b.add(0.9);
        b.add(0.8);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 2).unwrap();
        let b = Histogram::new(0.0, 2.0, 2).unwrap();
        a.merge(&b);
    }

    #[test]
    fn ascii_render_contains_bars() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for _ in 0..4 {
            h.add(1.5);
        }
        h.add(3.5);
        let art = h.to_ascii(8);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains("########"), "{art}");
    }
}
