//! Normal (Gaussian) sampling via the Box–Muller transform.
//!
//! We implement the sampler ourselves instead of pulling in `rand_distr`: the
//! workspace only needs plain and clipped normals, and owning the
//! implementation keeps the sampled sequences stable across dependency
//! upgrades (experiment outputs are seed-reproducible).

use rand::Rng;

/// A normal distribution `N(mean, sd²)` sampled with Box–Muller.
///
/// The transform produces samples in pairs; the spare value is cached so that
/// consecutive draws cost one `ln`/`sqrt` pair every other call.
///
/// # Examples
///
/// ```
/// use pas_stats::Normal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut n = Normal::new(10.0, 2.0).unwrap();
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    sd: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Creates a normal distribution. Returns `None` if `sd` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Option<Self> {
        if !mean.is_finite() || !sd.is_finite() || sd < 0.0 {
            return None;
        }
        Some(Self {
            mean,
            sd,
            spare: None,
        })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        if let Some(z) = self.spare.take() {
            return self.mean + self.sd * z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.spare = Some(z1);
        self.mean + self.sd * z0
    }
}

/// A normal distribution whose samples are clipped to a closed interval.
///
/// The paper draws each task's actual execution time "from a normal
/// distribution around the average case"; an execution time must lie in
/// `(0, wcet]`, so the simulator uses this clipped variant with
/// `lo` slightly above zero and `hi = wcet`.
///
/// Clipping is by truncation-and-clamp (out-of-range samples are clamped to
/// the nearest bound) rather than rejection; this biases the tails slightly
/// but never loops, and matches common practice in scheduling simulators.
#[derive(Debug, Clone)]
pub struct ClippedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl ClippedNormal {
    /// Creates a clipped normal. Returns `None` on invalid parameters or if
    /// `lo > hi`.
    pub fn new(mean: f64, sd: f64, lo: f64, hi: f64) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo > hi {
            return None;
        }
        Some(Self {
            inner: Normal::new(mean, sd)?,
            lo,
            hi,
        })
    }

    /// Lower clip bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper clip bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample, clamped to `[lo, hi]`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(0.0, f64::INFINITY).is_none());
        assert!(ClippedNormal::new(0.0, 1.0, 2.0, 1.0).is_none());
    }

    #[test]
    fn zero_sd_is_constant() {
        let mut n = Normal::new(5.5, 0.0).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut r), 5.5);
        }
    }

    #[test]
    fn sample_mean_converges() {
        let mut n = Normal::new(10.0, 3.0).unwrap();
        let mut r = rng();
        let k = 200_000;
        let mean = (0..k).map(|_| n.sample(&mut r)).sum::<f64>() / k as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn sample_sd_converges() {
        let mut n = Normal::new(0.0, 2.0).unwrap();
        let mut r = rng();
        let k = 200_000;
        let xs: Vec<f64> = (0..k).map(|_| n.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / k as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn clipping_respects_bounds() {
        let mut n = ClippedNormal::new(1.0, 10.0, 0.5, 2.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = n.sample(&mut r);
            assert!((0.5..=2.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Normal::new(0.0, 1.0).unwrap();
        let mut b = Normal::new(0.0, 1.0).unwrap();
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..64 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let n = Normal::new(3.0, 0.25).unwrap();
        assert_eq!(n.mean(), 3.0);
        assert_eq!(n.sd(), 0.25);
        let c = ClippedNormal::new(3.0, 0.25, 1.0, 4.0).unwrap();
        assert_eq!(c.lo(), 1.0);
        assert_eq!(c.hi(), 4.0);
    }
}
