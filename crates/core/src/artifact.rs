//! Serialized offline plans: the versioned on-disk form of the off-line
//! phase's output, per scheme.
//!
//! The paper's Theorem 1 is proved over the *canonical schedule* — the
//! latest start times, the `Tw`/`Ta` statistics and, for the speculative
//! schemes, the derived speed parameters. [`PlanArtifact`] makes that
//! whole object a first-class file: `pas plan --out plan.json` writes it,
//! `pas check plan.json --against <workload> <platform>` re-derives it
//! independently and diffs every field (the `PAS04xx` diagnostics in
//! `pas-analyze`), and [`PlanArtifact::into_setup`] runs the engine *from
//! the deserialized plan* so a verified artifact is also a runnable one.
//!
//! Serialization is deterministic: the offline serde layer emits map
//! entries in sorted key order, so building the same plan twice yields
//! byte-identical JSON — which is what makes "serialize → deserialize →
//! re-derive → byte-identical" a property test rather than a hope.

use crate::harness::{Setup, SetupError};
use crate::offline::OfflinePlan;
use crate::policies::{Scheme, SpmPolicy, Ss1Policy, Ss2Policy};
use andor_graph::AndOrGraph;
use dvfs_power::{Overheads, ProcessorModel};
use serde::{Deserialize, Serialize};

/// Version of the plan-artifact JSON schema. Bumped on any breaking
/// change to [`PlanArtifact`] or the types it embeds; `pas check` rejects
/// other versions with `PAS0401`.
pub const PLAN_SCHEMA_VERSION: u32 = 1;

/// The scheme-specific parameters the on-line phase derives from a plan —
/// the quantities Theorem 1's "never below the GSS speed" argument and the
/// SS(2) switch-window condition are stated over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeParams {
    /// NPM carries no parameters (always full speed).
    Npm,
    /// SPM: the single static operating speed `Tw / (D − t_trans)`,
    /// quantized up.
    Spm {
        /// Normalized static speed every task runs at.
        static_speed: f64,
    },
    /// GSS derives everything per dispatch from the latest start times.
    Gss,
    /// SS(1): the single speculative floor `Ta / D`, quantized up.
    Ss1 {
        /// Normalized speculative speed floor.
        spec_speed: f64,
    },
    /// SS(2): the level pair bracketing `Ta / D` and the switch time
    /// `θ = (s₂·D − Tᵃ) / (s₂ − s₁)`, clamped into `[0, D]`.
    Ss2 {
        /// The lower level `s₁`.
        low: f64,
        /// The upper level `s₂`.
        high: f64,
        /// The switch time θ in ms.
        switch_time: f64,
    },
    /// AS: the initial (unquantized) speculation `Ta / D`; the per-OR
    /// re-speculation table is the plan's `branch_avg`.
    As {
        /// Initial speculative speed before any OR fires.
        initial_spec: f64,
    },
}

impl SchemeParams {
    /// Derives the parameters a scheme's policy would compute from
    /// `plan` on `model` under `overheads` — the independent
    /// re-derivation `pas check` compares a stored artifact against.
    pub fn derive(
        scheme: Scheme,
        plan: &OfflinePlan,
        model: &ProcessorModel,
        overheads: Overheads,
    ) -> Self {
        let _span = pas_obs::profile::span_with(pas_obs::profile::names::ARTIFACT_SPEEDS, || {
            scheme.name().to_string()
        });
        match scheme {
            Scheme::Npm => SchemeParams::Npm,
            Scheme::Gss => SchemeParams::Gss,
            Scheme::Spm => SchemeParams::Spm {
                static_speed: SpmPolicy::new(plan, model, overheads).point().speed,
            },
            Scheme::Ss1 => SchemeParams::Ss1 {
                spec_speed: Ss1Policy::new(plan, model, overheads).spec_speed(),
            },
            Scheme::Ss2 => {
                let (low, high, switch_time) = Ss2Policy::new(plan, model, overheads).parameters();
                SchemeParams::Ss2 {
                    low,
                    high,
                    switch_time,
                }
            }
            Scheme::As => SchemeParams::As {
                initial_spec: plan.avg_total / plan.deadline,
            },
        }
    }

    /// The lowest normalized speed any task can execute at under these
    /// parameters: the scheme's speculative/static floor, or the
    /// platform's `S_min` for the purely dynamic schemes. Every operating
    /// point the on-line phase selects is at least this fast (quantization
    /// only rounds *up*), so static analyses may divide by it to bound
    /// execution times from above.
    pub fn speed_floor(&self, model: &ProcessorModel) -> f64 {
        match self {
            SchemeParams::Npm => 1.0,
            SchemeParams::Spm { static_speed } => *static_speed,
            SchemeParams::Gss | SchemeParams::As { .. } => model.min_speed(),
            SchemeParams::Ss1 { spec_speed } => spec_speed.max(model.min_speed()),
            SchemeParams::Ss2 { low, .. } => low.max(model.min_speed()),
        }
    }

    /// The scheme these parameters belong to.
    pub fn scheme(&self) -> Scheme {
        match self {
            SchemeParams::Npm => Scheme::Npm,
            SchemeParams::Spm { .. } => Scheme::Spm,
            SchemeParams::Gss => Scheme::Gss,
            SchemeParams::Ss1 { .. } => Scheme::Ss1,
            SchemeParams::Ss2 { .. } => Scheme::Ss2,
            SchemeParams::As { .. } => Scheme::As,
        }
    }
}

/// The complete serialized offline artifact for one
/// (workload, platform, scheme) triple: everything the on-line phase
/// needs, in a versioned, diffable, independently re-derivable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanArtifact {
    /// Schema version ([`PLAN_SCHEMA_VERSION`]); checked by `pas check`
    /// before anything else (`PAS0401`).
    pub schema_version: u32,
    /// Label of the workload the plan was built from (builtin name or
    /// file path) — informational; verification uses `--against`.
    pub workload: String,
    /// Label of the platform the plan was built for.
    pub platform: String,
    /// The scheme whose parameters are embedded.
    pub scheme: Scheme,
    /// The overhead configuration the plan's PMP reservation assumed.
    pub overheads: Overheads,
    /// Scheme-specific derived parameters.
    pub params: SchemeParams,
    /// The full off-line phase output: canonical schedule, latest start
    /// times, `Tw`/`Ta`, per-OR-branch remaining-time tables.
    pub plan: OfflinePlan,
}

impl PlanArtifact {
    /// Builds the artifact for one scheme from a prepared [`Setup`].
    pub fn from_setup(setup: &Setup, scheme: Scheme, workload: &str, platform: &str) -> Self {
        PlanArtifact {
            schema_version: PLAN_SCHEMA_VERSION,
            workload: workload.to_string(),
            platform: platform.to_string(),
            scheme,
            overheads: setup.overheads,
            params: SchemeParams::derive(scheme, &setup.plan, &setup.model, setup.overheads),
            plan: setup.plan.clone(),
        }
    }

    /// Serializes to the canonical pretty-JSON form (deterministic: equal
    /// plans produce byte-identical output).
    pub fn to_json(&self) -> Result<String, String> {
        let _span = pas_obs::profile::span(pas_obs::profile::names::ARTIFACT_SERIALIZE);
        serde_json::to_string_pretty(self).map_err(|e| format!("serializing plan: {e}"))
    }

    /// Deserializes an artifact from JSON. Parsing does not check the
    /// schema version — that is `pas check`'s job (`PAS0401`), so older
    /// files still produce a diagnostic instead of a parse error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parsing plan: {e}"))
    }

    /// The content digest of this artifact: SHA-256 over the canonical
    /// JSON serialization (workload and platform labels, scheme,
    /// overheads, derived parameters and the full offline plan).
    ///
    /// Because [`PlanArtifact::to_json`] is deterministic, equal plans
    /// digest identically across runs and machines, and *any* field
    /// change produces a different digest — which is what lets `pas
    /// serve` use the digest as a content-addressed cache key and `pas
    /// plan` print it as a verifiable receipt.
    pub fn digest(&self) -> Result<String, String> {
        let json = self.to_json()?;
        let _span = pas_obs::profile::span(pas_obs::profile::names::ARTIFACT_DIGEST);
        Ok(crate::digest::sha256_hex(json.as_bytes()))
    }

    /// Rebuilds a runnable [`Setup`] around the *deserialized* plan —
    /// no re-derivation, the engine runs from exactly what the file said
    /// (shape-checked against `graph` first).
    pub fn into_setup(self, graph: AndOrGraph, model: ProcessorModel) -> Result<Setup, SetupError> {
        Setup::from_plan(graph, model, self.plan, self.overheads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;

    fn setup() -> Setup {
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ]);
        Setup::for_load(
            app.lower().expect("fixture lowers"),
            ProcessorModel::xscale(),
            2,
            0.5,
        )
        .expect("feasible setup")
    }

    #[test]
    fn params_match_policies() {
        let s = setup();
        let spm = SpmPolicy::new(&s.plan, &s.model, s.overheads);
        match SchemeParams::derive(Scheme::Spm, &s.plan, &s.model, s.overheads) {
            SchemeParams::Spm { static_speed } => {
                assert!((static_speed - spm.point().speed).abs() < 1e-15)
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let ss2 = Ss2Policy::new(&s.plan, &s.model, s.overheads);
        match SchemeParams::derive(Scheme::Ss2, &s.plan, &s.model, s.overheads) {
            SchemeParams::Ss2 {
                low,
                high,
                switch_time,
            } => {
                assert_eq!((low, high, switch_time), ss2.parameters());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        for scheme in Scheme::ALL {
            let p = SchemeParams::derive(scheme, &s.plan, &s.model, s.overheads);
            assert_eq!(p.scheme(), scheme);
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let s = setup();
        for scheme in Scheme::ALL {
            let a = PlanArtifact::from_setup(&s, scheme, "fixture", "xscale");
            let json = a.to_json().expect("serializes");
            let back = PlanArtifact::from_json(&json).expect("deserializes");
            assert_eq!(back.schema_version, PLAN_SCHEMA_VERSION);
            assert_eq!(back.scheme, scheme);
            let json2 = back.to_json().expect("re-serializes");
            assert_eq!(json, json2, "{} round trip", scheme.name());
        }
    }

    #[test]
    fn into_setup_preserves_the_plan_verbatim() {
        let s = setup();
        let a = PlanArtifact::from_setup(&s, Scheme::Gss, "fixture", "xscale");
        let json = a.to_json().expect("serializes");
        let back = PlanArtifact::from_json(&json).expect("deserializes");
        let s2 = back
            .into_setup(s.graph.clone(), s.model.clone())
            .expect("deserialized plan drives a setup");
        assert_eq!(s2.plan.num_procs, s.plan.num_procs);
        assert_eq!(s2.plan.deadline.to_bits(), s.plan.deadline.to_bits());
        assert_eq!(s2.plan.worst_total.to_bits(), s.plan.worst_total.to_bits());
        assert_eq!(s2.plan.lst.len(), s.plan.lst.len());
    }

    #[test]
    fn digest_is_deterministic_across_builds() {
        // Building the same artifact twice from scratch (fresh Setup,
        // fresh serialization) must produce the same digest — the
        // property the `pas serve` content-addressed cache rests on.
        for scheme in Scheme::ALL {
            let a = PlanArtifact::from_setup(&setup(), scheme, "fixture", "xscale");
            let b = PlanArtifact::from_setup(&setup(), scheme, "fixture", "xscale");
            let da = a.digest().expect("digests");
            assert_eq!(da, b.digest().expect("digests"), "{}", scheme.name());
            assert_eq!(da.len(), 64);
            assert!(da.chars().all(|c| c.is_ascii_hexdigit()));
            // Deserialization preserves the digest too.
            let back =
                PlanArtifact::from_json(&a.to_json().expect("serializes")).expect("deserializes");
            assert_eq!(back.digest().expect("digests"), da);
        }
    }

    #[test]
    fn digest_changes_when_any_field_changes() {
        let base = PlanArtifact::from_setup(&setup(), Scheme::Ss2, "fixture", "xscale");
        let d0 = base.digest().expect("digests");
        // Label fields.
        let mut m = base.clone();
        m.workload = "other".into();
        assert_ne!(m.digest().expect("digests"), d0, "workload label");
        let mut m = base.clone();
        m.platform = "transmeta".into();
        assert_ne!(m.digest().expect("digests"), d0, "platform label");
        // Scheme and derived parameters.
        let mut m = base.clone();
        m.scheme = Scheme::Gss;
        m.params = SchemeParams::Gss;
        assert_ne!(m.digest().expect("digests"), d0, "scheme");
        let mut m = base.clone();
        if let SchemeParams::Ss2 { switch_time, .. } = &mut m.params {
            *switch_time += 0.001;
        }
        assert_ne!(m.digest().expect("digests"), d0, "switch time");
        // Deep plan fields and the schema version.
        let mut m = base.clone();
        m.plan.deadline += 1.0;
        assert_ne!(m.digest().expect("digests"), d0, "plan deadline");
        let mut m = base.clone();
        m.schema_version += 1;
        assert_ne!(m.digest().expect("digests"), d0, "schema version");
    }

    #[test]
    fn mismatched_graph_is_rejected() {
        let s = setup();
        let a = PlanArtifact::from_setup(&s, Scheme::Gss, "fixture", "xscale");
        let other = Segment::task("solo", 2.0, 1.0)
            .lower()
            .expect("fixture lowers");
        let err = a
            .into_setup(other, ProcessorModel::xscale())
            .expect_err("wrong graph must be rejected");
        assert!(err.to_string().contains("plan"), "{err}");
    }
}
