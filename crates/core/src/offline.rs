//! The off-line phase: canonical schedules, execution orders, latest start
//! times, and the per-PMP worst/average remaining-time statistics.

use andor_graph::{AndOrGraph, NodeId, SectionGraph, SectionId};
use mp_sim::DispatchOrder;
use pas_obs::profile;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why the off-line phase rejected a problem instance.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The longest path of the canonical schedule misses the deadline; no
    /// on-line scheme can save it (paper §3.2: "If Tʷ > D, the algorithm
    /// fails to guarantee the deadline").
    Infeasible {
        /// Worst-case canonical finish time of the longest path.
        worst_finish: f64,
        /// The requested deadline.
        deadline: f64,
    },
    /// The deadline must be positive and finite.
    BadDeadline(f64),
    /// At least one processor is required.
    NoProcessors,
    /// An OR branch has no program section — the section graph and the
    /// application graph disagree (e.g. a plan built against a different
    /// application).
    MissingBranchSection {
        /// Name of the OR node.
        or: String,
        /// The branch index with no section.
        branch: usize,
    },
    /// A deserialized plan does not fit the application it is being
    /// attached to (table lengths disagree with the graph or its section
    /// decomposition).
    PlanGraphMismatch {
        /// What disagreed, in human terms.
        detail: String,
    },
}

/// Former name of [`PlanError`], kept as an alias for downstream code.
pub type OfflineError = PlanError;

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Infeasible {
                worst_finish,
                deadline,
            } => write!(
                f,
                "infeasible: worst-case finish {worst_finish} exceeds deadline {deadline}"
            ),
            PlanError::BadDeadline(d) => write!(f, "bad deadline {d}"),
            PlanError::NoProcessors => write!(f, "at least one processor required"),
            PlanError::MissingBranchSection { or, branch } => {
                write!(f, "OR node '{or}' branch {branch} has no program section")
            }
            PlanError::PlanGraphMismatch { detail } => {
                write!(f, "plan does not match the application: {detail}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Everything the on-line phase needs, computed once per
/// (application, processor count, deadline) triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflinePlan {
    /// Deadline the plan was built for (ms).
    pub deadline: f64,
    /// Number of processors the canonical schedules assume.
    pub num_procs: usize,
    /// Canonical dispatch order (LTF list scheduling) per section.
    pub dispatch: DispatchOrder,
    /// Latest start time per node (indexed by `NodeId::index`); `None`
    /// for OR nodes, which carry no execution of their own.
    pub lst: Vec<Option<f64>>,
    /// `Tw` — worst-case canonical finish time along the longest path.
    pub worst_total: f64,
    /// `Ta` — average-case finish time, weighted over OR branch
    /// probabilities.
    pub avg_total: f64,
    /// `Tw_k` per `(or, branch)`: worst remaining time from the PMP after
    /// the OR selects branch `k` to the end of the application.
    /// Serialized as a sorted entry list (tuple keys are not JSON object
    /// keys).
    pub branch_worst: HashMap<(NodeId, usize), f64>,
    /// `Ta_k` per `(or, branch)`: average remaining time analogously.
    pub branch_avg: HashMap<(NodeId, usize), f64>,
    /// Canonical start time of each node *relative to its section start*
    /// in the worst-case canonical schedule, parallel to
    /// `dispatch.per_section` (for tooling: canonical Gantt rendering,
    /// schedule inspection).
    pub canonical_start_rel: Vec<Vec<f64>>,
    /// Canonical section length at WCET (indexed by `SectionId::index`).
    pub section_worst_len: Vec<f64>,
    /// Canonical section length replayed with ACETs.
    pub section_avg_len: Vec<f64>,
    /// Worst remaining time *after* each section completes (over its exit
    /// OR's alternatives; 0 when the application ends with the section).
    pub worst_after: Vec<f64>,
}

impl OfflinePlan {
    /// Runs the full off-line phase with no per-task PMP reservation
    /// (appropriate when overheads are disabled).
    pub fn build(
        g: &AndOrGraph,
        sections: &SectionGraph,
        num_procs: usize,
        deadline: f64,
    ) -> Result<Self, PlanError> {
        Self::build_with_pmp_reserve(g, sections, num_procs, deadline, 0.0)
    }

    /// Runs the full off-line phase, inflating every computation node's
    /// canonical duration by `pmp_reserve_ms` — an upper bound on the
    /// power-management-point computation time (the PMP code runs before
    /// *every* task in the dynamic schemes, even when it decides to stay
    /// at full speed, so the canonical worst case must include it for the
    /// deadline guarantee to survive overheads; cf. the paper's §5 and
    /// the overhead treatment in the authors' companion paper).
    pub fn build_with_pmp_reserve(
        g: &AndOrGraph,
        sections: &SectionGraph,
        num_procs: usize,
        deadline: f64,
        pmp_reserve_ms: f64,
    ) -> Result<Self, PlanError> {
        let _build_span = profile::span(profile::names::OFFLINE_BUILD);
        if num_procs == 0 {
            return Err(PlanError::NoProcessors);
        }
        if !(deadline.is_finite() && deadline > 0.0) {
            return Err(PlanError::BadDeadline(deadline));
        }

        // Round 1: canonical LTF schedule per section (WCET, full speed)
        // plus an average-case replay of the same order.
        let n_sections = sections.len();
        let canonical_span = profile::span_with(profile::names::OFFLINE_CANONICAL, || {
            format!("{n_sections} sections")
        });
        let mut per_section_order = Vec::with_capacity(n_sections);
        let mut canon: Vec<SectionSchedule> = Vec::with_capacity(n_sections);
        for sid in 0..n_sections {
            let nodes = &sections.section(SectionId(sid as u32)).nodes;
            let order = ltf_order(g, nodes, num_procs);
            let worst = replay(g, &order, num_procs, DurationKind::Wcet, pmp_reserve_ms);
            let avg = replay(g, &order, num_procs, DurationKind::Acet, pmp_reserve_ms);
            per_section_order.push(order);
            canon.push(SectionSchedule { worst, avg });
        }
        drop(canonical_span);

        // Remaining-time recursion over the section chain. Sections are
        // created in topological order of the chain (entry OR processed
        // before its branch sections), so a reverse scan sees every
        // continuation before the sections that lead to it.
        let remaining_span = profile::span(profile::names::OFFLINE_REMAINING);
        let mut worst_after = vec![0.0_f64; n_sections];
        let mut avg_after = vec![0.0_f64; n_sections];
        let mut branch_worst = HashMap::new();
        let mut branch_avg = HashMap::new();
        for sid in (0..n_sections).rev() {
            let section = sections.section(SectionId(sid as u32));
            let Some(or) = section.exit_or else {
                continue; // application ends here: zero remaining
            };
            let branches = g.or_branches(or);
            let mut w = 0.0_f64;
            let mut a = 0.0_f64;
            for (k, (_, p)) in branches.iter().enumerate() {
                let b = sections
                    .branch_section(or, k)
                    .ok_or_else(|| PlanError::MissingBranchSection {
                        or: g.node(or).name.clone(),
                        branch: k,
                    })?
                    .index();
                let bw = canon[b].worst.makespan + worst_after[b];
                let ba = canon[b].avg.makespan + avg_after[b];
                branch_worst.insert((or, k), bw);
                branch_avg.insert((or, k), ba);
                w = w.max(bw);
                a += p * ba;
            }
            worst_after[sid] = w;
            avg_after[sid] = a;
        }

        let root = sections.root().index();
        let worst_total = canon[root].worst.makespan + worst_after[root];
        let avg_total = canon[root].avg.makespan + avg_after[root];
        drop(remaining_span);
        if worst_total > deadline * (1.0 + 1e-12) {
            return Err(PlanError::Infeasible {
                worst_finish: worst_total,
                deadline,
            });
        }

        // Round 2: shift — latest start times. For task i in section s:
        // LST_i = D − [(Lʷ(s) − start_rel_i) + worst_after(s)].
        let _lst_span = profile::span(profile::names::OFFLINE_LST);
        let mut lst = vec![None; g.len()];
        for sid in 0..n_sections {
            let lw = canon[sid].worst.makespan;
            for (&node, &start_rel) in per_section_order[sid]
                .iter()
                .zip(canon[sid].worst.start_rel.iter())
            {
                lst[node.index()] = Some(deadline - ((lw - start_rel) + worst_after[sid]));
            }
        }

        Ok(OfflinePlan {
            deadline,
            num_procs,
            dispatch: DispatchOrder {
                per_section: per_section_order,
            },
            lst,
            worst_total,
            avg_total,
            branch_worst,
            branch_avg,
            canonical_start_rel: canon.iter().map(|c| c.worst.start_rel.clone()).collect(),
            section_worst_len: canon.iter().map(|c| c.worst.makespan).collect(),
            section_avg_len: canon.iter().map(|c| c.avg.makespan).collect(),
            worst_after,
        })
    }

    /// Static slack available before the application starts: `D − Tw`.
    pub fn static_slack(&self) -> f64 {
        self.deadline - self.worst_total
    }

    /// Load of this plan in the paper's sense: canonical longest-path
    /// length over the deadline.
    pub fn load(&self) -> f64 {
        self.worst_total / self.deadline
    }
}

struct SectionSchedule {
    worst: ReplayOut,
    avg: ReplayOut,
}

enum DurationKind {
    Wcet,
    Acet,
}

impl DurationKind {
    /// Node duration plus the PMP reservation (computation nodes only —
    /// dummy synchronization nodes run no power-management code).
    fn of(&self, g: &AndOrGraph, n: NodeId, pmp_reserve_ms: f64) -> f64 {
        let kind = &g.node(n).kind;
        let base = match self {
            DurationKind::Wcet => kind.wcet(),
            DurationKind::Acet => kind.acet(),
        };
        if kind.is_computation() {
            base + pmp_reserve_ms
        } else {
            base
        }
    }
}

/// Longest-task-first list scheduling of one section's nodes on
/// `num_procs` processors: returns the dispatch order.
///
/// Classic event-driven list scheduling: whenever a processor is free the
/// longest *ready* task (by WCET, ties by node id for determinism) is
/// dispatched. Synchronization (AND) nodes have zero length and flow
/// through the same queue, exactly as the paper treats dummy tasks.
fn ltf_order(g: &AndOrGraph, nodes: &[NodeId], num_procs: usize) -> Vec<NodeId> {
    let in_section: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    let mut indeg: HashMap<NodeId, usize> = nodes
        .iter()
        .map(|&n| {
            let d = g
                .node(n)
                .preds
                .iter()
                .filter(|p| in_section.contains(p))
                .count();
            (n, d)
        })
        .collect();
    // Ready pool: (wcet, id) — popped longest-first.
    let mut ready: Vec<NodeId> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
    sort_ltf(g, &mut ready);

    let mut avail = vec![0.0_f64; num_procs];
    let mut finish: HashMap<NodeId, f64> = HashMap::new();
    let mut ready_at: HashMap<NodeId, f64> = nodes.iter().map(|&n| (n, 0.0)).collect();
    let mut order = Vec::with_capacity(nodes.len());
    // Tasks whose ready time is in the future, keyed by that time.
    let mut pending: Vec<NodeId> = Vec::new();

    let mut now = 0.0_f64;
    while order.len() < nodes.len() {
        // Promote pending tasks that became ready by `now`.
        let mut promoted = false;
        pending.retain(|&n| {
            if ready_at[&n] <= now + 1e-12 {
                ready.push(n);
                promoted = true;
                false
            } else {
                true
            }
        });
        if promoted {
            sort_ltf(g, &mut ready);
        }

        if let Some(&n) = ready.first() {
            // Dispatch the longest ready task on the earliest-free
            // processor at `now` if one is free; otherwise advance time.
            let (p, &p_avail) = avail
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("num_procs > 0 checked before scheduling");
            if p_avail <= now + 1e-12 {
                ready.remove(0);
                let start = now.max(ready_at[&n]);
                let end = start + g.node(n).kind.wcet();
                avail[p] = end;
                finish.insert(n, end);
                order.push(n);
                for &s in &g.node(n).succs {
                    if !in_section.contains(&s) {
                        continue;
                    }
                    let Some(e) = indeg.get_mut(&s) else { continue };
                    *e -= 1;
                    let Some(r) = ready_at.get_mut(&s) else {
                        continue;
                    };
                    *r = r.max(end);
                    if *e == 0 {
                        if end <= now + 1e-12 {
                            ready.push(s);
                            sort_ltf(g, &mut ready);
                        } else {
                            pending.push(s);
                        }
                    }
                }
                continue;
            }
        }
        // Advance to the next event: earliest processor completion or
        // earliest pending readiness.
        let next_proc = avail
            .iter()
            .copied()
            .filter(|&t| t > now + 1e-12)
            .fold(f64::INFINITY, f64::min);
        let next_ready = pending
            .iter()
            .map(|n| ready_at[n])
            .filter(|&t| t > now + 1e-12)
            .fold(f64::INFINITY, f64::min);
        let next = next_proc.min(next_ready);
        debug_assert!(next.is_finite(), "list scheduler stalled");
        now = next;
    }
    order
}

fn sort_ltf(g: &AndOrGraph, ready: &mut [NodeId]) {
    ready.sort_by(|&a, &b| {
        g.node(b)
            .kind
            .wcet()
            .total_cmp(&g.node(a).kind.wcet())
            .then(a.cmp(&b))
    });
}

struct ReplayOut {
    /// Start time of each node relative to the section start, parallel to
    /// the dispatch order.
    start_rel: Vec<f64>,
    /// Section completion time.
    makespan: f64,
}

/// Replays a dispatch order with the engine's exact semantics (dispatch
/// serialization + earliest-available processor) and the chosen duration
/// kind. The worst-case replay *is* the canonical schedule: the on-line
/// engine at full speed with WCETs reproduces it step for step, which is
/// what makes the latest start times safe.
fn replay(
    g: &AndOrGraph,
    order: &[NodeId],
    num_procs: usize,
    kind: DurationKind,
    pmp_reserve_ms: f64,
) -> ReplayOut {
    let in_section: std::collections::HashSet<NodeId> = order.iter().copied().collect();
    let mut finish: HashMap<NodeId, f64> = HashMap::new();
    let mut avail = vec![0.0_f64; num_procs];
    let mut last_dispatch = 0.0_f64;
    let mut start_rel = Vec::with_capacity(order.len());
    let mut makespan = 0.0_f64;
    for &node in order {
        let ready = g
            .node(node)
            .preds
            .iter()
            .filter(|p| in_section.contains(p))
            .map(|p| finish[p])
            .fold(0.0_f64, f64::max);
        let dur = kind.of(g, node, pmp_reserve_ms);
        let start = if g.node(node).kind.is_computation() {
            let (p, &p_avail) = avail
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("num_procs > 0 checked before scheduling");
            let s = ready.max(last_dispatch).max(p_avail);
            avail[p] = s + dur;
            s
        } else {
            ready.max(last_dispatch)
        };
        last_dispatch = start;
        let end = start + dur;
        finish.insert(node, end);
        makespan = makespan.max(end);
        start_rel.push(start);
    }
    ReplayOut {
        start_rel,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::{GraphBuilder, Segment};

    fn plan_of(app: &Segment, m: usize, d: f64) -> (AndOrGraph, SectionGraph, OfflinePlan) {
        let g = app.lower().expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        let plan = OfflinePlan::build(&g, &sg, m, d).expect("plan builds");
        (g, sg, plan)
    }

    #[test]
    fn single_chain_tw_is_sum() {
        let app = Segment::seq([
            Segment::task("A", 3.0, 1.0),
            Segment::task("B", 4.0, 2.0),
            Segment::task("C", 5.0, 2.5),
        ]);
        let (_, _, plan) = plan_of(&app, 1, 20.0);
        assert!((plan.worst_total - 12.0).abs() < 1e-12);
        assert!((plan.avg_total - 5.5).abs() < 1e-12);
        assert!((plan.static_slack() - 8.0).abs() < 1e-12);
        assert!((plan.load() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_two_procs_makespan_is_max() {
        let app = Segment::par([Segment::task("X", 6.0, 3.0), Segment::task("Y", 4.0, 2.0)]);
        let (_, _, plan) = plan_of(&app, 2, 10.0);
        assert!((plan.worst_total - 6.0).abs() < 1e-12);
        assert!((plan.avg_total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ltf_prefers_longest_first() {
        // Three tasks on two processors: LTF dispatches 6 then 5 then 2 →
        // makespan 7 (2 rides behind 5). Shortest-first would give 8.
        let app = Segment::par([
            Segment::task("S", 2.0, 1.0),
            Segment::task("M", 5.0, 2.0),
            Segment::task("L", 6.0, 3.0),
        ]);
        let (g, _, plan) = plan_of(&app, 2, 20.0);
        assert!((plan.worst_total - 7.0).abs() < 1e-12);
        // Dispatch order within the root section: fork, L, M, S, join.
        let order = &plan.dispatch.per_section[0];
        let names: Vec<&str> = order.iter().map(|&n| g.node(n).name.as_str()).collect();
        let l = names.iter().position(|n| *n == "L").expect("L in order");
        let m = names.iter().position(|n| *n == "M").expect("M in order");
        let s = names.iter().position(|n| *n == "S").expect("S in order");
        assert!(l < m && m < s);
    }

    #[test]
    fn or_branches_worst_takes_max_avg_takes_weighted() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 1.0),
            Segment::branch([
                (0.25, Segment::task("B", 8.0, 4.0)),
                (0.75, Segment::task("C", 4.0, 2.0)),
            ]),
        ]);
        let (_, _, plan) = plan_of(&app, 1, 20.0);
        assert!((plan.worst_total - 10.0).abs() < 1e-12, "2 + max(8,4)");
        assert!(
            (plan.avg_total - (1.0 + 0.25 * 4.0 + 0.75 * 2.0)).abs() < 1e-12,
            "1 + weighted branch avg, got {}",
            plan.avg_total
        );
    }

    #[test]
    fn branch_pmp_stats_recorded() {
        let app = Segment::seq([
            Segment::task("A", 2.0, 1.0),
            Segment::branch([
                (0.5, Segment::task("B", 8.0, 4.0)),
                (0.5, Segment::task("C", 4.0, 2.0)),
            ]),
            Segment::task("D", 3.0, 1.5),
        ]);
        let (g, _, plan) = plan_of(&app, 1, 30.0);
        let or = g
            .iter()
            .find(|(_, n)| n.kind.is_or() && n.succs.len() == 2)
            .expect("fixture has a two-way OR")
            .0;
        // Branch 0 (B): 8 + 3 (D) remaining worst; branch 1 (C): 4 + 3.
        assert!((plan.branch_worst[&(or, 0)] - 11.0).abs() < 1e-12);
        assert!((plan.branch_worst[&(or, 1)] - 7.0).abs() < 1e-12);
        assert!((plan.branch_avg[&(or, 0)] - 5.5).abs() < 1e-12);
        assert!((plan.branch_avg[&(or, 1)] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn lst_shifts_schedule_to_deadline() {
        // One chain, D = 20, Tw = 12: whole schedule shifts right by 8.
        let app = Segment::seq([
            Segment::task("A", 3.0, 1.0),
            Segment::task("B", 4.0, 2.0),
            Segment::task("C", 5.0, 2.5),
        ]);
        let (g, _, plan) = plan_of(&app, 1, 20.0);
        let by_name = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name == name)
                .and_then(|(id, _)| plan.lst[id.index()])
                .expect("task has an LST")
        };
        assert!((by_name("A") - 8.0).abs() < 1e-12);
        assert!((by_name("B") - 11.0).abs() < 1e-12);
        assert!((by_name("C") - 15.0).abs() < 1e-12);
        // Last task's LST + wcet = deadline exactly.
        assert!((by_name("C") + 5.0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn lst_accounts_for_worst_continuation() {
        // A, then branch (B:8 | C:4). A's LST must assume the 8-branch.
        let app = Segment::seq([
            Segment::task("A", 2.0, 1.0),
            Segment::branch([
                (0.5, Segment::task("B", 8.0, 4.0)),
                (0.5, Segment::task("C", 4.0, 2.0)),
            ]),
        ]);
        let (g, _, plan) = plan_of(&app, 1, 20.0);
        let a = g.iter().find(|(_, n)| n.name == "A").expect("task A").0;
        // Remaining worst at A's start: 2 + 8 = 10 → LST = 10.
        assert!((plan.lst[a.index()].expect("A has an LST") - 10.0).abs() < 1e-12);
        let c = g.iter().find(|(_, n)| n.name == "C").expect("task C").0;
        // C's own path: remaining worst at C's start is just C (4) →
        // LST = 16, even though the B path would have left only 12.
        assert!((plan.lst[c.index()].expect("C has an LST") - 16.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let app = Segment::task("A", 10.0, 5.0);
        let g = app.lower().expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        let err = OfflinePlan::build(&g, &sg, 1, 9.0).expect_err("must be infeasible");
        assert!(matches!(err, PlanError::Infeasible { .. }));
    }

    #[test]
    fn bad_parameters_rejected() {
        let app = Segment::task("A", 1.0, 0.5);
        let g = app.lower().expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        assert_eq!(
            OfflinePlan::build(&g, &sg, 0, 10.0).expect_err("no processors"),
            PlanError::NoProcessors
        );
        assert!(matches!(
            OfflinePlan::build(&g, &sg, 1, f64::NAN).expect_err("NaN deadline"),
            PlanError::BadDeadline(_)
        ));
        assert!(matches!(
            OfflinePlan::build(&g, &sg, 1, -1.0).expect_err("negative deadline"),
            PlanError::BadDeadline(_)
        ));
    }

    #[test]
    fn exact_deadline_is_feasible() {
        let app = Segment::task("A", 10.0, 5.0);
        let g = app.lower().expect("fixture lowers");
        let sg = SectionGraph::build(&g).expect("fixture sections");
        let plan = OfflinePlan::build(&g, &sg, 1, 10.0).expect("plan builds");
        assert!((plan.static_slack()).abs() < 1e-12);
    }

    #[test]
    fn dependent_tasks_respect_precedence_in_order() {
        // Diamond of tasks: A -> (B, C) -> D via AND nodes. B,C parallel.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 2.0, 1.0);
        let x = b.task("B", 3.0, 1.5);
        let y = b.task("C", 5.0, 2.5);
        let d = b.task("D", 1.0, 0.5);
        b.edge(a, x).expect("edge is valid");
        b.edge(a, y).expect("edge is valid");
        b.edge(x, d).expect("edge is valid");
        b.edge(y, d).expect("edge is valid");
        let g = b.build().expect("diamond builds");
        let sg = SectionGraph::build(&g).expect("diamond sections");
        let plan = OfflinePlan::build(&g, &sg, 2, 10.0).expect("plan builds");
        // 2 + 5 + 1 = 8 on two processors.
        assert!((plan.worst_total - 8.0).abs() < 1e-12);
        let order = &plan.dispatch.per_section[0];
        let pos = |id: NodeId| order.iter().position(|&n| n == id).expect("node in order");
        assert!(pos(a) < pos(x) && pos(a) < pos(y) && pos(y) < pos(d));
        // LTF dispatches C (5) before B (3) once both are ready.
        assert!(pos(y) < pos(x));
    }

    #[test]
    fn nested_or_remaining_times_recursive() {
        // A -> O1 -> { B -> O2 -> {C(6)|D(2)} | E(3) }
        let app = Segment::seq([
            Segment::task("A", 1.0, 1.0),
            Segment::branch([
                (
                    0.5,
                    Segment::seq([
                        Segment::task("B", 1.0, 1.0),
                        Segment::branch([
                            (0.5, Segment::task("C", 6.0, 6.0)),
                            (0.5, Segment::task("D", 2.0, 2.0)),
                        ]),
                    ]),
                ),
                (0.5, Segment::task("E", 3.0, 3.0)),
            ]),
        ]);
        let (_, _, plan) = plan_of(&app, 1, 20.0);
        // Worst: 1 + max(1+max(6,2), 3) = 8.
        assert!((plan.worst_total - 8.0).abs() < 1e-12);
        // Avg: 1 + 0.5·(1 + 0.5·6 + 0.5·2) + 0.5·3 = 1 + 2.5 + 1.5 = 5.
        assert!((plan.avg_total - 5.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_starts_follow_dispatch_order() {
        let app = Segment::par([
            Segment::task("L", 6.0, 3.0),
            Segment::task("M", 5.0, 2.0),
            Segment::task("S", 2.0, 1.0),
        ]);
        let (_, _, plan) = plan_of(&app, 2, 20.0);
        let starts = &plan.canonical_start_rel[0];
        // Starts are non-decreasing along the dispatch order, and the
        // section makespan bounds every start.
        for w in starts.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        for s in starts {
            assert!(*s <= plan.section_worst_len[0] + 1e-12);
        }
    }

    #[test]
    fn plan_serde_round_trip() {
        let app = Segment::seq([Segment::task("A", 2.0, 1.0), Segment::task("B", 3.0, 2.0)]);
        let (_, _, plan) = plan_of(&app, 1, 10.0);
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: OfflinePlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(back.num_procs, 1);
        assert!((back.worst_total - plan.worst_total).abs() < 1e-12);
    }
}
