#![warn(missing_docs)]

//! Power-aware scheduling of AND/OR applications on multiprocessors —
//! the primary contribution of Zhu et al., ICPP'02.
//!
//! The crate implements both phases of the paper's scheduler:
//!
//! **Off-line phase** ([`offline`]): for each program section, a *canonical
//! schedule* is generated with longest-task-first (LTF) list scheduling,
//! every task assuming its worst-case execution time at maximum speed. From
//! the canonical schedules the phase derives
//!
//! * the global dispatch order the on-line phase must preserve,
//! * the application's worst/average finish times (`Tw`, `Ta`) stored at the
//!   initial power management point,
//! * per-OR-branch worst/average remaining times (`Tw_k`, `Ta_k`) stored at
//!   the PMPs before each OR node, and
//! * each task's *latest start time* (`LST_i`) — the canonical schedules
//!   shifted right so the worst case finishes exactly at the deadline
//!   (recursively across embedded OR nodes).
//!
//! If the worst path cannot meet the deadline the phase fails
//! ([`PlanError::Infeasible`]).
//!
//! **On-line phase** ([`policies`]): six speed-selection schemes behind the
//! engine's [`mp_sim::Policy`] trait:
//!
//! | scheme | description |
//! |--------|-------------|
//! | NPM    | no power management (baseline) |
//! | SPM    | one static speed from static slack only |
//! | GSS    | greedy slack sharing — the paper's Figure-2 algorithm |
//! | SS(1)  | static speculation, single speed floor `Ta/D` |
//! | SS(2)  | static speculation, two speeds around the ideal `Ta/D` |
//! | AS     | adaptive speculation after every OR node |
//!
//! Every dynamic scheme lower-bounds its speculative speed by the
//! GSS-guaranteed speed, so Theorem 1's deadline guarantee carries over.
//! Speed-change and speed-computation overheads are *reserved out of the
//! claimed slack* before slowing down, keeping the guarantee valid with
//! overheads enabled.
//!
//! [`harness::Setup`] bundles graph + plan + platform into a ready-to-run
//! experiment configuration.

pub mod artifact;
pub mod digest;
pub mod exhaustive;
pub mod harness;
pub mod offline;
pub mod oracle;
pub mod policies;

pub use artifact::{PlanArtifact, SchemeParams, PLAN_SCHEMA_VERSION};
pub use digest::sha256_hex;
pub use exhaustive::{optimal_assignment, AssignmentPolicy, OptimalAssignment};
pub use harness::{pmp_reserve, Setup, SetupError};
pub use offline::{OfflineError, OfflinePlan, PlanError};
pub use oracle::OraclePolicy;
pub use policies::{
    AsPolicy, EnergyFloorPolicy, GssPolicy, ProportionalPolicy, Scheme, SpmPolicy, Ss1Policy,
    Ss2Policy,
};
