//! The on-line phase: the paper's six speed-selection schemes.
//!
//! All dynamic schemes share one safety rule: a task's speed is never set
//! below the *GSS-guaranteed* speed — the speed at which the task, started
//! now, still finishes by its shifted-canonical estimated end time
//! (`EET_i = LST_i + c_i`). The speculative schemes only ever *raise* that
//! floor toward a statistically better single speed, so Theorem 1's
//! deadline guarantee extends to every scheme (paper §4.1: "the SS
//! algorithms never set a speed below the speed determined by `GSS`").
//!
//! Overheads are reserved out of the claimed slack before slowing down:
//! the speed-computation time at the current speed plus two voltage
//! transitions (one to slow down now, one to speed back up later).

use crate::offline::OfflinePlan;
use andor_graph::NodeId;
use dvfs_power::{OperatingPoint, Overheads, ProcessorModel};
use mp_sim::{DispatchCtx, MaxSpeed, Policy, SpeedDecision};
use serde::{Deserialize, Serialize};

/// The scheme identifiers of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// No power management — the normalization baseline.
    Npm,
    /// Static power management: one speed from static slack.
    Spm,
    /// Greedy slack sharing (the paper's extended Figure-2 algorithm).
    Gss,
    /// Static speculation, single speed.
    Ss1,
    /// Static speculation, two speeds.
    Ss2,
    /// Adaptive speculation at each OR node.
    As,
}

impl Scheme {
    /// All schemes, in the paper's plotting order.
    pub const ALL: [Scheme; 6] = [
        Scheme::Npm,
        Scheme::Spm,
        Scheme::Gss,
        Scheme::Ss1,
        Scheme::Ss2,
        Scheme::As,
    ];

    /// The power-managed schemes (everything but the NPM baseline).
    pub const MANAGED: [Scheme; 5] = [
        Scheme::Spm,
        Scheme::Gss,
        Scheme::Ss1,
        Scheme::Ss2,
        Scheme::As,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Npm => "NPM",
            Scheme::Spm => "SPM",
            Scheme::Gss => "GSS",
            Scheme::Ss1 => "SS(1)",
            Scheme::Ss2 => "SS(2)",
            Scheme::As => "AS",
        }
    }

    /// Instantiates the scheme's policy against a plan and platform.
    pub fn build<'a>(
        self,
        plan: &'a OfflinePlan,
        model: &'a ProcessorModel,
        overheads: Overheads,
    ) -> Box<dyn Policy + 'a> {
        match self {
            Scheme::Npm => Box::new(MaxSpeed),
            Scheme::Spm => Box::new(SpmPolicy::new(plan, model, overheads)),
            Scheme::Gss => Box::new(GssPolicy::new(plan, model, overheads)),
            Scheme::Ss1 => Box::new(Ss1Policy::new(plan, model, overheads)),
            Scheme::Ss2 => Box::new(Ss2Policy::new(plan, model, overheads)),
            Scheme::As => Box::new(AsPolicy::new(plan, model, overheads)),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared deadline-guarantee computation (the GSS speed).
struct Guarantee<'a> {
    plan: &'a OfflinePlan,
    model: &'a ProcessorModel,
    overheads: Overheads,
}

impl<'a> Guarantee<'a> {
    fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        Self {
            plan,
            model,
            overheads,
        }
    }

    /// The unquantized speed that keeps the Theorem-1 guarantee for `task`
    /// dispatched under `ctx`: stretch its WCET over the window ending at
    /// `LST + c`, minus the reserved overhead time.
    fn gss_desired(&self, task: NodeId, ctx: &DispatchCtx) -> f64 {
        let lst =
            self.plan.lst[task.index()].expect("dispatched computation nodes always carry an LST");
        let slack = (lst - ctx.now).max(0.0);
        let reserve = self
            .overheads
            .reservation_ms(ctx.current_point.speed, self.model.max_freq_mhz());
        let avail = ctx.wcet + slack - reserve;
        if avail <= 0.0 {
            // Degenerate: not even full speed recovers the overhead window;
            // run flat out.
            f64::INFINITY
        } else {
            ctx.wcet / avail
        }
    }

    fn quantize(&self, desired: f64) -> OperatingPoint {
        self.model.quantize_up(desired)
    }
}

/// Greedy slack sharing (GSS): each task claims all slack available up to
/// its latest start time. Slack sharing across processors is implicit in
/// the engine's global dispatch order — exactly as in the paper's Figure 2.
pub struct GssPolicy<'a> {
    guar: Guarantee<'a>,
}

impl<'a> GssPolicy<'a> {
    /// Creates the policy for a plan/platform pair.
    pub fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        Self {
            guar: Guarantee::new(plan, model, overheads),
        }
    }
}

impl Policy for GssPolicy<'_> {
    fn name(&self) -> &str {
        "GSS"
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let desired = self.guar.gss_desired(task, ctx);
        SpeedDecision {
            point: self.guar.quantize(desired),
            ran_pmp: true,
        }
    }
}

/// Static power management (SPM): a single speed decided before the
/// application starts, using only static slack (`s = Tʷ / D`). Pays no
/// per-task PMP cost and never changes speed at run time.
pub struct SpmPolicy {
    point: OperatingPoint,
}

impl SpmPolicy {
    /// Computes the static operating point. One voltage transition (to
    /// enter the static speed) is reserved out of the deadline.
    pub fn new(plan: &OfflinePlan, model: &ProcessorModel, overheads: Overheads) -> Self {
        let effective = (plan.deadline - overheads.transition_time_ms).max(f64::MIN_POSITIVE);
        let desired = plan.worst_total / effective;
        Self {
            point: model.quantize_up(desired),
        }
    }

    /// The static operating point every task runs at.
    pub fn point(&self) -> OperatingPoint {
        self.point
    }
}

impl Policy for SpmPolicy {
    fn name(&self) -> &str {
        "SPM"
    }

    fn speed_for(&mut self, _task: NodeId, _ctx: &DispatchCtx) -> SpeedDecision {
        SpeedDecision {
            point: self.point,
            ran_pmp: false,
        }
    }
}

/// Static speculation with a single speed (SS(1)): speculate
/// `s = Tᵃ / D` once, then floor every task at `max(s_spec, s_GSS)`.
pub struct Ss1Policy<'a> {
    guar: Guarantee<'a>,
    spec_speed: f64,
}

impl<'a> Ss1Policy<'a> {
    /// Builds the policy; the speculative speed is the level at or above
    /// the ideal `Tᵃ / D`.
    pub fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        let ideal = plan.avg_total / plan.deadline;
        let spec_speed = model.quantize_up(ideal).speed;
        Self {
            guar: Guarantee::new(plan, model, overheads),
            spec_speed,
        }
    }

    /// The speculative speed (normalized).
    pub fn spec_speed(&self) -> f64 {
        self.spec_speed
    }
}

impl Policy for Ss1Policy<'_> {
    fn name(&self) -> &str {
        "SS(1)"
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let desired = self.guar.gss_desired(task, ctx).max(self.spec_speed);
        SpeedDecision {
            point: self.guar.quantize(desired),
            ran_pmp: true,
        }
    }

    fn speculation(&self) -> Option<f64> {
        Some(self.spec_speed)
    }
}

/// Static speculation with two speeds (SS(2)): when levels are coarse, run
/// at the level *below* the ideal speculative speed until the switch time
/// `θ`, then at the level above, such that the average-case work completes
/// exactly at the deadline:
///
/// `θ·s₁ + (D − θ)·s₂ = Tᵃ  ⇒  θ = (s₂·D − Tᵃ) / (s₂ − s₁)`.
pub struct Ss2Policy<'a> {
    guar: Guarantee<'a>,
    low: f64,
    high: f64,
    switch_time: f64,
}

impl<'a> Ss2Policy<'a> {
    /// Builds the policy, selecting the level pair bracketing `Tᵃ / D`.
    pub fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        let ideal = (plan.avg_total / plan.deadline).min(1.0);
        let high = model.quantize_up(ideal).speed;
        let low = level_at_or_below(model, ideal).unwrap_or(high);
        let switch_time = if (high - low).abs() < 1e-12 {
            0.0
        } else {
            // Average work measured in full-speed ms.
            (high * plan.deadline - plan.avg_total) / (high - low)
        };
        Self {
            guar: Guarantee::new(plan, model, overheads),
            low,
            high,
            switch_time: switch_time.clamp(0.0, plan.deadline),
        }
    }

    /// The `(s₁, s₂, θ)` triple the policy operates with.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.low, self.high, self.switch_time)
    }
}

impl Policy for Ss2Policy<'_> {
    fn name(&self) -> &str {
        "SS(2)"
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let spec = if ctx.now < self.switch_time {
            self.low
        } else {
            self.high
        };
        let desired = self.guar.gss_desired(task, ctx).max(spec);
        SpeedDecision {
            point: self.guar.quantize(desired),
            ran_pmp: true,
        }
    }
}

/// Adaptive speculation (AS): re-speculates after every OR synchronization
/// node from the statistical remaining work of the chosen branch:
/// `s_spec = Tᵃ_rem / (D − t)`.
pub struct AsPolicy<'a> {
    guar: Guarantee<'a>,
    spec_desired: f64,
}

impl<'a> AsPolicy<'a> {
    /// Builds the policy; the initial speculation uses the whole
    /// application's `Tᵃ`.
    pub fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        let spec_desired = plan.avg_total / plan.deadline;
        Self {
            guar: Guarantee::new(plan, model, overheads),
            spec_desired,
        }
    }

    /// The current (unquantized) speculative speed.
    pub fn spec_desired(&self) -> f64 {
        self.spec_desired
    }
}

impl Policy for AsPolicy<'_> {
    fn name(&self) -> &str {
        "AS"
    }

    fn begin_run(&mut self) {
        self.spec_desired = self.guar.plan.avg_total / self.guar.plan.deadline;
    }

    fn on_or_fired(&mut self, or: NodeId, branch: usize, now: f64) {
        if let Some(&ta_rem) = self.guar.plan.branch_avg.get(&(or, branch)) {
            let remaining = (self.guar.plan.deadline - now).max(f64::MIN_POSITIVE);
            self.spec_desired = ta_rem / remaining;
        }
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let desired = self.guar.gss_desired(task, ctx).max(self.spec_desired);
        SpeedDecision {
            point: self.guar.quantize(desired),
            ran_pmp: true,
        }
    }

    fn speculation(&self) -> Option<f64> {
        Some(self.spec_desired)
    }
}

/// Path-proportional slack distribution (PP): the uniprocessor scheme of
/// Mossé et al. (the paper's \[14\]) lifted to the multiprocessor canonical
/// schedule. Instead of letting the current task greedily claim *all*
/// slack (GSS), every dispatch stretches the whole remaining canonical
/// schedule uniformly over the time left:
///
/// `s_i = R_i / (D − t)` where `R_i = D − LST_i` is the canonical
/// worst-case remaining time from task `i`'s start.
///
/// Uniform stretching keeps the remaining schedule feasible (the engine's
/// timing scales exactly with a uniform slowdown), so PP shares GSS's
/// guarantee; the implementation still floors at the GSS speed to stay
/// safe under quantization and overhead reservations.
///
/// PP is not part of the paper's evaluation — it is the natural
/// "distribute slack evenly" contrast to GSS's "grab it all now", included
/// as an extension baseline.
pub struct ProportionalPolicy<'a> {
    guar: Guarantee<'a>,
}

impl<'a> ProportionalPolicy<'a> {
    /// Creates the policy for a plan/platform pair.
    pub fn new(plan: &'a OfflinePlan, model: &'a ProcessorModel, overheads: Overheads) -> Self {
        Self {
            guar: Guarantee::new(plan, model, overheads),
        }
    }
}

impl Policy for ProportionalPolicy<'_> {
    fn name(&self) -> &str {
        "PP"
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let lst = self.guar.plan.lst[task.index()]
            .expect("dispatched computation nodes always carry an LST");
        let remaining_worst = self.guar.plan.deadline - lst;
        let time_left = (self.guar.plan.deadline - ctx.now).max(f64::MIN_POSITIVE);
        let proportional = remaining_worst / time_left;
        let desired = self.guar.gss_desired(task, ctx).max(proportional);
        SpeedDecision {
            point: self.guar.quantize(desired),
            ran_pmp: true,
        }
    }
}

/// Wraps any policy with an energy-efficiency floor: the wrapped policy's
/// speed is raised to at least `floor` (typically
/// [`dvfs_power::efficient_floor`]). With non-negligible static power,
/// running *below* the floor both takes longer and costs more energy —
/// the classic critical-speed correction to pure-dynamic DVS (see
/// `dvfs_power::leakage`).
///
/// Deadline safety is inherited: raising speeds can only finish earlier.
pub struct EnergyFloorPolicy<'a, P> {
    inner: P,
    floor: f64,
    model: &'a ProcessorModel,
    name: String,
}

impl<'a, P: Policy> EnergyFloorPolicy<'a, P> {
    /// Wraps `inner`, flooring every decision at `floor` (normalized
    /// speed), quantized on `model`.
    pub fn new(inner: P, floor: f64, model: &'a ProcessorModel) -> Self {
        let name = format!("{}+floor", inner.name());
        Self {
            inner,
            floor,
            model,
            name,
        }
    }

    /// The active floor speed.
    pub fn floor(&self) -> f64 {
        self.floor
    }
}

impl<P: Policy> Policy for EnergyFloorPolicy<'_, P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_run(&mut self) {
        self.inner.begin_run();
    }

    fn on_or_fired(&mut self, or: NodeId, branch: usize, now: f64) {
        self.inner.on_or_fired(or, branch, now);
    }

    fn speed_for(&mut self, task: NodeId, ctx: &DispatchCtx) -> SpeedDecision {
        let d = self.inner.speed_for(task, ctx);
        if d.point.speed >= self.floor - 1e-12 {
            return d;
        }
        SpeedDecision {
            point: self.model.quantize_up(self.floor),
            ran_pmp: d.ran_pmp,
        }
    }

    fn speculation(&self) -> Option<f64> {
        self.inner.speculation()
    }
}

/// The fastest level no faster than `s` (or `None` when `s` is below the
/// minimum level). For the continuous model this is `s` itself clamped to
/// the speed range.
fn level_at_or_below(model: &ProcessorModel, s: f64) -> Option<f64> {
    match model.levels() {
        Some(levels) => {
            let f_max = model.max_freq_mhz();
            levels
                .iter()
                .rev()
                .map(|l| l.freq_mhz / f_max)
                .find(|ls| *ls <= s + 1e-12)
        }
        None => {
            if s < model.min_speed() {
                None
            } else {
                Some(s.min(1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::{SectionGraph, Segment};
    use mp_sim::{Realization, SimConfig, Simulator};

    fn chain(n: usize, wcet: f64, acet: f64) -> Segment {
        Segment::seq((0..n).map(|i| Segment::task(format!("t{i}"), wcet, acet)))
    }

    struct Fixture {
        g: andor_graph::AndOrGraph,
        sg: SectionGraph,
        plan: OfflinePlan,
        model: ProcessorModel,
    }

    fn fixture(app: &Segment, m: usize, d: f64, model: ProcessorModel) -> Fixture {
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let plan = OfflinePlan::build(&g, &sg, m, d).unwrap();
        Fixture { g, sg, plan, model }
    }

    fn run_worst(fx: &Fixture, scheme: Scheme, overheads: Overheads) -> mp_sim::RunResult {
        let cfg = SimConfig {
            num_procs: fx.plan.num_procs,
            deadline: fx.plan.deadline,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads,
            record_trace: true,
        };
        let sim = Simulator::new(&fx.g, &fx.sg, &fx.plan.dispatch, &fx.model, cfg);
        let mut policy = scheme.build(&fx.plan, &fx.model, overheads);
        let real = Realization::worst_case(
            &fx.g,
            fx.sg
                .enumerate_scenarios(&fx.g)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(s, _)| s)
                .unwrap(),
        );
        sim.run(policy.as_mut(), &real).expect("run succeeds")
    }

    #[test]
    fn gss_stretches_single_task_to_deadline() {
        let fx = fixture(
            &chain(1, 10.0, 5.0),
            1,
            20.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        let res = run_worst(&fx, Scheme::Gss, Overheads::none());
        assert!(!res.missed_deadline);
        assert!((res.finish_time - 20.0).abs() < 1e-9, "{}", res.finish_time);
        // Energy: 20 ms at 0.5³ = 2.5 vs NPM's 10 busy.
        assert!((res.energy.busy_energy() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn gss_greedy_gives_first_task_all_slack() {
        // Two tasks of 5 each, D=15: first runs at 5/(5+5)=0.5, consuming
        // all static slack; the second must run at full speed.
        let fx = fixture(
            &chain(2, 5.0, 5.0),
            1,
            15.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        let res = run_worst(&fx, Scheme::Gss, Overheads::none());
        let tr = res.trace.as_ref().unwrap();
        assert!((tr[0].speed - 0.5).abs() < 1e-12);
        assert!((tr[1].speed - 1.0).abs() < 1e-12);
        assert!(!res.missed_deadline);
        assert!((res.finish_time - 15.0).abs() < 1e-9);
    }

    #[test]
    fn gss_quantizes_up_on_discrete_levels() {
        // Desired 0.5 on XScale → 600 MHz (0.6).
        let fx = fixture(&chain(1, 10.0, 5.0), 1, 20.0, ProcessorModel::xscale());
        let res = run_worst(&fx, Scheme::Gss, Overheads::none());
        let tr = res.trace.as_ref().unwrap();
        assert!((tr[0].speed - 0.6).abs() < 1e-12);
        assert!(!res.missed_deadline);
    }

    #[test]
    fn spm_uses_static_slack_only() {
        let fx = fixture(
            &chain(2, 5.0, 1.0),
            1,
            20.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        let mut spm = SpmPolicy::new(&fx.plan, &fx.model, Overheads::none());
        // Tw = 10, D = 20 → static speed 0.5 regardless of task behavior.
        assert!((spm.point().speed - 0.5).abs() < 1e-12);
        let ctx = DispatchCtx {
            now: 3.0,
            current_point: fx.model.max_point(),
            wcet: 5.0,
        };
        let d = spm.speed_for(NodeId(0), &ctx);
        assert!(!d.ran_pmp);
        assert!((d.point.speed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ss1_floors_at_speculative_speed() {
        // Tw=10, Ta=4, D=20 → spec = 0.2. The first task's GSS desired is
        // 5/(5+10) = 1/3 (its LST is 10), so GSS wins on the first dispatch.
        let fx = fixture(
            &chain(2, 5.0, 2.0),
            1,
            20.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        let ss1 = Ss1Policy::new(&fx.plan, &fx.model, Overheads::none());
        assert!((ss1.spec_speed() - 0.2).abs() < 1e-12);
        let res = run_worst(&fx, Scheme::Ss1, Overheads::none());
        assert!(!res.missed_deadline);
        let tr = res.trace.as_ref().unwrap();
        // GSS desired dominates the 0.2 speculation on every dispatch here.
        assert!((tr[0].speed - 1.0 / 3.0).abs() < 1e-12, "{}", tr[0].speed);
    }

    #[test]
    fn ss1_speculation_beats_greedy_when_later_tasks_abound() {
        // On coarse levels the speculative floor spreads slack; compare the
        // per-task speeds: SS(1) should avoid GSS's slow-then-fast pattern.
        let fx = fixture(&chain(4, 5.0, 4.0), 1, 40.0, ProcessorModel::xscale());
        let gss = run_worst(&fx, Scheme::Gss, Overheads::none());
        let ss1 = run_worst(&fx, Scheme::Ss1, Overheads::none());
        assert!(!gss.missed_deadline && !ss1.missed_deadline);
        let gss_speeds: Vec<f64> = gss
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .map(|e| e.speed)
            .collect();
        let ss1_speeds: Vec<f64> = ss1
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .map(|e| e.speed)
            .collect();
        // GSS's first task is slower than SS(1)'s (greedy takes all slack).
        assert!(gss_speeds[0] <= ss1_speeds[0] + 1e-12);
        // SS(1) speeds never drop below its speculative floor.
        let spec = Ss1Policy::new(&fx.plan, &fx.model, Overheads::none()).spec_speed();
        for s in &ss1_speeds {
            assert!(*s >= spec - 1e-12);
        }
    }

    #[test]
    fn ss2_parameters_bracket_ideal_and_average_work_fits() {
        // Ta = 18, D = 40 → ideal 0.45 on XScale: s1 = 0.4, s2 = 0.6,
        // θ = (0.6·40 − 18)/(0.6 − 0.4) = 30.
        let fx = fixture(&chain(4, 5.0, 4.5), 1, 40.0, ProcessorModel::xscale());
        let ss2 = Ss2Policy::new(&fx.plan, &fx.model, Overheads::none());
        let (s1, s2, theta) = ss2.parameters();
        assert!((s1 - 0.4).abs() < 1e-12, "s1={s1}");
        assert!((s2 - 0.6).abs() < 1e-12, "s2={s2}");
        assert!((theta - 30.0).abs() < 1e-9, "theta={theta}");
        // θ·s1 + (D−θ)·s2 = Ta.
        assert!((theta * s1 + (40.0 - theta) * s2 - 18.0).abs() < 1e-9);
    }

    #[test]
    fn ss2_degenerates_to_single_speed_on_level_match() {
        // Ideal exactly at a level: Ta/D = 0.6 → s1 = s2 = 0.6, θ = 0.
        let fx = fixture(&chain(4, 5.0, 3.0), 1, 20.0, ProcessorModel::xscale());
        let ss2 = Ss2Policy::new(&fx.plan, &fx.model, Overheads::none());
        let (s1, s2, theta) = ss2.parameters();
        assert!((s1 - 0.6).abs() < 1e-12);
        assert!((s2 - 0.6).abs() < 1e-12);
        assert_eq!(theta, 0.0);
    }

    #[test]
    fn as_respeculates_after_or() {
        let app = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 8.0, 6.0)),
                (0.5, Segment::task("C", 2.0, 1.0)),
            ]),
        ]);
        let fx = fixture(&app, 1, 24.0, ProcessorModel::continuous(0.05).unwrap());
        let mut as_pol = AsPolicy::new(&fx.plan, &fx.model, Overheads::none());
        as_pol.begin_run();
        let initial = as_pol.spec_desired();
        assert!((initial - fx.plan.avg_total / 24.0).abs() < 1e-12);
        let or =
            fx.g.iter()
                .find(|(_, n)| n.kind.is_or() && n.succs.len() == 2)
                .unwrap()
                .0;
        as_pol.on_or_fired(or, 0, 10.0);
        // Remaining avg for branch 0 is 6 (B's acet), 14 ms left.
        assert!((as_pol.spec_desired() - 6.0 / 14.0).abs() < 1e-12);
        as_pol.begin_run();
        assert!((as_pol.spec_desired() - initial).abs() < 1e-12);
    }

    #[test]
    fn all_schemes_meet_deadline_at_worst_case() {
        let app = Segment::seq([
            Segment::task("A", 6.0, 3.0),
            Segment::par([Segment::task("B", 5.0, 2.0), Segment::task("C", 7.0, 3.0)]),
            Segment::branch([
                (0.4, Segment::task("D", 9.0, 4.0)),
                (0.6, Segment::task("E", 3.0, 2.0)),
            ]),
        ]);
        for model in [
            ProcessorModel::transmeta5400(),
            ProcessorModel::xscale(),
            ProcessorModel::continuous(0.1).unwrap(),
        ] {
            let fx = fixture(&app, 2, 30.0, model);
            for scheme in Scheme::ALL {
                let res = run_worst(&fx, scheme, Overheads::paper_defaults());
                assert!(
                    !res.missed_deadline,
                    "{} missed: finish {} > {}",
                    scheme.name(),
                    res.finish_time,
                    res.deadline
                );
            }
        }
    }

    #[test]
    fn level_at_or_below_picks_correctly() {
        let xs = ProcessorModel::xscale();
        assert!((level_at_or_below(&xs, 0.55).unwrap() - 0.4).abs() < 1e-12);
        assert!((level_at_or_below(&xs, 0.6).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(level_at_or_below(&xs, 0.1), None);
        let cont = ProcessorModel::continuous(0.2).unwrap();
        assert!((level_at_or_below(&cont, 0.5).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(level_at_or_below(&cont, 0.1), None);
    }

    #[test]
    fn proportional_spreads_slack_evenly() {
        // Two tasks of 5 each, D = 20 (static slack 10): PP runs both at
        // 0.5; GSS runs the first at 10/(10+5)... no — first LST=10, so
        // GSS desired is 5/15 = 1/3 then the second at ~1.0·(5/(5+5))...
        // The point: PP's two speeds are equal, GSS's are not.
        let fx = fixture(
            &chain(2, 5.0, 5.0),
            1,
            20.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        let cfg = SimConfig {
            num_procs: 1,
            deadline: 20.0,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: true,
        };
        let sim = Simulator::new(&fx.g, &fx.sg, &fx.plan.dispatch, &fx.model, cfg);
        let scen = fx
            .sg
            .enumerate_scenarios(&fx.g)
            .next()
            .map(|(s, _)| s)
            .unwrap();
        let real = Realization::worst_case(&fx.g, scen);
        let mut pp = ProportionalPolicy::new(&fx.plan, &fx.model, Overheads::none());
        let res = sim.run(&mut pp, &real).expect("run succeeds");
        assert!(!res.missed_deadline);
        let tr = res.trace.as_ref().unwrap();
        assert!((tr[0].speed - 0.5).abs() < 1e-9, "{}", tr[0].speed);
        assert!((tr[1].speed - 0.5).abs() < 1e-9, "{}", tr[1].speed);
        assert!((res.finish_time - 20.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_meets_deadline_at_worst_case() {
        let fx = fixture(&chain(4, 5.0, 2.0), 2, 25.0, ProcessorModel::xscale());
        let cfg = SimConfig {
            num_procs: 2,
            deadline: 25.0,
            idle_fraction: 0.05,
            static_fraction: 0.0,
            overheads: Overheads::paper_defaults(),
            record_trace: false,
        };
        let sim = Simulator::new(&fx.g, &fx.sg, &fx.plan.dispatch, &fx.model, cfg);
        let scen = fx
            .sg
            .enumerate_scenarios(&fx.g)
            .next()
            .map(|(s, _)| s)
            .unwrap();
        let real = Realization::worst_case(&fx.g, scen);
        let mut pp = ProportionalPolicy::new(&fx.plan, &fx.model, Overheads::paper_defaults());
        let res = sim.run(&mut pp, &real).expect("run succeeds");
        assert!(
            !res.missed_deadline,
            "{} > {}",
            res.finish_time, res.deadline
        );
    }

    #[test]
    fn energy_floor_raises_slow_decisions() {
        let fx = fixture(
            &chain(1, 10.0, 5.0),
            1,
            40.0,
            ProcessorModel::continuous(0.05).unwrap(),
        );
        // GSS alone would pick 10/40 = 0.25; floor it at 0.5.
        let inner = GssPolicy::new(&fx.plan, &fx.model, Overheads::none());
        let mut floored = EnergyFloorPolicy::new(inner, 0.5, &fx.model);
        assert_eq!(floored.name(), "GSS+floor");
        assert_eq!(floored.floor(), 0.5);
        let ctx = DispatchCtx {
            now: 0.0,
            current_point: fx.model.max_point(),
            wcet: 10.0,
        };
        let d = floored.speed_for(NodeId(0), &ctx);
        assert!((d.point.speed - 0.5).abs() < 1e-12, "{}", d.point.speed);
        // A fast decision passes through unchanged.
        let ctx_late = DispatchCtx {
            now: 39.0,
            current_point: fx.model.max_point(),
            wcet: 10.0,
        };
        let d = floored.speed_for(NodeId(0), &ctx_late);
        assert_eq!(d.point.speed, 1.0);
    }

    #[test]
    fn floored_policy_still_meets_deadlines_with_leakage() {
        use mp_sim::Realization;
        let fx = fixture(&chain(3, 5.0, 2.0), 2, 30.0, ProcessorModel::xscale());
        let floor = dvfs_power::efficient_floor(&fx.model, 0.3);
        assert!(floor > fx.model.min_speed(), "leakage raises the floor");
        let inner = GssPolicy::new(&fx.plan, &fx.model, Overheads::none());
        let mut policy = EnergyFloorPolicy::new(inner, floor, &fx.model);
        let cfg = SimConfig {
            num_procs: 2,
            deadline: 30.0,
            idle_fraction: 0.05,
            static_fraction: 0.3,
            overheads: Overheads::none(),
            record_trace: false,
        };
        let sim = Simulator::new(&fx.g, &fx.sg, &fx.plan.dispatch, &fx.model, cfg);
        let scen = fx
            .sg
            .enumerate_scenarios(&fx.g)
            .next()
            .map(|(s, _)| s)
            .unwrap();
        let res = sim
            .run(&mut policy, &Realization::worst_case(&fx.g, scen))
            .expect("run succeeds");
        assert!(!res.missed_deadline);
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(Scheme::ALL.len(), 6);
        assert_eq!(Scheme::MANAGED.len(), 5);
        assert_eq!(Scheme::Gss.to_string(), "GSS");
        assert_eq!(Scheme::Ss2.name(), "SS(2)");
    }
}
