//! One-stop experiment configuration: application + platform + plan.

use crate::offline::{OfflineError, OfflinePlan};
use crate::policies::Scheme;
use andor_graph::{AndOrGraph, GraphError, SectionGraph};
use dvfs_power::{Overheads, ProcessorModel, DEFAULT_IDLE_FRACTION};
use mp_sim::{
    ExecTimeModel, FaultSet, Policy, Realization, RunResult, SimConfig, SimError, Simulator,
};
use rand::Rng;

/// Errors building a [`Setup`].
#[derive(Debug)]
pub enum SetupError {
    /// The application graph failed validation.
    Graph(GraphError),
    /// The off-line phase failed (infeasible deadline, bad parameters).
    Offline(OfflineError),
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::Graph(e) => write!(f, "graph error: {e}"),
            SetupError::Offline(e) => write!(f, "offline phase error: {e}"),
        }
    }
}

impl std::error::Error for SetupError {}

impl From<GraphError> for SetupError {
    fn from(e: GraphError) -> Self {
        SetupError::Graph(e)
    }
}

impl From<OfflineError> for SetupError {
    fn from(e: OfflineError) -> Self {
        SetupError::Offline(e)
    }
}

/// A fully prepared experiment configuration: validated application,
/// section decomposition, off-line plan, processor model and overheads.
///
/// # Examples
///
/// ```
/// use andor_graph::Segment;
/// use dvfs_power::ProcessorModel;
/// use pas_core::{Scheme, Setup};
/// use mp_sim::ExecTimeModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let app = Segment::seq([
///     Segment::task("A", 8.0, 5.0),
///     Segment::branch([
///         (0.3, Segment::task("B", 5.0, 3.0)),
///         (0.7, Segment::task("C", 4.0, 2.0)),
///     ]),
/// ]);
/// let setup = Setup::new(
///     app.lower().unwrap(),
///     ProcessorModel::transmeta5400(),
///     2,      // processors
///     26.0,   // deadline (ms)
/// )
/// .unwrap();
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
/// let gss = setup.run(Scheme::Gss, &real).expect("valid setup simulates");
/// let npm = setup.run(Scheme::Npm, &real).expect("valid setup simulates");
/// assert!(gss.status.met());
/// assert!(gss.total_energy() < npm.total_energy());
/// ```
#[derive(Debug)]
pub struct Setup {
    /// The validated application.
    pub graph: AndOrGraph,
    /// Its program-section decomposition.
    pub sections: SectionGraph,
    /// The off-line phase output.
    pub plan: OfflinePlan,
    /// The processor's DVS capability.
    pub model: ProcessorModel,
    /// Speed-management overheads charged by the engine and reserved by the
    /// policies.
    pub overheads: Overheads,
    /// Idle power as a fraction of maximum.
    pub idle_fraction: f64,
    /// Static (leakage) power while active, as a fraction of maximum
    /// power (`0.0` = the paper's pure-dynamic model).
    pub static_fraction: f64,
}

/// Per-task overhead reservation folded into the canonical schedules: the
/// PMP computation at the lowest speed the processor might sit at, plus
/// one voltage/speed transition. The transition term covers the
/// speed-*up* case — a task dispatched with (nearly) zero slack on a
/// processor an earlier task left at a low level must be able to return
/// to full speed without borrowing time it does not have.
pub fn pmp_reserve(model: &ProcessorModel, overheads: Overheads) -> f64 {
    overheads.compute_time_ms(model.min_speed(), model.max_freq_mhz())
        + overheads.transition_time_ms
}

impl Setup {
    /// Builds a setup for an explicit deadline, with the paper's default
    /// overheads and idle fraction.
    pub fn new(
        graph: AndOrGraph,
        model: ProcessorModel,
        num_procs: usize,
        deadline: f64,
    ) -> Result<Self, SetupError> {
        Self::with_deadline_and_overheads(
            graph,
            model,
            num_procs,
            deadline,
            Overheads::paper_defaults(),
        )
    }

    /// Builds a setup for an explicit deadline and overhead configuration.
    pub fn with_deadline_and_overheads(
        graph: AndOrGraph,
        model: ProcessorModel,
        num_procs: usize,
        deadline: f64,
        overheads: Overheads,
    ) -> Result<Self, SetupError> {
        let _setup_span =
            pas_obs::profile::span_with(pas_obs::profile::names::OFFLINE_SETUP, || {
                format!("{num_procs} procs, deadline {deadline} ms")
            });
        let sections = SectionGraph::build(&graph)?;
        let plan = OfflinePlan::build_with_pmp_reserve(
            &graph,
            &sections,
            num_procs,
            deadline,
            pmp_reserve(&model, overheads),
        )?;
        Ok(Self {
            graph,
            sections,
            plan,
            model,
            overheads,
            idle_fraction: DEFAULT_IDLE_FRACTION,
            static_fraction: 0.0,
        })
    }

    /// Builds a setup whose deadline realizes a target *load* (the paper's
    /// x-axis): `load = Tw / D`, so `D = Tw / load`, with the paper's
    /// default overheads.
    pub fn for_load(
        graph: AndOrGraph,
        model: ProcessorModel,
        num_procs: usize,
        load: f64,
    ) -> Result<Self, SetupError> {
        Self::for_load_with_overheads(graph, model, num_procs, load, Overheads::paper_defaults())
    }

    /// Builds a setup for a target load under an explicit overhead
    /// configuration. The deadline is derived from the overhead-inflated
    /// canonical worst case, so the load axis keeps its meaning across
    /// overhead sweeps.
    pub fn for_load_with_overheads(
        graph: AndOrGraph,
        model: ProcessorModel,
        num_procs: usize,
        load: f64,
        overheads: Overheads,
    ) -> Result<Self, SetupError> {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        let _setup_span =
            pas_obs::profile::span_with(pas_obs::profile::names::OFFLINE_SETUP, || {
                format!("{num_procs} procs, load {load}")
            });
        let reserve = pmp_reserve(&model, overheads);
        let sections = SectionGraph::build(&graph)?;
        // Probe with a certainly-feasible deadline to learn Tw.
        let probe_deadline =
            (graph.total_wcet().max(1.0) + graph.num_tasks() as f64 * reserve + 1.0) * 10.0;
        let probe_span = pas_obs::profile::span(pas_obs::profile::names::OFFLINE_PROBE);
        let probe = OfflinePlan::build_with_pmp_reserve(
            &graph,
            &sections,
            num_procs,
            probe_deadline,
            reserve,
        )?;
        drop(probe_span);
        let deadline = probe.worst_total / load;
        let plan =
            OfflinePlan::build_with_pmp_reserve(&graph, &sections, num_procs, deadline, reserve)?;
        Ok(Self {
            graph,
            sections,
            plan,
            model,
            overheads,
            idle_fraction: DEFAULT_IDLE_FRACTION,
            static_fraction: 0.0,
        })
    }

    /// Rebuilds a setup around an *existing* plan — typically one
    /// deserialized from a `pas plan --out` artifact — without re-running
    /// the off-line phase. The plan is shape-checked against the graph
    /// (table lengths vs. node count and section count) so a plan built
    /// for a different application is rejected up front rather than
    /// failing inside the engine.
    pub fn from_plan(
        graph: AndOrGraph,
        model: ProcessorModel,
        plan: OfflinePlan,
        overheads: Overheads,
    ) -> Result<Self, SetupError> {
        let sections = SectionGraph::build(&graph)?;
        let mismatch = |detail: String| {
            SetupError::Offline(crate::offline::PlanError::PlanGraphMismatch { detail })
        };
        if plan.num_procs == 0 {
            return Err(SetupError::Offline(crate::offline::PlanError::NoProcessors));
        }
        if !(plan.deadline.is_finite() && plan.deadline > 0.0) {
            return Err(SetupError::Offline(crate::offline::PlanError::BadDeadline(
                plan.deadline,
            )));
        }
        if plan.lst.len() != graph.len() {
            return Err(mismatch(format!(
                "plan has {} latest-start entries but the graph has {} nodes",
                plan.lst.len(),
                graph.len()
            )));
        }
        let n_sections = sections.len();
        if plan.dispatch.per_section.len() != n_sections {
            return Err(mismatch(format!(
                "plan dispatches {} section(s) but the graph decomposes into {}",
                plan.dispatch.per_section.len(),
                n_sections
            )));
        }
        for (name, len) in [
            ("canonical_start_rel", plan.canonical_start_rel.len()),
            ("section_worst_len", plan.section_worst_len.len()),
            ("section_avg_len", plan.section_avg_len.len()),
            ("worst_after", plan.worst_after.len()),
        ] {
            if len != n_sections {
                return Err(mismatch(format!(
                    "plan table '{name}' covers {len} section(s), expected {n_sections}"
                )));
            }
        }
        for (order, starts) in plan
            .dispatch
            .per_section
            .iter()
            .zip(plan.canonical_start_rel.iter())
        {
            if order.len() != starts.len() {
                return Err(mismatch(format!(
                    "a section dispatches {} node(s) but records {} canonical start(s)",
                    order.len(),
                    starts.len()
                )));
            }
            if let Some(bad) = order.iter().find(|n| n.index() >= graph.len()) {
                return Err(mismatch(format!(
                    "dispatch order names node {} but the graph has {} nodes",
                    bad.index(),
                    graph.len()
                )));
            }
        }
        Ok(Self {
            graph,
            sections,
            plan,
            model,
            overheads,
            idle_fraction: DEFAULT_IDLE_FRACTION,
            static_fraction: 0.0,
        })
    }

    /// Replaces the overhead configuration and rebuilds the off-line plan
    /// so its per-task reservation matches. Fails if the inflated worst
    /// case no longer fits the (unchanged) deadline — use
    /// [`Setup::for_load_with_overheads`] to rescale the deadline instead.
    pub fn with_overheads(mut self, overheads: Overheads) -> Result<Self, SetupError> {
        self.overheads = overheads;
        self.plan = OfflinePlan::build_with_pmp_reserve(
            &self.graph,
            &self.sections,
            self.plan.num_procs,
            self.plan.deadline,
            pmp_reserve(&self.model, overheads),
        )?;
        Ok(self)
    }

    /// Replaces the idle-power fraction.
    pub fn with_idle_fraction(mut self, idle_fraction: f64) -> Self {
        self.idle_fraction = idle_fraction;
        self
    }

    /// Enables the static-power extension: `fraction` of maximum power is
    /// drawn whenever a processor is active (see `dvfs_power::leakage`).
    pub fn with_static_power(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.static_fraction = fraction;
        self
    }

    /// The energy-efficient speed floor of this setup's platform under its
    /// static-power fraction.
    pub fn efficient_floor(&self) -> f64 {
        dvfs_power::efficient_floor(&self.model, self.static_fraction)
    }

    /// The engine configuration this setup implies.
    pub fn sim_config(&self, record_trace: bool) -> SimConfig {
        SimConfig {
            num_procs: self.plan.num_procs,
            deadline: self.plan.deadline,
            idle_fraction: self.idle_fraction,
            static_fraction: self.static_fraction,
            overheads: self.overheads,
            record_trace,
        }
    }

    /// An engine over this setup.
    pub fn simulator(&self, record_trace: bool) -> Simulator<'_> {
        Simulator::new(
            &self.graph,
            &self.sections,
            &self.plan.dispatch,
            &self.model,
            self.sim_config(record_trace),
        )
    }

    /// Instantiates a scheme's policy against this setup.
    ///
    /// Policy construction is offline work (per-scheme parameter tables
    /// over the finished plan), so it is profiled under
    /// `offline.policies` — callers running Monte-Carlo loops should
    /// hoist this out of the per-realization path and reuse the instance:
    /// the engine calls [`Policy::begin_run`] at every run start, so one
    /// instance across runs is bit-identical to rebuilding per run.
    pub fn policy(&self, scheme: Scheme) -> Box<dyn Policy + '_> {
        let _span = pas_obs::profile::span_with(pas_obs::profile::names::OFFLINE_POLICIES, || {
            scheme.name().to_string()
        });
        scheme.build(&self.plan, &self.model, self.overheads)
    }

    /// Draws a realization (OR choices + actual execution times).
    pub fn sample<R: Rng + ?Sized>(&self, etm: &ExecTimeModel, rng: &mut R) -> Realization {
        Realization::sample(&self.graph, &self.sections, etm, rng)
    }

    /// Runs one scheme on one realization (no trace).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine (dependency-violating
    /// dispatch order, unresolved OR choice, plan/graph mismatch).
    pub fn run(&self, scheme: Scheme, real: &Realization) -> Result<RunResult, SimError> {
        let mut policy = self.policy(scheme);
        self.simulator(false).run(policy.as_mut(), real)
    }

    /// Runs one scheme on one realization under an injected fault set
    /// (no trace). With an empty fault set this is byte-identical to
    /// [`Setup::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine.
    pub fn run_with_faults(
        &self,
        scheme: Scheme,
        real: &Realization,
        faults: &FaultSet,
    ) -> Result<RunResult, SimError> {
        let mut policy = self.policy(scheme);
        self.simulator(false)
            .run_with_faults(policy.as_mut(), real, faults)
    }

    /// Builds the clairvoyant single-speed bound for one realization
    /// (see [`crate::oracle`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the full-speed probe run that measures
    /// the realization's makespan.
    pub fn oracle(&self, real: &Realization) -> Result<crate::oracle::OraclePolicy, SimError> {
        crate::oracle::OraclePolicy::for_realization(
            &self.graph,
            &self.sections,
            &self.plan.dispatch,
            &self.model,
            self.plan.num_procs,
            self.plan.deadline,
            self.overheads,
            real,
        )
    }

    /// Runs the clairvoyant bound on one realization.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the probe or the measured run.
    pub fn run_oracle(&self, real: &Realization) -> Result<RunResult, SimError> {
        let mut oracle = self.oracle(real)?;
        self.simulator(false).run(&mut oracle, real)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::Segment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn app() -> AndOrGraph {
        Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("fixture app lowers")
    }

    #[test]
    fn for_load_hits_requested_load() {
        for load in [0.2, 0.5, 0.9, 1.0] {
            let s =
                Setup::for_load(app(), ProcessorModel::xscale(), 2, load).expect("feasible load");
            assert!((s.plan.load() - load).abs() < 1e-9, "load {load}");
        }
    }

    #[test]
    fn infeasible_deadline_surfaces_as_offline_error() {
        let err = Setup::new(app(), ProcessorModel::xscale(), 1, 1.0)
            .expect_err("1 ms deadline is infeasible");
        assert!(matches!(err, SetupError::Offline(_)), "{err}");
    }

    #[test]
    fn run_all_schemes_on_sampled_realizations() {
        let s =
            Setup::for_load(app(), ProcessorModel::transmeta5400(), 2, 0.5).expect("feasible load");
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..20 {
            let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            for scheme in Scheme::ALL {
                let res = s.run(scheme, &real).expect("run succeeds");
                assert!(
                    !res.missed_deadline,
                    "iteration {i}: {} missed ({} > {})",
                    scheme.name(),
                    res.finish_time,
                    res.deadline
                );
                assert!(res.total_energy() > 0.0);
            }
        }
    }

    #[test]
    fn managed_schemes_save_energy_at_low_load() {
        let s =
            Setup::for_load(app(), ProcessorModel::transmeta5400(), 2, 0.3).expect("feasible load");
        let mut rng = StdRng::seed_from_u64(99);
        let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let npm = s
            .run(Scheme::Npm, &real)
            .expect("run succeeds")
            .total_energy();
        for scheme in Scheme::MANAGED {
            let e = s.run(scheme, &real).expect("run succeeds").total_energy();
            assert!(
                e < npm,
                "{} should beat NPM at low load: {e} vs {npm}",
                scheme.name()
            );
        }
    }

    #[test]
    fn empty_fault_set_is_transparent_through_the_harness() {
        let s =
            Setup::for_load(app(), ProcessorModel::transmeta5400(), 2, 0.5).expect("feasible load");
        let mut rng = StdRng::seed_from_u64(7);
        let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let empty = FaultSet::empty(s.graph.len());
        for scheme in Scheme::ALL {
            let clean = s.run(scheme, &real).expect("run succeeds");
            let faulted = s
                .run_with_faults(scheme, &real, &empty)
                .expect("run succeeds");
            assert_eq!(clean.finish_time, faulted.finish_time, "{}", scheme.name());
            assert_eq!(
                clean.total_energy(),
                faulted.total_energy(),
                "{}",
                scheme.name()
            );
            assert!(faulted.faults.is_clean());
        }
    }

    #[test]
    fn builder_style_overrides() {
        let s = Setup::new(app(), ProcessorModel::xscale(), 2, 40.0)
            .expect("feasible deadline")
            .with_overheads(Overheads::none())
            .expect("overhead-free replan stays feasible")
            .with_idle_fraction(0.1);
        assert_eq!(s.overheads, Overheads::none());
        assert_eq!(s.sim_config(false).idle_fraction, 0.1);
    }
}
