//! Exact optimal per-task level assignment, by exhaustive search.
//!
//! On *tiny* instances it is feasible to enumerate every assignment of a
//! discrete level to every task and keep the cheapest one whose worst-case
//! schedule still meets the deadline. Unlike the single-speed clairvoyant
//! ([`crate::oracle`]), this is the true static optimum over per-task
//! speeds — it can mix levels — so it measures each scheme's *absolute*
//! optimality gap on discrete platforms.
//!
//! Complexity is `levels^tasks`; [`optimal_assignment`] refuses instances
//! where that exceeds a caller-provided budget. Intended for tests and
//! small calibration experiments only.

use andor_graph::{AndOrGraph, NodeId, SectionGraph};
use dvfs_power::{OperatingPoint, ProcessorModel};
use mp_sim::{DispatchCtx, DispatchOrder, Policy, Realization, SimConfig, SimError, Simulator};
use std::collections::HashMap;

/// A fixed per-task operating-point assignment, executable as a policy.
pub struct AssignmentPolicy {
    points: HashMap<NodeId, OperatingPoint>,
    max: OperatingPoint,
}

impl AssignmentPolicy {
    /// Creates a policy from an explicit assignment; unassigned tasks run
    /// at full speed.
    pub fn new(points: HashMap<NodeId, OperatingPoint>) -> Self {
        Self {
            points,
            max: OperatingPoint {
                speed: 1.0,
                power: 1.0,
            },
        }
    }

    /// The assignment.
    pub fn points(&self) -> &HashMap<NodeId, OperatingPoint> {
        &self.points
    }
}

impl Policy for AssignmentPolicy {
    fn name(&self) -> &str {
        "assignment"
    }

    fn speed_for(&mut self, task: NodeId, _ctx: &DispatchCtx) -> mp_sim::SpeedDecision {
        mp_sim::SpeedDecision {
            point: *self.points.get(&task).unwrap_or(&self.max),
            // Static assignment: no run-time PMP computation.
            ran_pmp: false,
        }
    }
}

/// The exhaustive-search result.
#[derive(Debug, Clone)]
pub struct OptimalAssignment {
    /// Best per-task operating points found.
    pub points: HashMap<NodeId, OperatingPoint>,
    /// Its worst-case energy (the optimization objective).
    pub worst_case_energy: f64,
    /// Number of assignments evaluated.
    pub evaluated: u64,
}

/// Searches every per-task level assignment for the minimum *worst-case*
/// energy that meets the deadline in every scenario at WCET.
///
/// Returns `Ok(None)` if the search space exceeds `budget` assignments
/// (`levels^tasks · scenarios` simulator runs), the model is continuous
/// (no finite level table), or even full speed is infeasible.
///
/// # Errors
///
/// Propagates [`SimError`] from any candidate evaluation run.
pub fn optimal_assignment(
    g: &AndOrGraph,
    sections: &SectionGraph,
    order: &DispatchOrder,
    model: &ProcessorModel,
    cfg: &SimConfig,
    budget: u64,
) -> Result<Option<OptimalAssignment>, SimError> {
    let Some(levels) = model.levels() else {
        return Ok(None);
    };
    let tasks: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| n.kind.is_computation())
        .map(|(id, _)| id)
        .collect();
    let Some(combos) = (levels.len() as u64).checked_pow(tasks.len() as u32) else {
        return Ok(None);
    };
    let scenarios: Vec<Realization> = sections
        .enumerate_scenarios(g)
        .map(|(s, _)| Realization::worst_case(g, s))
        .collect();
    match combos.checked_mul(scenarios.len() as u64) {
        Some(total) if total <= budget => {}
        _ => return Ok(None),
    }
    let points: Vec<OperatingPoint> = levels
        .iter()
        .map(|l| OperatingPoint {
            speed: l.freq_mhz / model.max_freq_mhz(),
            power: model.level_power(l),
        })
        .collect();

    let sim = Simulator::new(g, sections, order, model, *cfg);
    let mut best: Option<OptimalAssignment> = None;
    let mut evaluated = 0u64;
    let mut indices = vec![0usize; tasks.len()];
    loop {
        let assignment: HashMap<NodeId, OperatingPoint> = tasks
            .iter()
            .zip(&indices)
            .map(|(&t, &i)| (t, points[i]))
            .collect();
        let mut policy = AssignmentPolicy::new(assignment);
        let mut feasible = true;
        let mut worst_energy = 0.0_f64;
        for real in &scenarios {
            let res = sim.run(&mut policy, real)?;
            evaluated += 1;
            if res.missed_deadline {
                feasible = false;
                break;
            }
            worst_energy = worst_energy.max(res.total_energy());
        }
        if feasible
            && best
                .as_ref()
                .map(|b| worst_energy < b.worst_case_energy)
                .unwrap_or(true)
        {
            best = Some(OptimalAssignment {
                points: policy.points().clone(),
                worst_case_energy: worst_energy,
                evaluated,
            });
        }
        // Next combination (odometer increment).
        let mut k = 0;
        loop {
            if k == indices.len() {
                return Ok(best.map(|mut out| {
                    out.evaluated = evaluated;
                    out
                }));
            }
            indices[k] += 1;
            if indices[k] < points.len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Setup;
    use crate::policies::Scheme;
    use andor_graph::Segment;
    use dvfs_power::Overheads;

    fn tiny_setup() -> Setup {
        let app = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::branch([
                (0.5, Segment::task("B", 6.0, 3.0)),
                (0.5, Segment::task("C", 2.0, 1.0)),
            ]),
        ]);
        Setup::for_load_with_overheads(
            app.lower().expect("fixture app lowers"),
            ProcessorModel::xscale(),
            1,
            0.5,
            Overheads::none(),
        )
        .expect("feasible load")
    }

    fn optimum(setup: &Setup) -> OptimalAssignment {
        optimal_assignment(
            &setup.graph,
            &setup.sections,
            &setup.plan.dispatch,
            &setup.model,
            &setup.sim_config(false),
            10_000_000,
        )
        .expect("search runs")
        .expect("tiny instance within budget")
    }

    #[test]
    fn optimum_meets_deadline_and_beats_full_speed() {
        let setup = tiny_setup();
        let opt = optimum(&setup);
        // Full speed is feasible, so an optimum exists and is cheaper than
        // NPM's worst case.
        let npm_worst = setup
            .sections
            .enumerate_scenarios(&setup.graph)
            .map(|(s, _)| {
                setup
                    .run(Scheme::Npm, &Realization::worst_case(&setup.graph, s))
                    .expect("run succeeds")
                    .total_energy()
            })
            .fold(0.0_f64, f64::max);
        assert!(opt.worst_case_energy < npm_worst);
        assert!(opt.evaluated > 0);
    }

    #[test]
    fn no_online_scheme_beats_the_true_optimum() {
        let setup = tiny_setup();
        let opt = optimum(&setup);
        for scheme in Scheme::ALL {
            let scheme_worst = setup
                .sections
                .enumerate_scenarios(&setup.graph)
                .map(|(s, _)| {
                    setup
                        .run(scheme, &Realization::worst_case(&setup.graph, s))
                        .expect("run succeeds")
                        .total_energy()
                })
                .fold(0.0_f64, f64::max);
            assert!(
                opt.worst_case_energy <= scheme_worst + 1e-9,
                "{} beat the exhaustive optimum: {} vs {}",
                scheme.name(),
                scheme_worst,
                opt.worst_case_energy
            );
        }
    }

    #[test]
    fn optimum_can_mix_levels_unlike_single_speed() {
        // The single-speed oracle rounds up to one level; the exhaustive
        // optimum may assign different levels per task. Verify it is at
        // least as good as the best single-level assignment.
        let setup = tiny_setup();
        let opt = optimum(&setup);
        let mut best_single = f64::INFINITY;
        for l in setup.model.levels().expect("xscale has a level table") {
            let point = OperatingPoint {
                speed: l.freq_mhz / setup.model.max_freq_mhz(),
                power: setup.model.level_power(l),
            };
            let points: HashMap<NodeId, OperatingPoint> = setup
                .graph
                .iter()
                .filter(|(_, n)| n.kind.is_computation())
                .map(|(id, _)| (id, point))
                .collect();
            let mut policy = AssignmentPolicy::new(points);
            let sim = setup.simulator(false);
            let mut worst = 0.0_f64;
            let mut ok = true;
            for (s, _) in setup.sections.enumerate_scenarios(&setup.graph) {
                let res = sim
                    .run(&mut policy, &Realization::worst_case(&setup.graph, s))
                    .expect("run succeeds");
                if res.missed_deadline {
                    ok = false;
                    break;
                }
                worst = worst.max(res.total_energy());
            }
            if ok {
                best_single = best_single.min(worst);
            }
        }
        assert!(opt.worst_case_energy <= best_single + 1e-9);
    }

    #[test]
    fn budget_is_respected() {
        let setup = tiny_setup();
        assert!(optimal_assignment(
            &setup.graph,
            &setup.sections,
            &setup.plan.dispatch,
            &setup.model,
            &setup.sim_config(false),
            10, // far too small
        )
        .expect("search runs")
        .is_none());
    }

    #[test]
    fn continuous_model_is_rejected() {
        let app = Segment::task("A", 2.0, 1.0);
        let setup = Setup::for_load(
            app.lower().expect("fixture app lowers"),
            ProcessorModel::continuous(0.1).expect("valid continuous model"),
            1,
            0.5,
        )
        .expect("feasible load");
        assert!(optimal_assignment(
            &setup.graph,
            &setup.sections,
            &setup.plan.dispatch,
            &setup.model,
            &setup.sim_config(false),
            1_000_000,
        )
        .expect("search runs")
        .is_none());
    }
}
